"""Repository-level pytest configuration.

Ensures ``src/`` is importable even when the package has not been installed
(offline environments without a working ``pip install -e .``).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
