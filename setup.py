"""Packaging of the repro tool chain.

Installable with ``pip install -e .`` (or plain ``python setup.py develop``
in offline environments without wheel); exposes the ``repro`` console script
wired to :func:`repro.cli.main`.
"""

import os
import re

from setuptools import find_packages, setup

with open(os.path.join(os.path.dirname(__file__), "src", "repro", "__init__.py"), encoding="utf-8") as _init:
    VERSION = re.search(r'__version__ = "([^"]+)"', _init.read()).group(1)

setup(
    name="repro-aadl-polychrony",
    version=VERSION,
    description=(
        "Polychronous analysis and validation for timed software architectures "
        "in AADL: AADL front-end, AADL-to-SIGNAL translation, scheduler "
        "synthesis, clock calculus, execution-plan simulation engine and "
        "profiling (DATE 2013 reproduction)"
    ),
    long_description=(
        "A from-scratch Python reproduction of the DATE 2013 tool chain for "
        "polychronous analysis of AADL models: capture, validation, "
        "ASME2SSME translation to SIGNAL process models, static scheduler "
        "synthesis exported to affine clocks, formal analyses (clock "
        "calculus, determinism, deadlock), simulation over pluggable "
        "backends (reference fixed-point interpreter, compiled execution "
        "plans and numpy-vectorized block execution, with batched "
        "multi-scenario runs), VCD traces and profiling-based performance "
        "estimation."
    ),
    long_description_content_type="text/plain",
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.8",
    extras_require={
        # The vectorized simulation backend soft-depends on numpy: without
        # it the backend degrades to the compiled execution plan.
        "vectorized": ["numpy"],
        # The lowered (codegen) backend soft-depends on numba for jit=True:
        # without it the generated evaluators run as plain Python with a
        # RuntimeWarning.
        "lowered": ["numba"],
        # The HTTP serving layer (repro.serve / `repro serve`) soft-depends
        # on fastapi + uvicorn; the framework-free service core works
        # without them.  httpx powers the no-socket ASGI test client.
        "serve": ["fastapi", "uvicorn", "httpx"],
        # Fleet-scale sweeps (repro.sweep / `repro sweep`) soft-depend on
        # pyarrow for parquet shards with predicate pushdown; without it
        # the shard store degrades to a pure-stdlib JSONL format.
        "sweep": ["pyarrow"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering",
        "Topic :: Software Development :: Embedded Systems",
    ],
)
