"""The FastAPI adapter over the framework-independent service core.

This module is the only place fastapi/pydantic are imported — everything
else in :mod:`repro.serve` stays importable without them (use
:func:`repro.serve.create_app`, which gates the import and raises a clean
ImportError when the ``serve`` extra is missing).

The pydantic request models mirror the symbolic scenario programs of
:mod:`repro.sig.scenario` (rule payloads by ``kind``, scenarios as
``{length, inputs}`` or the ``{"default": true}`` form) and the
:class:`~repro.serve.programs.SimulateRequest` schema; they are declared
``extra='forbid'`` and dumped with ``exclude_unset`` so exactly the keys
the client sent reach the service core, which performs the authoritative
validation.  Every :class:`~repro.serve.errors.ServeError` renders as the
documented JSON error body with its mapped HTTP status.

Endpoints (see ``docs/API.md`` for request/response snippets)::

    POST   /models                      submit + compile-once (cache by fingerprint)
    GET    /models                      resident fingerprints + cache counters
    GET    /models/{fp}                 model info, analyses, hit counters
    DELETE /models/{fp}                 evict one cached model
    POST   /models/{fp}/simulate        batched simulation, JSON results
    POST   /models/{fp}/simulate/stream streamed results as SSE events
    GET    /healthz                     liveness
    GET    /stats                       cache/concurrency/request counters

Endpoints are plain ``def`` (FastAPI runs them on its threadpool): the
service core is blocking, CPU-bound work, and the semaphore inside it —
not the event loop — is the concurrency control.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from fastapi import FastAPI, Request
from fastapi.responses import JSONResponse, StreamingResponse
from pydantic import BaseModel

from .errors import ServeError, error_payload
from .service import ServiceConfig, SimulationService

__all__ = [
    "RuleModel",
    "ScenarioModel",
    "SimulateModel",
    "SubmitModel",
    "build_app",
]


def _dump(model: BaseModel) -> Dict[str, Any]:
    """Dump a pydantic model to exactly the keys the client sent.

    Works on pydantic v1 (``.dict``) and v2 (``.model_dump``).
    """
    if hasattr(model, "model_dump"):
        return model.model_dump(exclude_unset=True)
    return model.dict(exclude_unset=True)


class SubmitModel(BaseModel):
    """``POST /models`` body: AADL source plus translation options."""

    source: str
    root: Optional[str] = None
    package: Optional[str] = None
    policy: Optional[str] = None
    include_scheduler: Optional[bool] = None
    lenient: Optional[bool] = None

    class Config:
        """Reject unknown keys so client typos 422 instead of vanishing."""

        extra = "forbid"


class RuleModel(BaseModel):
    """One symbolic input rule, mirroring :mod:`repro.sig.scenario`.

    Polymorphic by ``kind`` (``constant`` / ``periodic`` / ``sparse`` /
    ``explicit``); values use the wire encoding ``[v]`` (present) /
    ``null`` (absent).  Per-kind field validation happens in
    :func:`repro.serve.programs.rule_from_payload`.
    """

    kind: str
    value: Optional[List[Any]] = None
    period: Optional[int] = None
    phase: Optional[int] = None
    entries: Optional[Dict[str, Any]] = None
    base: Optional["RuleModel"] = None
    values: Optional[List[Any]] = None

    class Config:
        """Reject unknown keys so client typos 422 instead of vanishing."""

        extra = "forbid"


class ScenarioModel(BaseModel):
    """One scenario: symbolic ``{length, inputs}`` or ``{"default": true}``."""

    length: Optional[int] = None
    inputs: Optional[Dict[str, RuleModel]] = None
    default: Optional[bool] = None
    stimuli: Optional[Dict[str, int]] = None

    class Config:
        """Reject unknown keys so client typos 422 instead of vanishing."""

        extra = "forbid"


class SimulateModel(BaseModel):
    """``POST /models/{fp}/simulate`` body (see ``SimulateRequest``)."""

    scenarios: List[ScenarioModel]
    length: Optional[int] = None
    hyperperiods: Optional[int] = None
    record: Optional[List[str]] = None
    backend: Optional[str] = None
    strict: Optional[bool] = None
    workers: Optional[int] = None
    timeout: Optional[float] = None
    retries: Optional[int] = None
    backoff: Optional[float] = None
    max_failures: Optional[int] = None
    scenario_budget: Optional[Any] = None
    fault_plan: Optional[Any] = None
    include_trace: Optional[bool] = None
    sinks: Optional[List[str]] = None
    deltas_watch: Optional[List[str]] = None

    class Config:
        """Reject unknown keys so client typos 422 instead of vanishing."""

        extra = "forbid"


try:  # pydantic v1 needs the recursive RuleModel reference resolved by hand
    RuleModel.update_forward_refs()
except AttributeError:  # pragma: no cover - pydantic v2 resolves automatically
    pass


def build_app(config: Optional[ServiceConfig] = None) -> FastAPI:
    """Build the FastAPI application over a fresh :class:`SimulationService`.

    The service core is exposed as ``app.state.service`` so tests (and
    operators) can reach the cache and counters directly.
    """
    service = SimulationService(config)
    app = FastAPI(
        title="repro simulation service",
        description=(
            "Submit AADL models once (compiled + analysed, cached by "
            "structural fingerprint), simulate symbolic scenario programs "
            "against them many times."
        ),
    )
    app.state.service = service

    @app.exception_handler(ServeError)
    async def _serve_error(request: Request, error: ServeError) -> JSONResponse:
        """Render every ServeError as its documented JSON body + status."""
        return JSONResponse(status_code=error.status, content=error_payload(error))

    @app.get("/healthz")
    def healthz() -> Dict[str, Any]:
        """Liveness probe."""
        return {"ok": True}

    @app.get("/stats")
    def stats() -> Dict[str, Any]:
        """Cache, concurrency and request counters."""
        return service.stats()

    @app.post("/models")
    def submit(body: SubmitModel) -> Dict[str, Any]:
        """Submit a model: analyse + compile once, cache by fingerprint."""
        return service.submit(_dump(body))

    @app.get("/models")
    def list_models() -> Dict[str, Any]:
        """Resident fingerprints plus cache counters."""
        return service.list_models()

    @app.get("/models/{fingerprint}")
    def model_info(fingerprint: str) -> Dict[str, Any]:
        """Info, analyses and hit/miss counters of one cached model."""
        return service.model_info(fingerprint)

    @app.delete("/models/{fingerprint}")
    def evict(fingerprint: str) -> Dict[str, Any]:
        """Evict one cached model."""
        return service.evict(fingerprint)

    @app.post("/models/{fingerprint}/simulate")
    def simulate(fingerprint: str, body: SimulateModel) -> Dict[str, Any]:
        """Run a batch of symbolic scenarios against a cached model."""
        return service.simulate(fingerprint, _dump(body))

    @app.post("/models/{fingerprint}/simulate/stream")
    def simulate_stream(fingerprint: str, body: SimulateModel) -> StreamingResponse:
        """Stream simulation results as Server-Sent Events.

        Each event is one JSON object (``open`` / ``vcd`` / ``result`` /
        ``error`` / ``fault`` / ``done``).  Client disconnects close the
        stream generator, which cancels the running scenario and closes
        its sinks.
        """
        stream = service.stream_simulate(fingerprint, _dump(body))

        def events():
            try:
                for event in stream:
                    yield f"data: {json.dumps(event)}\n\n"
            finally:
                stream.close()

        return StreamingResponse(events(), media_type="text/event-stream")

    return app
