"""Framework-independent core of the simulation service.

:class:`SimulationService` is the whole server minus HTTP: it owns the
fingerprint-keyed :class:`~repro.serve.cache.PlanCache`, the submit path
(parse → canonicalise → fingerprint → analyse + compile exactly once), the
simulate path (symbolic scenario programs through
:func:`~repro.sig.engine.batch.simulate_batch` on resident prepared
backends), the streaming path (chunked sink events with cooperative
cancellation), and the server-level concurrency semaphore that turns
overload into typed ``busy`` backpressure.  The FastAPI application in
:mod:`repro.serve.app` is a thin adapter over this class — which is also
why the conformance, fuzz, fault and E18 benchmark suites run without
fastapi installed: they exercise this core directly.

Request and response bodies everywhere are plain JSON-compatible dicts in
the wire format of :mod:`repro.serve.programs`; failures raise
:class:`~repro.serve.errors.ServeError` with a stable code and HTTP
status.  All entry points are thread-safe: the cache single-flights
compilation, per-entry locks serialise backend preparation, and a
semaphore bounds concurrently executing simulations.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from ..core.toolchain import ToolchainOptions, TranslationConfig, run_toolchain
from ..scheduling.static_scheduler import SchedulingError, SchedulingPolicy
from ..sig.engine.backends import DEFAULT_BACKEND, create_backend
from ..sig.engine.batch import BatchResult, default_scenario, simulate_batch
from ..sig.engine.faults import FaultPlan, FaultSpec
from ..sig.engine.supervisor import ScenarioBudget, guarded
from ..sig.scenario import Scenario
from ..sig.simulator import SimulationError
from ..sig.sinks import DeltaSink, MaterializeSink, StatisticsSink, TraceSink
from ..sig.vcd import StreamingVcdSink
from .cache import PlanCache, canonical_source, model_fingerprint, source_key
from .errors import (
    ServeError,
    fault_from_exception,
    fault_payload,
    invalid_program,
    simulation_error_payload,
)
from .programs import (
    SimulateRequest,
    delta_log_to_payload,
    scenario_from_payload,
    statistics_to_payload,
    trace_to_payload,
)

__all__ = [
    "CachedModel",
    "ServiceConfig",
    "SimulationService",
    "SimulationStream",
]

#: Keys a ``POST /models`` body may carry.
_SUBMIT_FIELDS = frozenset(
    {"source", "root", "package", "policy", "include_scheduler", "lenient"}
)

#: Default number of VCD characters accumulated before a chunk event flushes.
_VCD_CHUNK_CHARS = 16384


@dataclass
class ServiceConfig:
    """Tunables of one :class:`SimulationService` instance.

    ``cache_capacity`` bounds the plan-cache LRU; ``max_concurrent`` bounds
    simultaneously *executing* simulations (excess requests are rejected
    with ``busy``/503 instead of queueing unboundedly — clients retry);
    ``default_backend`` is used when a simulate body names none.
    ``allow_fault_injection`` gates the ``fault_plan`` request field, a
    test/chaos-only hook that must never be reachable on a production
    server.  ``store`` plugs the persistent artifact cache
    (:mod:`repro.store`) under the in-memory plan cache: ``True`` uses the
    per-user default store, an :class:`~repro.store.ArtifactStore` uses
    that instance, ``None`` (default) keeps the service self-contained —
    cold submits then always pay the full toolchain.  With a store, a
    fresh server warm-starts models any earlier process analysed; compiled
    entries are published back on every cold submit.
    """

    cache_capacity: int = 32
    max_concurrent: int = 4
    default_backend: str = DEFAULT_BACKEND
    allow_fault_injection: bool = False
    vcd_chunk_chars: int = _VCD_CHUNK_CHARS
    store: Any = None


@dataclass
class CachedModel:
    """One resident plan-cache entry: the analysed, compiled model.

    Holds everything a simulate request needs without re-touching the
    toolchain: the flattened :attr:`system_model`, the analysis payloads
    rendered once at submit time, the schedule horizon helper, and a pool
    of prepared backends (:attr:`runners`) keyed by ``(backend, strict)``
    so repeated requests on any backend reuse one compiled instance.
    """

    fingerprint: str
    canonical: str
    root: str
    package: Optional[str]
    policy: str
    include_scheduler: bool
    lenient: bool
    system_model: Any
    analysis: Dict[str, Any]
    hyperperiod_length: Callable[[int], Optional[int]]
    compile_seconds: float
    created_at: float
    hits: int = 0
    runners: Dict[Tuple[str, bool], Any] = field(default_factory=dict)
    _runner_lock: threading.Lock = field(default_factory=threading.Lock)

    def runner_for(self, backend: str, strict: bool) -> Any:
        """The resident prepared backend for ``(backend, strict)``.

        Prepared at most once per key (later requests reuse it — this is
        the warm path the E18 gate measures); an unknown backend name
        surfaces as the ``unknown-backend`` service error.
        """
        key = (backend, strict)
        with self._runner_lock:
            runner = self.runners.get(key)
            if runner is None:
                try:
                    runner = create_backend(
                        self.system_model, backend=backend, strict=strict
                    )
                except ValueError as exc:
                    raise ServeError("unknown-backend", str(exc), backend=backend)
                self.runners[key] = runner
            return runner

    def info(self) -> Dict[str, Any]:
        """The ``GET /models/{fp}`` payload: identity, analyses, counters."""
        return {
            "fingerprint": self.fingerprint,
            "root": self.root,
            "package": self.package,
            "policy": self.policy,
            "include_scheduler": self.include_scheduler,
            "lenient": self.lenient,
            "signals": self.system_model.signal_count(),
            "analysis": self.analysis,
            "compile_seconds": self.compile_seconds,
            "hits": self.hits,
            "prepared_backends": sorted(
                backend for backend, _ in self.runners
            ),
        }


class SimulationService:
    """The serving core: submit models once, simulate them many times.

    See the module docstring for the architecture; the public surface maps
    one-to-one onto the HTTP endpoints of :mod:`repro.serve.app`:

    ========================================= ==========================
    method                                    endpoint
    ========================================= ==========================
    :meth:`submit`                            ``POST /models``
    :meth:`list_models`                       ``GET /models``
    :meth:`model_info`                        ``GET /models/{fp}``
    :meth:`evict`                             ``DELETE /models/{fp}``
    :meth:`simulate`                          ``POST /models/{fp}/simulate``
    :meth:`stream_simulate`                   ``POST /models/{fp}/simulate/stream``
    :meth:`stats`                             ``GET /stats``
    ========================================= ==========================
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.cache = PlanCache(self.config.cache_capacity)
        from ..store import resolve_store

        #: Persistent disk tier behind the in-memory plan cache (or None).
        self.store = resolve_store(self.config.store)
        self._slots = threading.Semaphore(self.config.max_concurrent)
        self._active = 0
        self._active_lock = threading.Lock()
        self.requests = {"submit": 0, "simulate": 0, "stream": 0, "rejected": 0}

    # ------------------------------------------------------------------
    # submit path
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> Dict[str, Any]:
        """Register a model: analyse + compile once, cache by fingerprint.

        The body is ``{"source": aadl_text, "root"?, "package"?,
        "policy"?, "include_scheduler"?, "lenient"?}``.  Byte-identical
        resubmissions short-circuit through the textual index without
        re-parsing; structurally equal ones converge on the same
        fingerprint after canonicalisation.  Returns the fingerprint, a
        ``cached`` flag, and the model info payload.
        """
        self.requests["submit"] += 1
        options = self._submit_options(payload)
        source = options["source"]
        options_key = (
            options["root"] or "",
            options["package"] or "",
            options["policy"],
            options["include_scheduler"],
            options["lenient"],
        )

        raw_key = source_key(source, options_key)
        fingerprint = self.cache.resolve_source(raw_key)
        if fingerprint is not None:
            entry = self.cache.get(fingerprint)
            if entry is not None:
                return self._submit_response(entry, cached=True)

        try:
            canonical = canonical_source(source)
        except Exception as exc:
            raise ServeError("invalid-model", f"AADL source failed to parse: {exc}")
        # The root may be inferred from the parsed model; fold the *resolved*
        # root into the fingerprint so "explicit root R" and "inferred root R"
        # share one cache entry.
        root = options["root"] or self._infer_root(canonical)
        options_key = (
            root,
            options["package"] or "",
            options["policy"],
            options["include_scheduler"],
            options["lenient"],
        )
        fingerprint = model_fingerprint(canonical, options_key)

        entry, created = self.cache.get_or_create(
            fingerprint,
            lambda: self._compile(fingerprint, canonical, root, options),
            source_keys=(raw_key,),
        )
        return self._submit_response(entry, cached=not created)

    def _submit_options(self, payload: Any) -> Dict[str, Any]:
        """Validate a submit body into its option dict."""
        if not isinstance(payload, Mapping):
            raise ServeError(
                "invalid-model",
                f"submit request must be an object, got {type(payload).__name__}",
            )
        unknown = sorted(set(payload) - _SUBMIT_FIELDS)
        if unknown:
            raise ServeError(
                "invalid-model",
                f"submit request has unknown key(s) {unknown}; allowed: "
                f"{sorted(_SUBMIT_FIELDS)}",
            )
        source = payload.get("source")
        if not isinstance(source, str) or not source.strip():
            raise ServeError("invalid-model", "'source' must be non-empty AADL text")
        root = payload.get("root")
        package = payload.get("package")
        for name, value in (("root", root), ("package", package)):
            if value is not None and not isinstance(value, str):
                raise ServeError("invalid-model", f"{name!r} must be a string")
        policy = payload.get("policy", "rate_monotonic")
        if not isinstance(policy, str):
            raise ServeError("invalid-model", "'policy' must be a string")
        try:
            policy = SchedulingPolicy.from_name(policy).name.lower()
        except ValueError as exc:
            raise ServeError("invalid-model", str(exc))
        include_scheduler = payload.get("include_scheduler", True)
        lenient = payload.get("lenient", False)
        for name, value in (
            ("include_scheduler", include_scheduler),
            ("lenient", lenient),
        ):
            if not isinstance(value, bool):
                raise ServeError("invalid-model", f"{name!r} must be a boolean")
        return {
            "source": source,
            "root": root,
            "package": package,
            "policy": policy,
            "include_scheduler": include_scheduler,
            "lenient": lenient,
        }

    def _infer_root(self, canonical: str) -> str:
        """Pick the root implementation of an already-canonical source."""
        from ..aadl.parser import parse_string
        from ..cli import _default_root

        root = _default_root(parse_string(canonical))
        if root is None:
            raise ServeError(
                "invalid-model",
                "no system or process implementation found; pass 'root' explicitly",
            )
        return root

    def _compile(
        self, fingerprint: str, canonical: str, root: str, options: Dict[str, Any]
    ) -> CachedModel:
        """The cache factory: one full toolchain run + default-backend prep."""
        started = time.perf_counter()
        toolchain_options = ToolchainOptions(
            root_implementation=root,
            default_package=options["package"],
            translation=TranslationConfig(
                include_scheduler=options["include_scheduler"],
                scheduling_policy=SchedulingPolicy.from_name(options["policy"]),
            ),
            simulate_hyperperiods=0,
            cost_model=None,
            strict_validation=not options["lenient"],
            # The persistent store makes this factory the *second* cache
            # level: in-memory miss → disk restore → full toolchain.
            store=self.store,
        )
        try:
            result = run_toolchain(canonical, toolchain_options)
        except SchedulingError as exc:
            raise ServeError(
                "unschedulable",
                f"scheduler synthesis failed: {exc}; resubmit with "
                "'include_scheduler': false to analyse without a schedule",
            )
        except ServeError:
            raise
        except Exception as exc:
            raise ServeError("invalid-model", f"model rejected: {exc}")

        schedules = dict(result.schedules)

        def hyperperiod_length(hyperperiods: int) -> Optional[int]:
            if not schedules:
                return None
            return next(iter(schedules.values())).simulation_length(hyperperiods)

        entry = CachedModel(
            fingerprint=fingerprint,
            canonical=canonical,
            root=root,
            package=options["package"],
            policy=options["policy"],
            include_scheduler=options["include_scheduler"],
            lenient=options["lenient"],
            # The flattened model compiles to the identical plan without
            # re-flattening per prepared backend (and is what a store
            # restore hands back).
            system_model=result.flat_model
            if result.flat_model is not None
            else result.system_model,
            analysis=self._analysis_payload(result),
            hyperperiod_length=hyperperiod_length,
            compile_seconds=0.0,
            created_at=time.time(),
        )
        # Prepare the default backend inside the factory so the *cold* path
        # pays plan compilation exactly once and the counters see it.
        entry.runner_for(self.config.default_backend, strict=True)
        entry.compile_seconds = time.perf_counter() - started
        return entry

    @staticmethod
    def _analysis_payload(result: Any) -> Dict[str, Any]:
        """Render the submit-time analyses (clocks, determinism, deadlocks)."""
        clock = result.clock_report
        payload: Dict[str, Any] = {}
        if clock is not None:
            payload["clocks"] = {
                "process": clock.process_name,
                "signals": clock.signal_count,
                "classes": clock.clock_count,
                "endochronous": clock.endochronous,
                "master_clock": clock.master_clock,
                "roots": list(clock.roots),
                "unresolved_constraints": list(clock.unresolved_constraints),
            }
        if result.determinism is not None:
            payload["determinism"] = {
                "deterministic": result.determinism.deterministic,
                "issues": [str(issue) for issue in result.determinism.issues],
            }
        if result.deadlocks is not None:
            payload["deadlocks"] = {
                "deadlock_free": result.deadlocks.deadlock_free,
                "cycles": [list(cycle) for cycle in result.deadlocks.cycles],
            }
        payload["validation"] = {
            "errors": [str(error) for error in result.diagnostics.errors],
        }
        return payload

    def _submit_response(self, entry: CachedModel, cached: bool) -> Dict[str, Any]:
        """The ``POST /models`` response body."""
        return {
            "fingerprint": entry.fingerprint,
            "cached": cached,
            "model": entry.info(),
        }

    # ------------------------------------------------------------------
    # model registry
    # ------------------------------------------------------------------
    def list_models(self) -> Dict[str, Any]:
        """The ``GET /models`` payload: resident fingerprints + counters."""
        return {"models": self.cache.fingerprints(), "cache": self.cache.stats()}

    def model_info(self, fingerprint: str) -> Dict[str, Any]:
        """The ``GET /models/{fp}`` payload (404 when not resident)."""
        entry = self.cache.peek(fingerprint)
        if entry is None:
            raise self._not_found(fingerprint)
        info = entry.info()
        info["cache"] = self.cache.stats()
        return info

    def evict(self, fingerprint: str) -> Dict[str, Any]:
        """Drop one cached model (``DELETE /models/{fp}``)."""
        if not self.cache.evict(fingerprint):
            raise self._not_found(fingerprint)
        return {"fingerprint": fingerprint, "evicted": True}

    @staticmethod
    def _not_found(fingerprint: str) -> ServeError:
        return ServeError(
            "model-not-found",
            f"no cached model under fingerprint {fingerprint!r}; it was "
            "evicted or never submitted — POST the source again",
            fingerprint=fingerprint,
        )

    # ------------------------------------------------------------------
    # simulate path
    # ------------------------------------------------------------------
    def simulate(self, fingerprint: str, payload: Any) -> Dict[str, Any]:
        """Run a batch of symbolic scenarios against a cached model.

        The body is the :class:`~repro.serve.programs.SimulateRequest`
        schema; execution goes through
        :func:`~repro.sig.engine.batch.simulate_batch` on the entry's
        resident backend with the request's supervision knobs, so worker
        crashes/timeouts/budget violations surface as typed fault entries
        in a 200 response rather than failing the request.
        """
        self.requests["simulate"] += 1
        request = SimulateRequest.from_payload(payload)
        if "vcd" in request.sinks:
            raise invalid_program(
                "the 'vcd' sink is stream-only; use POST "
                "/models/{fp}/simulate/stream"
            )
        entry = self._entry(fingerprint)
        scenarios = self._decode_scenarios(entry, request)
        length = self._resolve_length(entry, request, scenarios)
        runner = entry.runner_for(
            request.backend or self.config.default_backend, request.strict
        )
        fault_plan = self._decode_fault_plan(request.fault_plan)
        sink_factory = _sink_factory(request) if request.sinks else None

        with self._slot():
            try:
                result = simulate_batch(
                    entry.system_model,
                    scenarios,
                    record=request.record,
                    collect_errors=True,
                    workers=request.workers,
                    sink_factory=sink_factory,
                    length=length,
                    timeout=request.timeout,
                    retries=request.retries,
                    backoff=request.backoff,
                    max_failures=request.max_failures,
                    scenario_budget=self._decode_budget(request.scenario_budget),
                    fault_plan=fault_plan,
                    runner=runner,
                )
            except ValueError as exc:
                # Unbounded scenarios without a horizon, bad record lists...
                raise invalid_program(str(exc))
        return self._batch_response(entry, request, result)

    def _entry(self, fingerprint: str) -> CachedModel:
        """The cached model of a simulate request (404 when missing)."""
        entry = self.cache.get(fingerprint)
        if entry is None:
            raise self._not_found(fingerprint)
        return entry

    def _slot(self):
        """Admit one executing simulation, or reject with ``busy``/503."""
        service = self

        class _Slot:
            def __enter__(self) -> None:
                if not service._slots.acquire(blocking=False):
                    service.requests["rejected"] += 1
                    raise ServeError(
                        "busy",
                        f"server is executing {service.config.max_concurrent} "
                        "simulations already; retry later",
                        max_concurrent=service.config.max_concurrent,
                    )
                with service._active_lock:
                    service._active += 1

            def __exit__(self, *exc_info: Any) -> None:
                with service._active_lock:
                    service._active -= 1
                service._slots.release()

        return _Slot()

    def _decode_scenarios(
        self, entry: CachedModel, request: SimulateRequest
    ) -> List[Scenario]:
        """Decode the request's scenario payloads (symbolic or default-form)."""
        scenarios: List[Scenario] = []
        for index, payload in enumerate(request.scenarios):
            if isinstance(payload, Mapping) and payload.get("default"):
                unknown = sorted(set(payload) - {"default", "stimuli", "length"})
                if unknown:
                    raise invalid_program(
                        f"scenario {index}: default-scenario form has unknown "
                        f"key(s) {unknown}; allowed: ['default', 'length', 'stimuli']"
                    )
                stimuli = payload.get("stimuli") or {}
                if not isinstance(stimuli, Mapping) or not all(
                    isinstance(name, str)
                    and isinstance(period, int)
                    and not isinstance(period, bool)
                    and period > 0
                    for name, period in stimuli.items()
                ):
                    raise invalid_program(
                        f"scenario {index}: 'stimuli' must map signal names to "
                        "positive integer periods"
                    )
                length = payload.get("length")
                if length is not None and (
                    isinstance(length, bool) or not isinstance(length, int)
                ):
                    raise invalid_program(
                        f"scenario {index}: 'length' must be an integer or null"
                    )
                scenarios.append(
                    default_scenario(entry.system_model, length, dict(stimuli))
                )
                continue
            try:
                scenarios.append(scenario_from_payload(payload))
            except ServeError as exc:
                raise invalid_program(f"scenario {index}: {exc.message}")
        return scenarios

    def _resolve_length(
        self,
        entry: CachedModel,
        request: SimulateRequest,
        scenarios: List[Scenario],
    ) -> Optional[int]:
        """The simulate-time horizon: explicit length > hyperperiods > none."""
        if request.length is not None:
            return request.length
        if request.hyperperiods is not None:
            length = entry.hyperperiod_length(request.hyperperiods)
            if length is None:
                raise invalid_program(
                    "'hyperperiods' needs a scheduled model (submitted with a "
                    "synthesised scheduler); this model has no schedule — pass "
                    "'length' instead"
                )
            return length
        for index, scenario in enumerate(scenarios):
            if scenario.length is None:
                raise invalid_program(
                    f"scenario {index} is unbounded and the request sets "
                    "neither 'length' nor 'hyperperiods'; some horizon must "
                    "be chosen"
                )
        return None

    def _decode_budget(self, budget: Any) -> Optional[ScenarioBudget]:
        """Coerce the request's scenario budget (int or mapping form)."""
        try:
            return ScenarioBudget.coerce(budget)
        except TypeError as exc:
            raise invalid_program(str(exc))

    def _decode_fault_plan(self, payload: Any) -> Optional[FaultPlan]:
        """Decode the test-only ``fault_plan`` field into a FaultPlan."""
        if payload is None:
            return None
        if not self.config.allow_fault_injection:
            raise invalid_program(
                "'fault_plan' is a test-only field; this server does not "
                "allow fault injection"
            )
        if not isinstance(payload, list):
            raise invalid_program("'fault_plan' must be an array of fault specs")
        specs: List[FaultSpec] = []
        for index, spec in enumerate(payload):
            if not isinstance(spec, Mapping):
                raise invalid_program(f"fault spec {index} must be an object")
            unknown = sorted(set(spec) - {"kind", "scenario", "attempts", "delay"})
            if unknown:
                raise invalid_program(
                    f"fault spec {index} has unknown key(s) {unknown}"
                )
            attempts = spec.get("attempts", (0,))
            if attempts is not None:
                if not isinstance(attempts, list) or not all(
                    isinstance(a, int) and not isinstance(a, bool) for a in attempts
                ):
                    raise invalid_program(
                        f"fault spec {index}: 'attempts' must be null (every "
                        "attempt) or an array of integers"
                    )
                attempts = tuple(attempts)
            try:
                specs.append(
                    FaultSpec(
                        kind=spec.get("kind", ""),
                        scenario=spec.get("scenario", 0),
                        attempts=attempts,
                        delay=spec.get("delay", 0.05),
                    )
                )
            except ValueError as exc:
                raise invalid_program(f"fault spec {index}: {exc}")
        return FaultPlan(tuple(specs))

    def _batch_response(
        self, entry: CachedModel, request: SimulateRequest, result: BatchResult
    ) -> Dict[str, Any]:
        """Render one :class:`BatchResult` as the simulate response body."""
        errors = {index: error for index, error in result.errors}
        faults = {fault.scenario: fault for fault in result.faults}
        results: List[Dict[str, Any]] = []
        for index in range(len(result.traces)):
            item: Dict[str, Any] = {"index": index}
            if index in errors:
                item["error"] = simulation_error_payload(index, errors[index])
            elif index in faults:
                item["fault"] = fault_payload(faults[index])
            elif result.streamed:
                item.update(
                    _render_sinks(request, result.sink_results[index])
                )
            elif request.include_trace and result.traces[index] is not None:
                item["trace"] = trace_to_payload(result.traces[index])
            results.append(item)
        return {
            "fingerprint": entry.fingerprint,
            "backend": result.backend,
            "workers": result.workers,
            "scenarios": len(result.traces),
            "ok": result.ok,
            "compile_seconds": result.compile_seconds,
            "run_seconds": result.run_seconds,
            "results": results,
        }

    # ------------------------------------------------------------------
    # streaming path
    # ------------------------------------------------------------------
    def stream_simulate(self, fingerprint: str, payload: Any) -> "SimulationStream":
        """Run scenarios with results streamed as typed events.

        Validates the request up front (errors raise before any event is
        produced, mapping to their HTTP status); then returns a
        :class:`SimulationStream` whose iterator yields event dicts while
        a worker thread simulates scenario by scenario.  Closing the
        stream early (client disconnect) cancels the running scenario
        cooperatively — its sinks are still ``on_close()``d.
        """
        self.requests["stream"] += 1
        request = SimulateRequest.from_payload(payload)
        if request.fault_plan is not None:
            self._decode_fault_plan(request.fault_plan)  # validates / gates
        entry = self._entry(fingerprint)
        scenarios = self._decode_scenarios(entry, request)
        length = self._resolve_length(entry, request, scenarios)
        runner = entry.runner_for(
            request.backend or self.config.default_backend, request.strict
        )
        budget = self._decode_budget(request.scenario_budget)
        slot = self._slot()
        slot.__enter__()
        try:
            stream = SimulationStream(
                entry=entry,
                runner=runner,
                request=request,
                scenarios=scenarios,
                length=length,
                budget=budget,
                chunk_chars=self.config.vcd_chunk_chars,
                release=lambda: slot.__exit__(None, None, None),
            )
        except BaseException:
            slot.__exit__(None, None, None)
            raise
        stream.start()
        return stream

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` payload: cache + concurrency + request counters."""
        with self._active_lock:
            active = self._active
        return {
            "cache": self.cache.stats(),
            "store": self.store.stats() if self.store is not None else None,
            "active_simulations": active,
            "max_concurrent": self.config.max_concurrent,
            "requests": dict(self.requests),
        }


class _StreamCancelled(Exception):
    """Raised inside a streamed run when the client went away."""


class _CancelSink(TraceSink):
    """A sink that aborts the run cooperatively once the stream is closed.

    The backends guarantee ``on_close()`` on every sink when a run aborts,
    so raising here both stops the simulation promptly and exercises the
    cleanup path the disconnect tests assert.
    """

    def __init__(self, cancelled: threading.Event) -> None:
        self._cancelled = cancelled
        self.closed = False

    def on_header(self, header: Any) -> None:
        """Nothing to set up."""

    def on_instant(self, instant: int, statuses: Any, values: Any) -> None:
        """Abort the run as soon as cancellation is requested."""
        if self._cancelled.is_set():
            raise _StreamCancelled()

    def on_close(self) -> None:
        """Record the close (the disconnect tests count these)."""
        self.closed = True

    def result(self) -> None:
        """Cancel sinks produce nothing."""
        return None


class _TrackedSink(TraceSink):
    """Delegating wrapper counting ``on_close()`` calls on a stream counter.

    The disconnect tests assert every sink of an aborted streamed scenario
    was closed; the backends guarantee the calls, this wrapper makes them
    observable without touching the wrapped sink's behaviour.
    """

    def __init__(self, sink: TraceSink, on_closed: Callable[[], None]) -> None:
        self._sink = sink
        self._on_closed = on_closed

    def on_header(self, header: Any) -> None:
        """Delegate to the wrapped sink."""
        self._sink.on_header(header)

    def on_instant(self, instant: int, statuses: Any, values: Any) -> None:
        """Delegate to the wrapped sink."""
        self._sink.on_instant(instant, statuses, values)

    def on_close(self) -> None:
        """Delegate, then count the close."""
        self._sink.on_close()
        self._on_closed()

    def result(self) -> Any:
        """Delegate to the wrapped sink."""
        return self._sink.result()


class _ChunkWriter:
    """A ``write()`` target that flushes accumulated text in bounded chunks."""

    def __init__(self, emit: Callable[[str], None], chunk_chars: int) -> None:
        self._emit = emit
        self._chunk_chars = max(1, chunk_chars)
        self._parts: List[str] = []
        self._size = 0

    def write(self, text: str) -> int:
        """Buffer *text*, emitting a chunk each time the threshold is hit."""
        self._parts.append(text)
        self._size += len(text)
        if self._size >= self._chunk_chars:
            self.flush()
        return len(text)

    def flush(self) -> None:
        """Emit whatever is buffered as one chunk event."""
        if self._parts:
            self._emit("".join(self._parts))
            self._parts = []
            self._size = 0


class SimulationStream:
    """One in-flight streamed simulation: an iterator of event dicts.

    Events, in order: one ``open`` (request echo), then per scenario any
    number of ``vcd`` chunks followed by its terminal event (``result`` on
    success — carrying the requested stats/deltas/trace payloads —
    ``error`` for deterministic model errors, ``fault`` for
    timeout/budget/crash), and finally one ``done`` carrying batch
    counters.  A scenario's work runs on a worker thread; the consumer
    iterates at its own pace over a bounded queue.  :meth:`close` cancels
    cooperatively: the running scenario aborts at its next instant, every
    sink is ``on_close()``d by the backend, and the worker exits without
    producing further events.
    """

    def __init__(
        self,
        entry: CachedModel,
        runner: Any,
        request: SimulateRequest,
        scenarios: List[Scenario],
        length: Optional[int],
        budget: Optional[ScenarioBudget],
        chunk_chars: int,
        release: Callable[[], None],
    ) -> None:
        import queue

        self._entry = entry
        self._runner = runner
        self._request = request
        self._scenarios = scenarios
        self._length = length
        self._budget = budget
        self._chunk_chars = chunk_chars
        self._release = release
        self._queue: "queue.Queue[Optional[Dict[str, Any]]]" = queue.Queue(maxsize=64)
        self._cancelled = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._consumed = False
        self._released = False
        #: Observability for the disconnect tests: sinks closed per scenario.
        self.sinks_closed = 0
        self.scenarios_started = 0

    def start(self) -> None:
        """Launch the worker thread (called once by the service)."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-stream", daemon=True
        )
        self._thread.start()

    # -- consumer side -------------------------------------------------
    def __iter__(self) -> Iterator[Dict[str, Any]]:
        """Yield events until ``done`` (or until the stream is closed)."""
        if self._consumed:
            raise ServeError(
                "stream-closed", "this simulation stream was already consumed"
            )
        self._consumed = True
        try:
            while True:
                event = self._queue.get()
                if event is None:
                    break
                yield event
        finally:
            self.close()

    def close(self) -> None:
        """Cancel the stream: stop the worker, release the server slot."""
        self._cancelled.set()
        # Keep draining while the worker winds down so a producer blocked
        # on a full queue (including its final sentinel put) always exits.
        deadline = time.monotonic() + 30.0
        while (
            self._thread is not None
            and self._thread.is_alive()
            and time.monotonic() < deadline
        ):
            while True:
                try:
                    self._queue.get_nowait()
                except Exception:
                    break
            self._thread.join(timeout=0.05)
        if not self._released:
            self._released = True
            self._release()

    # -- producer side -------------------------------------------------
    def _put(self, event: Dict[str, Any]) -> None:
        """Enqueue one event unless the consumer has gone away."""
        import queue

        while not self._cancelled.is_set():
            try:
                self._queue.put(event, timeout=0.1)
                return
            except queue.Full:
                continue
        raise _StreamCancelled()

    def _run(self) -> None:
        """Worker loop: simulate scenario by scenario, emitting events."""
        try:
            self._put(
                {
                    "event": "open",
                    "fingerprint": self._entry.fingerprint,
                    "backend": self._runner.name,
                    "scenarios": len(self._scenarios),
                }
            )
            errors = 0
            faults = 0
            for index, scenario in enumerate(self._scenarios):
                self.scenarios_started += 1
                outcome = self._run_scenario(index, scenario)
                if outcome == "error":
                    errors += 1
                elif outcome == "fault":
                    faults += 1
                if outcome == "cancelled":
                    return
            self._put(
                {
                    "event": "done",
                    "scenarios": len(self._scenarios),
                    "errors": errors,
                    "faults": faults,
                    "ok": not errors and not faults,
                }
            )
        except _StreamCancelled:
            pass
        finally:
            self._queue.put(None)

    def _run_scenario(self, index: int, scenario: Scenario) -> str:
        """Run one scenario into fresh sinks; emit its terminal event."""
        request = self._request
        sinks: List[TraceSink] = []
        stats_sink = deltas_sink = materialize_sink = None
        writer = None
        if "stats" in request.sinks:
            stats_sink = StatisticsSink()
            sinks.append(stats_sink)
        if "deltas" in request.sinks:
            deltas_sink = DeltaSink(request.deltas_watch)
            sinks.append(deltas_sink)
        if "vcd" in request.sinks:
            writer = _ChunkWriter(
                lambda chunk: self._put(
                    {"event": "vcd", "scenario": index, "chunk": chunk}
                ),
                self._chunk_chars,
            )
            sinks.append(StreamingVcdSink(writer))
        if request.include_trace:
            materialize_sink = MaterializeSink()
            sinks.append(materialize_sink)
        sinks.append(_CancelSink(self._cancelled))

        def closed() -> None:
            self.sinks_closed += 1

        tracked = [_TrackedSink(sink, closed) for sink in sinks]
        try:
            with guarded(timeout=request.timeout, budget=self._budget):
                self._runner.run(
                    scenario,
                    record=request.record,
                    sinks=tracked,
                    length=self._length,
                )
        except _StreamCancelled:
            return "cancelled"
        except SimulationError as exc:
            self._put(
                {
                    "event": "error",
                    "scenario": index,
                    **simulation_error_payload(index, exc),
                }
            )
            return "error"
        except Exception as exc:
            fault = fault_from_exception(index, exc)
            self._put(
                {"event": "fault", "scenario": index, **fault_payload(fault)}
            )
            return "fault"
        if writer is not None:
            writer.flush()
        payload: Dict[str, Any] = {"event": "result", "scenario": index}
        if stats_sink is not None:
            payload["stats"] = statistics_to_payload(stats_sink.result())
        if deltas_sink is not None:
            payload["deltas"] = delta_log_to_payload(deltas_sink.result())
        if materialize_sink is not None:
            payload["trace"] = trace_to_payload(materialize_sink.result())
        self._put(payload)
        return "ok"


def _sink_factory(request: SimulateRequest):
    """Build the per-scenario sink factory of a non-streaming sink request.

    Returns a picklable factory (closing over only plain data) producing,
    per scenario, the requested sinks in a fixed order — plus a
    materialising sink when the request also wants traces — so
    :func:`_render_sinks` can address them positionally.
    """
    return _SinkFactory(
        stats="stats" in request.sinks,
        deltas="deltas" in request.sinks,
        deltas_watch=tuple(request.deltas_watch or ()) or None,
        materialize=request.include_trace,
    )


class _SinkFactory:
    """Picklable sink factory used by ``workers=N`` sink batches."""

    def __init__(
        self,
        stats: bool,
        deltas: bool,
        deltas_watch: Optional[Tuple[str, ...]],
        materialize: bool,
    ) -> None:
        self.stats = stats
        self.deltas = deltas
        self.deltas_watch = deltas_watch
        self.materialize = materialize

    def __call__(self, index: int) -> List[TraceSink]:
        """Fresh sinks for scenario *index*, in the fixed rendering order."""
        sinks: List[TraceSink] = []
        if self.stats:
            sinks.append(StatisticsSink())
        if self.deltas:
            sinks.append(DeltaSink(self.deltas_watch))
        if self.materialize:
            sinks.append(MaterializeSink())
        return sinks


def _render_sinks(request: SimulateRequest, sink_results: Any) -> Dict[str, Any]:
    """Render one scenario's sink results by the factory's fixed order."""
    rendered: Dict[str, Any] = {}
    results = list(sink_results)
    position = 0
    if "stats" in request.sinks:
        rendered["stats"] = statistics_to_payload(results[position])
        position += 1
    if "deltas" in request.sinks:
        rendered["deltas"] = delta_log_to_payload(results[position])
        position += 1
    if request.include_trace:
        rendered["trace"] = trace_to_payload(results[position])
    return rendered
