"""Simulation-as-a-service: the long-lived HTTP serving layer.

This package turns the toolchain into a resident server so compilation is
amortised across all traffic instead of paid per CLI invocation:

* :mod:`repro.serve.cache` — the fingerprint-keyed LRU plan cache with
  single-flight compilation;
* :mod:`repro.serve.programs` — the JSON wire codec of symbolic scenario
  programs and simulation results;
* :mod:`repro.serve.service` — the framework-independent service core
  (submit / simulate / stream / backpressure);
* :mod:`repro.serve.errors` — the typed error taxonomy and its HTTP
  status mapping;
* :mod:`repro.serve.app` — the thin FastAPI adapter (only importable when
  fastapi is installed).

FastAPI and uvicorn are **soft dependencies** following the numpy/numba
pattern: importing ``repro.serve`` (and everything above except ``app``)
never imports them, :func:`serve_available` reports whether the HTTP
layer can run, and :func:`create_app` raises a clean ImportError naming
the install command otherwise.  The whole service core — conformance,
fuzz, fault and benchmark suites included — runs without them; only the
HTTP transport needs the extra::

    pip install "repro-aadl-polychrony[serve]"
    repro serve --port 8000
"""

from __future__ import annotations

from typing import Any

from .cache import PlanCache, canonical_source, model_fingerprint
from .errors import ERROR_STATUS, ServeError, error_payload
from .programs import SimulateRequest, scenario_from_payload, scenario_to_payload
from .service import CachedModel, ServiceConfig, SimulationService, SimulationStream

__all__ = [
    "ERROR_STATUS",
    "CachedModel",
    "PlanCache",
    "SERVE_FALLBACK_MESSAGE",
    "ServeError",
    "ServiceConfig",
    "SimulateRequest",
    "SimulationService",
    "SimulationStream",
    "canonical_source",
    "create_app",
    "error_payload",
    "model_fingerprint",
    "scenario_from_payload",
    "scenario_to_payload",
    "serve_available",
    "uvicorn_available",
]

#: One-line explanation used by the CLI and ImportErrors when the HTTP
#: layer is requested without its soft dependencies installed.
SERVE_FALLBACK_MESSAGE = (
    "the HTTP serving layer needs fastapi (and uvicorn to run a server); "
    'install the serve extra: pip install "repro-aadl-polychrony[serve]"'
)


def serve_available() -> bool:
    """``True`` when fastapi is importable (the HTTP layer can be built)."""
    try:
        import fastapi  # noqa: F401
    except ImportError:
        return False
    return True


def uvicorn_available() -> bool:
    """``True`` when uvicorn is importable (``repro serve`` can run)."""
    try:
        import uvicorn  # noqa: F401
    except ImportError:
        return False
    return True


def create_app(config: Any = None) -> Any:
    """Build the FastAPI application over a fresh service core.

    Lazy by design: :mod:`repro.serve.app` (and hence fastapi) is imported
    only here, so ``import repro.serve`` works on installations without
    the serve extra.  Raises ImportError with an actionable message when
    fastapi is missing.
    """
    if not serve_available():
        raise ImportError(SERVE_FALLBACK_MESSAGE)
    from .app import build_app

    return build_app(config)
