"""JSON wire codec of symbolic scenario programs and simulation results.

Requests carry scenarios **symbolically**, mirroring
:mod:`repro.sig.scenario`: each driven signal is one small rule payload
(``constant`` / ``periodic`` / ``sparse`` / ``explicit``), so a
million-instant periodic drive crosses the wire in under a kilobyte
exactly as it crosses a process-pool boundary.  :class:`GeneratorRule`
does not serialise (arbitrary code does not belong on a wire) and is
rejected in both directions.

Signal **values** need an encoding that survives JSON without ambiguity:
a present value ``v`` travels as the one-element list ``[v]`` and absence
(``⊥``) as ``null``.  A bare ``null`` therefore always means absent, a
present ``None``-like value cannot occur (the value domain is JSON
scalars), and ``[false]`` vs ``null`` vs ``[null]`` never collide.  The
codec refuses non-JSON value types (functions, arbitrary objects) rather
than coercing them, so the parity suite can assert the *types* of served
values, not just their repr.

Rule payloads::

    {"kind": "constant", "value": true}
    {"kind": "periodic", "period": 3, "phase": 1, "value": 2.5}
    {"kind": "sparse", "entries": {"0": [7], "9": null}, "base": {...}?}
    {"kind": "explicit", "values": [[1], null, [2]]}

A scenario is ``{"length": int|null, "inputs": {signal: rule}}``; the
special form ``{"default": true, "stimuli": {...}?}`` asks the server to
build the model's :func:`~repro.sig.engine.batch.default_scenario`
(always-present ticks plus periodic stimuli) — the served counterpart of
running the CLI without an explicit scenario.

Responses render traces, statistics, delta logs and batch summaries back
to JSON with the same value encoding; every encoder here has a decoder
used by the parity suite to round-trip served results into the exact
in-process objects they must match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..sig.scenario import (
    ConstantRule,
    ExplicitRule,
    InputRule,
    PeriodicRule,
    Scenario,
    SparseRule,
)
from ..sig.simulator import SimulationTrace
from ..sig.values import ABSENT, Flow, is_absent
from .errors import invalid_program

__all__ = [
    "SimulateRequest",
    "decode_trace",
    "decode_value",
    "delta_log_to_payload",
    "encode_value",
    "rule_from_payload",
    "rule_to_payload",
    "scenario_from_payload",
    "scenario_to_payload",
    "statistics_to_payload",
    "trace_to_payload",
]

#: JSON-representable value types a signal may carry on the wire.  ``None``
#: is a legal *present* value (the value domain reserves ``ABSENT`` for
#: absence precisely so ``None`` stays ordinary); it travels as ``[null]``,
#: distinct from the bare ``null`` meaning absent.
_JSON_SCALARS = (bool, int, float, str, type(None))


# ----------------------------------------------------------------------
# value codec
# ----------------------------------------------------------------------
def encode_value(value: Any) -> Optional[List[Any]]:
    """Encode one signal value: present ``v`` → ``[v]``, absent → ``None``.

    Raises :class:`~repro.serve.errors.ServeError` (``invalid-program``)
    for values JSON cannot carry faithfully.
    """
    if is_absent(value):
        return None
    if not isinstance(value, _JSON_SCALARS):
        raise invalid_program(
            f"value {value!r} of type {type(value).__name__} is not "
            "JSON-serialisable; signal values must be bool, int, float, str "
            "or None"
        )
    return [value]


def decode_value(payload: Any) -> Any:
    """Decode one wire value: ``None`` → ``ABSENT``, ``[v]`` → ``v``."""
    if payload is None:
        return ABSENT
    if not isinstance(payload, list) or len(payload) != 1:
        raise invalid_program(
            f"malformed wire value {payload!r}; expected null (absent) or a "
            "one-element list [value] (present)"
        )
    value = payload[0]
    if not isinstance(value, _JSON_SCALARS):
        raise invalid_program(
            f"wire value {value!r} is not a valid signal value; expected "
            "bool, int, float, str or null"
        )
    return value


# ----------------------------------------------------------------------
# rule codec
# ----------------------------------------------------------------------
def rule_to_payload(rule: InputRule) -> Dict[str, Any]:
    """Encode one :class:`~repro.sig.scenario.InputRule` as a JSON payload."""
    if isinstance(rule, ConstantRule):
        return {"kind": "constant", "value": encode_value(rule.fill)}
    if isinstance(rule, PeriodicRule):
        return {
            "kind": "periodic",
            "period": rule.period,
            "phase": rule.phase,
            "value": encode_value(rule.fill),
        }
    if isinstance(rule, SparseRule):
        payload: Dict[str, Any] = {
            "kind": "sparse",
            "entries": {
                str(instant): encode_value(value)
                for instant, value in sorted(rule.entries.items())
            },
        }
        if rule.base is not None:
            payload["base"] = rule_to_payload(rule.base)
        return payload
    if isinstance(rule, ExplicitRule):
        return {"kind": "explicit", "values": [encode_value(v) for v in rule.values]}
    raise invalid_program(
        f"rule {rule!r} cannot be serialised; generator rules (arbitrary "
        "code) do not travel over the wire — express the flow as "
        "constant/periodic/sparse/explicit instead"
    )


def rule_from_payload(payload: Any, signal: str = "?") -> InputRule:
    """Decode one rule payload back into an :class:`InputRule`."""
    if not isinstance(payload, Mapping):
        raise invalid_program(
            f"rule for signal {signal!r} must be an object, got "
            f"{type(payload).__name__}"
        )
    kind = payload.get("kind")
    known = {"constant", "periodic", "sparse", "explicit"}
    if kind not in known:
        raise invalid_program(
            f"rule for signal {signal!r} has unknown kind {kind!r}; expected "
            f"one of {sorted(known)}"
        )
    try:
        if kind == "constant":
            _check_keys(payload, {"kind", "value"}, signal)
            fill = decode_value(payload.get("value", [True]))
            return ConstantRule(fill)
        if kind == "periodic":
            _check_keys(payload, {"kind", "period", "phase", "value"}, signal)
            period = _require_int(payload.get("period"), "period", signal)
            phase = _require_int(payload.get("phase", 0), "phase", signal)
            fill = decode_value(payload.get("value", [True]))
            return PeriodicRule(period, phase, fill)
        if kind == "sparse":
            _check_keys(payload, {"kind", "entries", "base"}, signal)
            entries_payload = payload.get("entries")
            if not isinstance(entries_payload, Mapping):
                raise invalid_program(
                    f"sparse rule for signal {signal!r} needs an 'entries' object"
                )
            entries: Dict[int, Any] = {}
            for key, value in entries_payload.items():
                try:
                    instant = int(key)
                except (TypeError, ValueError):
                    raise invalid_program(
                        f"sparse entry key {key!r} for signal {signal!r} is "
                        "not an integer instant"
                    )
                entries[instant] = decode_value(value)
            base_payload = payload.get("base")
            base = (
                rule_from_payload(base_payload, signal)
                if base_payload is not None
                else None
            )
            return SparseRule(entries, base=base)
        _check_keys(payload, {"kind", "values"}, signal)
        values_payload = payload.get("values")
        if not isinstance(values_payload, Sequence) or isinstance(values_payload, str):
            raise invalid_program(
                f"explicit rule for signal {signal!r} needs a 'values' array"
            )
        return ExplicitRule([decode_value(v) for v in values_payload])
    except ValueError as exc:
        # Rule constructors validate their own domain (period > 0,
        # non-negative sparse instants); surface those as program errors.
        raise invalid_program(f"invalid rule for signal {signal!r}: {exc}")


def _check_keys(payload: Mapping[str, Any], allowed: set, signal: str) -> None:
    """Reject unknown keys so client typos fail loudly, not silently."""
    unknown = sorted(set(payload) - allowed)
    if unknown:
        raise invalid_program(
            f"rule for signal {signal!r} has unknown key(s) {unknown}; "
            f"allowed: {sorted(allowed)}"
        )


def _require_int(value: Any, name: str, signal: str) -> int:
    """An integer field of a rule payload (bool is not an int here)."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise invalid_program(
            f"rule field {name!r} for signal {signal!r} must be an integer, "
            f"got {value!r}"
        )
    return value


# ----------------------------------------------------------------------
# scenario codec
# ----------------------------------------------------------------------
def scenario_to_payload(scenario: Scenario) -> Dict[str, Any]:
    """Encode one :class:`~repro.sig.scenario.Scenario` as JSON."""
    return {
        "length": scenario.length,
        "inputs": {
            name: rule_to_payload(rule) for name, rule in sorted(scenario.inputs.items())
        },
    }


def scenario_from_payload(payload: Any) -> Scenario:
    """Decode one scenario payload (``{"length", "inputs"}``)."""
    if not isinstance(payload, Mapping):
        raise invalid_program(
            f"scenario must be an object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - {"length", "inputs"})
    if unknown:
        raise invalid_program(
            f"scenario has unknown key(s) {unknown}; allowed: "
            "['inputs', 'length'] (or the {'default': true} form)"
        )
    length = payload.get("length")
    if length is not None and (isinstance(length, bool) or not isinstance(length, int)):
        raise invalid_program(f"scenario length must be an integer or null, got {length!r}")
    try:
        scenario = Scenario(length)
    except ValueError as exc:
        raise invalid_program(str(exc))
    inputs = payload.get("inputs", {})
    if not isinstance(inputs, Mapping):
        raise invalid_program("scenario 'inputs' must map signal names to rules")
    for name, rule_payload in inputs.items():
        if not isinstance(name, str):
            raise invalid_program(f"signal name {name!r} must be a string")
        scenario.inputs[name] = rule_from_payload(rule_payload, name)
    return scenario


# ----------------------------------------------------------------------
# result encoders / decoders
# ----------------------------------------------------------------------
def trace_to_payload(trace: SimulationTrace) -> Dict[str, Any]:
    """Encode one :class:`~repro.sig.simulator.SimulationTrace` as JSON."""
    return {
        "process": trace.process_name,
        "length": trace.length,
        "flows": {
            name: [encode_value(v) for v in flow.values]
            for name, flow in sorted(trace.flows.items())
        },
        "warnings": list(trace.warnings),
    }


def decode_trace(payload: Mapping[str, Any]) -> SimulationTrace:
    """Decode a served trace payload back into a :class:`SimulationTrace`.

    Inverse of :func:`trace_to_payload`; the parity suite uses it to
    compare served traces against in-process ones with plain ``==`` over
    flows (which checks values *and* their types).
    """
    flows = {
        name: Flow(name, [decode_value(v) for v in values])
        for name, values in payload["flows"].items()
    }
    return SimulationTrace(
        process_name=payload["process"],
        length=payload["length"],
        flows=flows,
        warnings=list(payload["warnings"]),
    )


def statistics_to_payload(stats: Any) -> Dict[str, Any]:
    """Encode one :class:`~repro.sig.sinks.TraceStatistics` as JSON."""
    return {
        "process": stats.process_name,
        "length": stats.length,
        "signals": {
            name: {
                "present": signal.present,
                "absent": signal.absent,
                "minimum": _encode_bound(signal.minimum),
                "maximum": _encode_bound(signal.maximum),
                "first_instant": signal.first_instant,
                "last_instant": signal.last_instant,
            }
            for name, signal in sorted(stats.per_signal.items())
        },
        "warnings": list(stats.warnings),
    }


def _encode_bound(value: Any) -> Any:
    """Encode a statistics min/max (``None`` when no comparable value)."""
    if value is None:
        return None
    return encode_value(value)


def delta_log_to_payload(log: Any) -> Dict[str, Any]:
    """Encode one :class:`~repro.sig.sinks.DeltaLog` as JSON."""
    return {
        "process": log.process_name,
        "length": log.length,
        "watched": list(log.watched),
        "entries": [
            [instant, {name: encode_value(v) for name, v in sorted(changes.items())}]
            for instant, changes in log.entries
        ],
        "change_counts": dict(log.change_counts),
        "warnings": list(log.warnings),
    }


# ----------------------------------------------------------------------
# simulate-request schema
# ----------------------------------------------------------------------
@dataclass
class SimulateRequest:
    """Validated form of a ``POST /models/{fp}/simulate`` body.

    Mirrors the :func:`~repro.sig.engine.batch.simulate_batch` keyword
    surface plus the service-level knobs (sink selection, trace
    inclusion, horizon defaulting via ``hyperperiods``).  Built through
    :meth:`from_payload`, which rejects unknown keys and type errors with
    ``invalid-program`` so clients get a 422 naming the offending field.
    """

    scenarios: List[Any] = field(default_factory=list)
    length: Optional[int] = None
    hyperperiods: Optional[int] = None
    record: Optional[List[str]] = None
    backend: Optional[str] = None
    strict: bool = True
    workers: int = 1
    timeout: Optional[float] = None
    retries: Optional[int] = None
    backoff: Optional[float] = None
    max_failures: Optional[int] = None
    scenario_budget: Optional[Any] = None
    fault_plan: Optional[Any] = None
    include_trace: bool = True
    sinks: List[str] = field(default_factory=list)
    deltas_watch: Optional[List[str]] = None

    #: Every key a simulate body may carry.
    FIELDS = frozenset(
        {
            "scenarios",
            "length",
            "hyperperiods",
            "record",
            "backend",
            "strict",
            "workers",
            "timeout",
            "retries",
            "backoff",
            "max_failures",
            "scenario_budget",
            "fault_plan",
            "include_trace",
            "sinks",
            "deltas_watch",
        }
    )

    #: Sink selectors the service knows how to build and render (``vcd``
    #: is accepted by the schema but stream-only — the non-streaming
    #: simulate path rejects it with a pointer to the stream endpoint).
    KNOWN_SINKS = ("stats", "deltas", "vcd")

    @classmethod
    def from_payload(cls, payload: Any) -> "SimulateRequest":
        """Validate a request body into a :class:`SimulateRequest`."""
        if not isinstance(payload, Mapping):
            raise invalid_program(
                f"simulate request must be an object, got {type(payload).__name__}"
            )
        unknown = sorted(set(payload) - cls.FIELDS)
        if unknown:
            raise invalid_program(
                f"simulate request has unknown key(s) {unknown}; allowed: "
                f"{sorted(cls.FIELDS)}"
            )
        request = cls()
        scenarios = payload.get("scenarios")
        if not isinstance(scenarios, Sequence) or isinstance(scenarios, str):
            raise invalid_program("'scenarios' must be a non-empty array of scenario objects")
        if not scenarios:
            raise invalid_program("'scenarios' must contain at least one scenario")
        request.scenarios = list(scenarios)
        request.length = _optional_int(payload, "length", minimum=0)
        request.hyperperiods = _optional_int(payload, "hyperperiods", minimum=0)
        request.record = _optional_str_list(payload, "record")
        backend = payload.get("backend")
        if backend is not None and not isinstance(backend, str):
            raise invalid_program(f"'backend' must be a string, got {backend!r}")
        request.backend = backend
        request.strict = _optional_bool(payload, "strict", True)
        request.workers = _optional_int(payload, "workers", minimum=0, default=1)
        request.timeout = _optional_number(payload, "timeout")
        request.retries = _optional_int(payload, "retries", minimum=0)
        request.backoff = _optional_number(payload, "backoff")
        request.max_failures = _optional_int(payload, "max_failures", minimum=0)
        budget = payload.get("scenario_budget")
        if budget is not None:
            if isinstance(budget, bool) or not isinstance(budget, (int, Mapping)):
                raise invalid_program(
                    "'scenario_budget' must be an integer (max instants) or an "
                    "object with 'max_instants'/'max_memory_mb'"
                )
            if isinstance(budget, Mapping):
                unknown_budget = sorted(set(budget) - {"max_instants", "max_memory_mb"})
                if unknown_budget:
                    raise invalid_program(
                        f"'scenario_budget' has unknown key(s) {unknown_budget}"
                    )
                budget = dict(budget)
        request.scenario_budget = budget
        request.fault_plan = payload.get("fault_plan")
        request.include_trace = _optional_bool(payload, "include_trace", True)
        sinks = payload.get("sinks", [])
        if not isinstance(sinks, Sequence) or isinstance(sinks, str):
            raise invalid_program("'sinks' must be an array of sink names")
        for sink in sinks:
            if sink not in cls.KNOWN_SINKS:
                raise invalid_program(
                    f"unknown sink {sink!r}; available: {list(cls.KNOWN_SINKS)}"
                )
        request.sinks = list(sinks)
        request.deltas_watch = _optional_str_list(payload, "deltas_watch")
        return request


def _optional_int(
    payload: Mapping[str, Any],
    name: str,
    minimum: Optional[int] = None,
    default: Optional[int] = None,
) -> Optional[int]:
    """An optional integer body field, range-checked."""
    value = payload.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise invalid_program(f"{name!r} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise invalid_program(f"{name!r} must be >= {minimum}, got {value}")
    return value


def _optional_number(payload: Mapping[str, Any], name: str) -> Optional[float]:
    """An optional non-negative number body field."""
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise invalid_program(f"{name!r} must be a number, got {value!r}")
    if value < 0:
        raise invalid_program(f"{name!r} must be non-negative, got {value}")
    return float(value)


def _optional_bool(payload: Mapping[str, Any], name: str, default: bool) -> bool:
    """An optional boolean body field."""
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise invalid_program(f"{name!r} must be a boolean, got {value!r}")
    return value


def _optional_str_list(payload: Mapping[str, Any], name: str) -> Optional[List[str]]:
    """An optional list-of-strings body field."""
    value = payload.get(name)
    if value is None:
        return None
    if not isinstance(value, Sequence) or isinstance(value, str):
        raise invalid_program(f"{name!r} must be an array of strings")
    for item in value:
        if not isinstance(item, str):
            raise invalid_program(f"{name!r} entries must be strings, got {item!r}")
    return list(value)
