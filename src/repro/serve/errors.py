"""Typed error taxonomy of the serving layer.

Every failure the service can report — over HTTP or through the
framework-free :class:`~repro.serve.service.SimulationService` core — is a
:class:`ServeError` carrying a stable machine-readable ``code``, the HTTP
status it maps to, and a human-readable message.  The codes are the wire
contract (documented in ``docs/API.md``):

=================== ====== ==========================================================
code                status meaning
=================== ====== ==========================================================
``invalid-model``   422    the submitted AADL failed to parse, instantiate or validate
``unschedulable``   422    scheduler synthesis failed (resubmit with
                           ``include_scheduler: false`` to analyse anyway)
``invalid-program`` 422    a scenario program or simulate request failed validation
``model-not-found`` 404    no cached model under that fingerprint (evicted or never
                           submitted — resubmit the source)
``unknown-backend`` 422    the requested simulation backend is not registered
``busy``            503    the server-level concurrency limit rejected the request
                           (backpressure; retry later)
``stream-closed``   409    the simulation stream was already consumed or cancelled
=================== ====== ==========================================================

Scenario-level failures inside an accepted simulation do **not** fail the
HTTP request: deterministic model errors
(:class:`~repro.sig.simulator.SimulationError`) and supervision faults
(:class:`~repro.sig.engine.supervisor.ScenarioFault`, kinds ``crash`` /
``timeout`` / ``budget`` / ``error``) are rendered per scenario by
:func:`simulation_error_payload` and :func:`fault_payload` inside a 200
response — partial results are the point of supervised execution.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "ERROR_STATUS",
    "ServeError",
    "error_payload",
    "fault_from_exception",
    "fault_payload",
    "invalid_program",
    "require",
    "simulation_error_payload",
]

#: ``code -> HTTP status`` of every request-level error the service raises.
ERROR_STATUS: Dict[str, int] = {
    "invalid-model": 422,
    "unschedulable": 422,
    "invalid-program": 422,
    "model-not-found": 404,
    "unknown-backend": 422,
    "busy": 503,
    "stream-closed": 409,
}


class ServeError(Exception):
    """A request-level service failure with a stable code and HTTP status.

    The FastAPI layer maps it to a JSON error response via
    :func:`error_payload`; framework-free callers catch it directly and
    read :attr:`code` / :attr:`status`.
    """

    def __init__(self, code: str, message: str, **extra: Any) -> None:
        if code not in ERROR_STATUS:
            raise ValueError(f"unknown serve error code {code!r}")
        super().__init__(message)
        self.code = code
        self.status = ERROR_STATUS[code]
        self.message = message
        self.extra = extra

    def __repr__(self) -> str:
        """Debug form showing code, status and message."""
        return f"ServeError({self.code!r}, status={self.status}, {self.message!r})"


def error_payload(error: ServeError) -> Dict[str, Any]:
    """The JSON body of a :class:`ServeError` response."""
    body: Dict[str, Any] = {
        "error": {
            "code": error.code,
            "status": error.status,
            "message": error.message,
        }
    }
    if error.extra:
        body["error"].update(error.extra)
    return body


def fault_payload(fault: Any) -> Dict[str, Any]:
    """Render one :class:`~repro.sig.engine.supervisor.ScenarioFault` as JSON.

    The ``kind`` field carries the supervisor's failure taxonomy unchanged
    (``crash`` / ``timeout`` / ``budget`` / ``error``); the worker-side
    traceback travels only for ``error`` faults, exactly as the supervisor
    recorded it.
    """
    payload: Dict[str, Any] = {
        "scenario": fault.scenario,
        "kind": fault.kind,
        "attempts": fault.attempts,
        "message": fault.message,
    }
    if fault.worker is not None:
        payload["worker"] = fault.worker
    if fault.traceback:
        payload["traceback"] = fault.traceback
    return payload


def simulation_error_payload(index: int, error: Exception) -> Dict[str, Any]:
    """Render one deterministic model error (`SimulationError`) as JSON."""
    return {
        "scenario": index,
        "type": type(error).__name__,
        "message": str(error),
    }


def require(condition: bool, code: str, message: str, **extra: Any) -> None:
    """Raise a :class:`ServeError` unless *condition* holds (validation helper)."""
    if not condition:
        raise ServeError(code, message, **extra)


def invalid_program(message: str, **extra: Any) -> ServeError:
    """Shorthand for the ``invalid-program`` validation error."""
    return ServeError("invalid-program", message, **extra)


def fault_from_exception(
    index: int, exc: BaseException, attempts: int = 1, worker: Optional[str] = None
) -> Any:
    """Map a cooperative-guard exception to a :class:`ScenarioFault`.

    Used by the streaming path, which runs scenarios in-process under a
    :func:`~repro.sig.engine.supervisor.guarded` context instead of the
    supervised pool: :class:`~repro.sig.engine.supervisor.ScenarioTimeout`
    becomes a ``timeout`` fault,
    :class:`~repro.sig.engine.supervisor.BudgetExceeded` a ``budget``
    fault, anything else an ``error`` fault — the same taxonomy the
    supervisor reports, so stream consumers and batch consumers parse one
    shape.
    """
    import traceback as traceback_module

    from ..sig.engine.supervisor import (
        BudgetExceeded,
        ScenarioFault,
        ScenarioTimeout,
    )

    if isinstance(exc, ScenarioTimeout):
        kind = "timeout"
        trace = None
    elif isinstance(exc, BudgetExceeded):
        kind = "budget"
        trace = None
    else:
        kind = "error"
        trace = "".join(
            traceback_module.format_exception(type(exc), exc, exc.__traceback__)
        )
    return ScenarioFault(
        scenario=index,
        kind=kind,
        attempts=attempts,
        worker=worker,
        message=str(exc),
        traceback=trace,
    )
