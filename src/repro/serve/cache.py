"""Fingerprint-keyed LRU cache of compiled models for the serving layer.

The whole point of a long-lived server is that compilation is amortised
across traffic: the first submission of a model pays parse → instantiate →
validate → translate → analyse → plan-compile once, and every structurally
equal submission afterwards — from any client — reuses the cached
:class:`~repro.sig.engine.plan.ExecutionPlan` and analysis reports.

Keys are **structural fingerprints**: the submitted AADL source is parsed
and re-rendered through the canonical printer
(:func:`repro.aadl.printer.render_model`), so whitespace, comments and
formatting do not split the cache — two structurally identical models hash
identically however they were typed.  The translation-relevant request
options (root implementation, default package, scheduling policy,
scheduler inclusion, validation strictness) are folded into the hash
because they change the compiled artefact.

A second, *textual* index shortcuts the warm path: byte-identical
resubmissions (`sha256` of the raw source + options) map straight to their
structural fingerprint without even re-parsing — this is what makes the
E18 warm-path latency a hash lookup instead of a parse.

The cache is a **bounded LRU** with single-flight compilation: concurrent
submissions of the same fingerprint block on one compile (exactly one
factory call per fingerprint, asserted by the concurrency fuzz suite), and
inserting past ``capacity`` evicts the least-recently-used entry, whose
next submission transparently recompiles.  Hit/miss/eviction/compile
counters are maintained both cache-wide and per entry, and surfaced over
``GET /models/{fingerprint}``.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..aadl.parser import parse_string
from ..aadl.printer import render_model

__all__ = [
    "PlanCache",
    "canonical_source",
    "model_fingerprint",
    "source_key",
]


def canonical_source(source: str, filename: str = "<submitted>") -> str:
    """Parse AADL *source* and re-render it in canonical form.

    The canonical rendering is the whitespace/comment-insensitive identity
    of the model: ``canonical_source`` is idempotent (rendering is a fixed
    point of parse→render), so any two sources with the same structure
    canonicalise to the same text.  Parse failures propagate — the caller
    maps them to the ``invalid-model`` error.
    """
    return render_model(parse_string(source, filename=filename))


def model_fingerprint(canonical: str, options_key: Tuple[Any, ...]) -> str:
    """The structural fingerprint: sha256 over canonical source + options.

    *options_key* is the tuple of translation-relevant request options
    (root, package, policy, scheduler inclusion, strictness) — anything
    that changes what "the compiled model" means must be part of it.
    """
    digest = hashlib.sha256()
    digest.update(canonical.encode("utf-8"))
    digest.update(repr(options_key).encode("utf-8"))
    return digest.hexdigest()


def source_key(source: str, options_key: Tuple[Any, ...]) -> str:
    """The textual fast-path key: sha256 over the *raw* source + options.

    Byte-identical resubmissions hit this index and skip the parse
    entirely; textually different but structurally equal sources miss it
    and converge on the same structural fingerprint through
    :func:`canonical_source`.
    """
    digest = hashlib.sha256()
    digest.update(source.encode("utf-8"))
    digest.update(repr(options_key).encode("utf-8"))
    return "src-" + digest.hexdigest()


class PlanCache:
    """Bounded LRU of compiled models, keyed by structural fingerprint.

    Thread-safe.  :meth:`get_or_create` is the single entry point of the
    submit path: it guarantees **exactly one** factory call per resident
    fingerprint however many threads submit structurally equal models
    concurrently (single-flight), and touches the LRU order on every hit.
    :meth:`get` is the simulate-path lookup (touches LRU, counts hit/miss);
    :meth:`peek` reads without touching anything (``GET /models/{fp}``).
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        #: raw-source sha -> structural fingerprint (warm-path shortcut).
        self._source_index: Dict[str, str] = {}
        #: structural fingerprint -> raw-source shas pointing at it (for
        #: eviction cleanup).
        self._sources_of: Dict[str, List[str]] = {}
        #: fingerprint -> in-flight compilation (single-flight rendezvous).
        self._inflight: Dict[str, "_Flight"] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Total factory runs per fingerprint, *across* evictions — the
        #: observable the concurrency fuzz suite pins down: equal to 1 per
        #: resident fingerprint, +1 after each evict-and-resubmit cycle.
        self.compiles: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def fingerprints(self) -> List[str]:
        """Resident fingerprints, least recently used first."""
        with self._lock:
            return list(self._entries)

    def resolve_source(self, key: str) -> Optional[str]:
        """The structural fingerprint of a raw-source key, if remembered."""
        with self._lock:
            return self._source_index.get(key)

    def get(self, fingerprint: str) -> Optional[Any]:
        """The entry under *fingerprint*, touching LRU and counters."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            entry.hits += 1
            return entry

    def peek(self, fingerprint: str) -> Optional[Any]:
        """The entry under *fingerprint* without touching LRU or counters."""
        with self._lock:
            return self._entries.get(fingerprint)

    # ------------------------------------------------------------------
    # insertion (single-flight)
    # ------------------------------------------------------------------
    def get_or_create(
        self,
        fingerprint: str,
        factory: Callable[[], Any],
        source_keys: Tuple[str, ...] = (),
    ) -> Tuple[Any, bool]:
        """The entry under *fingerprint*, compiling it at most once.

        Returns ``(entry, created)``.  When several threads race on the
        same absent fingerprint, exactly one runs *factory* and the rest
        block until it finishes (sharing its result — or its exception,
        which every waiter re-raises).  *source_keys* are raw-source hashes
        to register in the textual fast-path index.
        """
        while True:
            with self._lock:
                entry = self._entries.get(fingerprint)
                if entry is not None:
                    self._entries.move_to_end(fingerprint)
                    self.hits += 1
                    entry.hits += 1
                    self._index_sources(fingerprint, source_keys)
                    return entry, False
                flight = self._inflight.get(fingerprint)
                if flight is None:
                    flight = _Flight()
                    self._inflight[fingerprint] = flight
                    self.misses += 1
                    self.compiles[fingerprint] = self.compiles.get(fingerprint, 0) + 1
                    break
            # Another thread is compiling this fingerprint: wait for it,
            # then loop to pick the entry up (or to take over if it failed).
            flight.done.wait()
            if flight.error is not None:
                raise flight.error

        try:
            entry = factory()
        except BaseException as exc:
            with self._lock:
                # A failed compile leaves no entry (and no stale compile
                # credit): the next submission retries from scratch.
                self.compiles[fingerprint] -= 1
                if not self.compiles[fingerprint]:
                    del self.compiles[fingerprint]
                del self._inflight[fingerprint]
            flight.error = exc
            flight.done.set()
            raise
        with self._lock:
            self._entries[fingerprint] = entry
            self._entries.move_to_end(fingerprint)
            self._index_sources(fingerprint, source_keys)
            del self._inflight[fingerprint]
            self._evict_over_capacity()
        flight.done.set()
        return entry, True

    def _index_sources(self, fingerprint: str, source_keys: Tuple[str, ...]) -> None:
        # Caller holds the lock.
        for key in source_keys:
            if self._source_index.get(key) != fingerprint:
                self._source_index[key] = fingerprint
                self._sources_of.setdefault(fingerprint, []).append(key)

    def _evict_over_capacity(self) -> None:
        # Caller holds the lock.
        while len(self._entries) > self.capacity:
            victim, _ = self._entries.popitem(last=False)
            self.evictions += 1
            for key in self._sources_of.pop(victim, ()):  # drop stale shortcuts
                self._source_index.pop(key, None)

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def evict(self, fingerprint: str) -> bool:
        """Explicitly drop one entry (``DELETE /models/{fp}``)."""
        with self._lock:
            entry = self._entries.pop(fingerprint, None)
            if entry is None:
                return False
            self.evictions += 1
            for key in self._sources_of.pop(fingerprint, ()):
                self._source_index.pop(key, None)
            return True

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self.evictions += len(self._entries)
            self._entries.clear()
            self._source_index.clear()
            self._sources_of.clear()

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Cache-wide counters (part of ``GET /stats``)."""
        with self._lock:
            return {
                "capacity": self.capacity,
                "resident": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "compiles": sum(self.compiles.values()),
                "inflight": len(self._inflight),
            }


class _Flight:
    """Rendezvous of one in-flight compilation (single-flight)."""

    __slots__ = ("done", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.error: Optional[BaseException] = None
