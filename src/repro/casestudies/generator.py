"""Parametric generator of synthetic AADL case studies.

Used by the scalability experiment (E10): the paper claims that the clock
calculus handles "several thousand clocks" and that "more than ten case
studies have been tested, and there is no special size limitation on
transformation".  The generator produces AADL models of controlled size —
N periodic threads spread over M processes, optional shared data per process,
optional cross-thread event connections — so that those claims can be checked
against our re-implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..aadl.model import (
    AadlModel,
    AadlPackage,
    AccessKind,
    ComponentCategory,
    ComponentImplementation,
    ComponentType,
    Connection,
    ConnectionEnd,
    ConnectionKind,
    DataAccess,
    Port,
    PortDirection,
    PortKind,
    Subcomponent,
)
from ..aadl.properties import (
    ListValue,
    PropertyAssociation,
    enum_value,
    integer,
    ms,
    reference,
)
from ..sig.engine.batch import default_scenario
from ..sig.process import ProcessModel
from ..sig.simulator import Scenario

#: Periods (ms) drawn from when building harmonic / non-harmonic task sets.
HARMONIC_PERIODS = [2, 4, 8, 16, 32]
NON_HARMONIC_PERIODS = [3, 4, 5, 6, 8, 10, 12, 15, 20]


@dataclass
class GeneratorConfig:
    """Shape of a generated case study."""

    name: str = "Synthetic"
    processes: int = 1
    threads_per_process: int = 4
    shared_data_per_process: int = 1
    event_connections_per_process: int = 2
    harmonic: bool = True
    wcet_fraction: float = 0.08  # WCET as a fraction of the period
    seed: int = 0

    @property
    def total_threads(self) -> int:
        return self.processes * self.threads_per_process


@dataclass
class GeneratedCaseStudy:
    """A generated model plus the ground truth used by tests."""

    config: GeneratorConfig
    model: AadlModel
    root_implementation: str
    thread_periods_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def package_name(self) -> str:
        return self.config.name


def _make_thread_type(
    package: AadlPackage,
    name: str,
    period: float,
    deadline: float,
    wcet: float,
    access_right: str = "read_write",
) -> None:
    thread = ComponentType(name=name, category=ComponentCategory.THREAD)
    thread.add_feature(Port(name="pIn", direction=PortDirection.IN, kind=PortKind.EVENT))
    thread.add_feature(Port(name="pOut", direction=PortDirection.OUT, kind=PortKind.EVENT))
    access = DataAccess(name="reqData", access=AccessKind.REQUIRES, classifier="SharedType.impl")
    access.properties.add(PropertyAssociation("Access_Right", enum_value(access_right)))
    thread.add_feature(access)
    thread.properties.add(PropertyAssociation("Dispatch_Protocol", enum_value("Periodic")))
    thread.properties.add(PropertyAssociation("Period", ms(period)))
    thread.properties.add(PropertyAssociation("Deadline", ms(deadline)))
    thread.properties.add(PropertyAssociation("Compute_Execution_Time", ms(wcet)))
    package.add_type(thread)
    package.add_implementation(ComponentImplementation(name=f"{name}.impl", category=ComponentCategory.THREAD))


def generate_case_study(config: GeneratorConfig) -> GeneratedCaseStudy:
    """Generate a synthetic case study according to *config*."""
    rng = random.Random(config.seed)
    model = AadlModel()
    package = AadlPackage(name=config.name)
    model.add_package(package)

    shared_type = ComponentType(name="SharedType", category=ComponentCategory.DATA)
    package.add_type(shared_type)
    package.add_implementation(ComponentImplementation(name="SharedType.impl", category=ComponentCategory.DATA))

    cpu = ComponentType(name="cpu", category=ComponentCategory.PROCESSOR)
    cpu.properties.add(PropertyAssociation("Scheduling_Protocol", enum_value("RMS")))
    package.add_type(cpu)
    package.add_implementation(ComponentImplementation(name="cpu.impl", category=ComponentCategory.PROCESSOR))

    periods_pool = HARMONIC_PERIODS if config.harmonic else NON_HARMONIC_PERIODS
    thread_periods: Dict[str, float] = {}

    process_names: List[str] = []
    for process_index in range(config.processes):
        process_name = f"proc{process_index}"
        process_names.append(process_name)
        process_type = ComponentType(name=process_name, category=ComponentCategory.PROCESS)
        process_type.add_feature(Port(name="pIn", direction=PortDirection.IN, kind=PortKind.EVENT))
        process_type.add_feature(Port(name="pOut", direction=PortDirection.OUT, kind=PortKind.EVENT))
        package.add_type(process_type)
        implementation = ComponentImplementation(name=f"{process_name}.impl", category=ComponentCategory.PROCESS)

        thread_names: List[str] = []
        for thread_index in range(config.threads_per_process):
            thread_type_name = f"{process_name}_th{thread_index}"
            period = float(rng.choice(periods_pool))
            wcet = max(0.1, round(period * config.wcet_fraction, 1))
            # The first accessor of each shared data component is its (only)
            # writer; later accessors read it.  This keeps the generated
            # models free of unconstrained concurrent writes, like the
            # hand-written case study.
            access_right = (
                "write_only" if thread_index < config.shared_data_per_process else "read_only"
            )
            _make_thread_type(package, thread_type_name, period, period, wcet, access_right=access_right)
            subcomponent_name = f"th{thread_index}"
            thread_names.append(subcomponent_name)
            implementation.add_subcomponent(
                Subcomponent(
                    name=subcomponent_name,
                    category=ComponentCategory.THREAD,
                    classifier=f"{thread_type_name}.impl",
                )
            )
            thread_periods[f"{process_name}.{subcomponent_name}"] = period

        for data_index in range(config.shared_data_per_process):
            implementation.add_subcomponent(
                Subcomponent(
                    name=f"shared{data_index}",
                    category=ComponentCategory.DATA,
                    classifier="SharedType.impl",
                )
            )
        # Access connections: each thread accesses shared data round-robin.
        if config.shared_data_per_process > 0:
            for thread_index, thread_name in enumerate(thread_names):
                data_name = f"shared{thread_index % config.shared_data_per_process}"
                implementation.add_connection(
                    Connection(
                        name=f"acc_{thread_name}",
                        kind=ConnectionKind.DATA_ACCESS,
                        source=ConnectionEnd(subcomponent=None, feature=data_name),
                        destination=ConnectionEnd(subcomponent=thread_name, feature="reqData"),
                    )
                )
        # Event connections between consecutive threads.
        for connection_index in range(min(config.event_connections_per_process, len(thread_names) - 1)):
            source = thread_names[connection_index]
            destination = thread_names[connection_index + 1]
            implementation.add_connection(
                Connection(
                    name=f"evt_{connection_index}",
                    kind=ConnectionKind.PORT,
                    source=ConnectionEnd(subcomponent=source, feature="pOut"),
                    destination=ConnectionEnd(subcomponent=destination, feature="pIn"),
                )
            )
        package.add_implementation(implementation)

    # Root system with one processor per process so that every generated
    # task set stays well below the non-preemptive schedulability limit.
    root_type = ComponentType(name=f"{config.name}System", category=ComponentCategory.SYSTEM)
    package.add_type(root_type)
    root_impl = ComponentImplementation(
        name=f"{config.name}System.impl", category=ComponentCategory.SYSTEM
    )
    processor_count = max(1, config.processes)
    for processor_index in range(processor_count):
        root_impl.add_subcomponent(
            Subcomponent(
                name=f"cpu{processor_index}",
                category=ComponentCategory.PROCESSOR,
                classifier="cpu.impl",
            )
        )
    for process_index, process_name in enumerate(process_names):
        root_impl.add_subcomponent(
            Subcomponent(
                name=process_name,
                category=ComponentCategory.PROCESS,
                classifier=f"{process_name}.impl",
            )
        )
        root_impl.properties.add(
            PropertyAssociation(
                "Actual_Processor_Binding",
                ListValue((reference(f"cpu{process_index % processor_count}"),)),
                applies_to=((process_name,),),
            )
        )
    package.add_implementation(root_impl)

    return GeneratedCaseStudy(
        config=config,
        model=model,
        root_implementation=f"{config.name}System.impl",
        thread_periods_ms=thread_periods,
    )


def scenario_sweep(
    process: ProcessModel,
    length: Optional[int],
    variants: int,
    base_stimuli: Optional[Dict[str, int]] = None,
    seed: int = 0,
    period_range: Sequence[int] = (2, 12),
) -> List[Scenario]:
    """Build *variants* input scenarios for a translated system model.

    Every scenario keeps the base processor ticks always present (as the tool
    chain does) and drives each remaining input with a randomised periodic
    stimulus, so a batch explores different environment behaviours of the
    same design.  Scenario 0 uses *base_stimuli* verbatim when given, which
    makes the sweep a superset of the single tool-chain scenario.

    The scenarios are symbolic rule programs (constant memory whatever the
    horizon); *length* may be ``None`` to build unbounded scenarios whose
    horizon is chosen at simulate time (``simulate_batch(..., length=N)``).

    The result is meant to be fed to
    :func:`repro.sig.engine.simulate_batch`, which compiles the model once
    and reuses the execution plan across the whole sweep.
    """
    if variants <= 0:
        return []
    rng = random.Random(seed)
    low, high = int(period_range[0]), int(period_range[-1])
    stimuli_inputs = [
        decl.name
        for decl in process.inputs()
        if not (decl.name == "tick" or decl.name.endswith("_tick"))
    ]
    scenarios: List[Scenario] = []
    for index in range(variants):
        if index == 0 and base_stimuli:
            scenarios.append(default_scenario(process, length, base_stimuli))
            continue
        scenario = default_scenario(process, length)
        for name in stimuli_inputs:
            period = rng.randint(low, high)
            scenario.set_periodic(name, period, phase=rng.randrange(period))
        scenarios.append(scenario)
    return scenarios
