"""Catalog of case studies.

The paper states that "more than ten case studies have been tested" with the
tool chain.  This catalog collects the tutorial ProducerConsumer model plus a
set of synthetic-but-realistic designs (named after typical avionic and
automotive subsystems) built with the generator, each with a different shape:
number of processes, threads, shared data components and period structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..aadl.instance import ComponentInstance, Instantiator
from ..aadl.model import AadlModel
from .generator import GeneratedCaseStudy, GeneratorConfig, generate_case_study
from .producer_consumer import instantiate_producer_consumer, load_producer_consumer_model


@dataclass
class CaseStudyEntry:
    """One entry of the catalog."""

    name: str
    description: str
    load_model: Callable[[], AadlModel]
    root_implementation: str
    default_package: Optional[str] = None

    def instantiate(self) -> ComponentInstance:
        model = self.load_model()
        return Instantiator(model, default_package=self.default_package).instantiate(self.root_implementation)


def _generated_entry(name: str, description: str, config: GeneratorConfig) -> CaseStudyEntry:
    def load() -> AadlModel:
        return generate_case_study(config).model

    return CaseStudyEntry(
        name=name,
        description=description,
        load_model=load,
        root_implementation=f"{config.name}System.impl",
        default_package=config.name,
    )


CATALOG: List[CaseStudyEntry] = [
    CaseStudyEntry(
        name="producer_consumer",
        description="Tutorial avionic ProducerConsumer case study from the paper (C-S Toulouse / OPEES).",
        load_model=load_producer_consumer_model,
        root_implementation="ProducerConsumerSystem.others",
        default_package="ProducerConsumer",
    ),
    _generated_entry(
        "flight_guidance",
        "Flight-guidance-like design: two processes, harmonic periods, one shared state per process.",
        GeneratorConfig(name="FlightGuidance", processes=2, threads_per_process=4, harmonic=True, seed=1),
    ),
    _generated_entry(
        "cruise_control",
        "Cruise-control-like design: single process, sensor/compute/actuate threads, non-harmonic periods.",
        GeneratorConfig(name="CruiseControl", processes=1, threads_per_process=3, harmonic=False, seed=2),
    ),
    _generated_entry(
        "flight_management",
        "Flight-management-like design: four processes with heavy data sharing.",
        GeneratorConfig(
            name="FlightManagement", processes=4, threads_per_process=5, shared_data_per_process=2, seed=3
        ),
    ),
    _generated_entry(
        "sensor_fusion",
        "Sensor-fusion pipeline: one process, many threads chained by event connections.",
        GeneratorConfig(
            name="SensorFusion",
            processes=1,
            threads_per_process=8,
            event_connections_per_process=7,
            harmonic=True,
            seed=4,
        ),
    ),
    _generated_entry(
        "engine_monitor",
        "Engine-monitoring design: two processes, non-harmonic periods, no shared data.",
        GeneratorConfig(
            name="EngineMonitor",
            processes=2,
            threads_per_process=4,
            shared_data_per_process=0,
            harmonic=False,
            seed=5,
        ),
    ),
    _generated_entry(
        "landing_gear",
        "Landing-gear controller: three processes with a small number of threads each.",
        GeneratorConfig(name="LandingGear", processes=3, threads_per_process=2, harmonic=True, seed=6),
    ),
    _generated_entry(
        "cabin_pressure",
        "Cabin-pressure regulation: single process, four threads, shared state, harmonic.",
        GeneratorConfig(name="CabinPressure", processes=1, threads_per_process=4, harmonic=True, seed=7),
    ),
    _generated_entry(
        "fuel_management",
        "Fuel-management design: two processes, five threads each, two shared data per process.",
        GeneratorConfig(
            name="FuelManagement", processes=2, threads_per_process=5, shared_data_per_process=2, seed=8
        ),
    ),
    _generated_entry(
        "autobrake",
        "Auto-brake design: single process, non-harmonic, tight WCET fractions.",
        GeneratorConfig(name="AutoBrake", processes=1, threads_per_process=5, harmonic=False, wcet_fraction=0.3, seed=9),
    ),
    _generated_entry(
        "display_manager",
        "Display-manager design: three processes driving a shared display buffer.",
        GeneratorConfig(name="DisplayManager", processes=3, threads_per_process=3, shared_data_per_process=1, seed=10),
    ),
    _generated_entry(
        "large_integration",
        "Large integration model used to stress the transformation (10 processes, 6 threads each).",
        GeneratorConfig(name="LargeIntegration", processes=10, threads_per_process=6, seed=11),
    ),
]


def catalog_names() -> List[str]:
    return [entry.name for entry in CATALOG]


def load_case_study(name: str) -> CaseStudyEntry:
    for entry in CATALOG:
        if entry.name == name:
            return entry
    raise KeyError(f"unknown case study {name!r}; available: {', '.join(catalog_names())}")
