"""The ProducerConsumer avionic tutorial case study (Sections II and V).

The case study, initially provided by C-S Toulouse for the OPEES project, is
re-modelled here from the description in the paper:

* a root ``system`` composed of the process ``prProdCons``, the processor
  ``Processor1`` it is bound to, and two subsystems ``sysEnv`` (environment)
  and ``sysOperatorDisplay`` (informed when a timeout occurs);
* ``prProdCons`` contains four periodic threads — ``thProducer`` (4 ms),
  ``thConsumer`` (6 ms), ``thProdTimer`` (8 ms), ``thConsTimer`` (8 ms) — and
  the shared data component ``Queue`` written by the producer and read by the
  consumer;
* each timer thread offers start/stop timer services and emits a ``pTimeOut``
  event when the timer expires, which is forwarded both to the corresponding
  worker thread and to the operator display;
* ``thProducer`` carries the small mode automaton used by the determinism
  experiment (E7): two transitions leave the ``producing`` mode on the same
  ``pProdTimeOut`` trigger, which is non-deterministic unless priorities are
  specified on the transitions.

The module provides the model both as textual AADL (parsed by
:mod:`repro.aadl.parser`) and as an equivalent programmatic construction, plus
the timing facts quoted by the paper that the benchmarks check against.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..aadl.instance import ComponentInstance, Instantiator
from ..aadl.model import (
    AadlModel,
    AadlPackage,
    AccessKind,
    ComponentCategory,
    ComponentImplementation,
    ComponentType,
    Connection,
    ConnectionEnd,
    ConnectionKind,
    DataAccess,
    Mode,
    ModeTransition,
    Port,
    PortDirection,
    PortKind,
    Subcomponent,
)
from ..aadl.parser import parse_string
from ..aadl.properties import (
    PropertyAssociation,
    enum_value,
    integer,
    io_time,
    ListValue,
    ms,
    reference,
)

#: Facts stated in the paper, used by tests and the benchmark harness.
CASE_STUDY_FACTS: Dict[str, object] = {
    "process_name": "prProdCons",
    "processor_name": "Processor1",
    "subsystems": ["sysEnv", "sysOperatorDisplay"],
    "threads": ["thProducer", "thConsumer", "thProdTimer", "thConsTimer"],
    "periods_ms": {
        "thProducer": 4.0,
        "thConsumer": 6.0,
        "thProdTimer": 8.0,
        "thConsTimer": 8.0,
    },
    "shared_data": "Queue",
    "hyperperiod_ms": 24.0,
}


PRODUCER_CONSUMER_AADL = """
-- ProducerConsumer tutorial avionic case study (OPEES / C-S Toulouse),
-- re-modelled from the description in the DATE 2013 paper.
package ProducerConsumer
public

  data QueueType
  properties
    Concurrency_Control_Protocol => Protected_Access;
  end QueueType;

  data implementation QueueType.impl
  end QueueType.impl;

  thread thProducer
  features
    pProdStart: in event port;
    pProdTimeOut: in event port;
    pProdStartTimer: out event port;
    pProdStopTimer: out event port;
    pProdOK: out event data port;
    reqQueue: requires data access QueueType.impl {Access_Right => write_only;};
  properties
    Dispatch_Protocol => Periodic;
    Period => 4 ms;
    Deadline => 4 ms;
    Compute_Execution_Time => 0 ms .. 1 ms;
    Input_Time => ([Time => Dispatch; Offset => 0 ms .. 0 ms;]);
    Output_Time => ([Time => Completion; Offset => 0 ms .. 0 ms;]);
  end thProducer;

  thread implementation thProducer.impl
  modes
    idle: initial mode;
    producing: mode;
    error: mode;
    t1: idle -[ pProdStart ]-> producing;
    t2: producing -[ pProdTimeOut ]-> idle;
    t3: producing -[ pProdTimeOut ]-> error;
  end thProducer.impl;

  thread thConsumer
  features
    pConsStart: in event port;
    pConsTimeOut: in event port;
    pConsStartTimer: out event port;
    pConsStopTimer: out event port;
    pConsOK: out event data port;
    reqQueue: requires data access QueueType.impl {Access_Right => read_only;};
  properties
    Dispatch_Protocol => Periodic;
    Period => 6 ms;
    Deadline => 6 ms;
    Compute_Execution_Time => 0 ms .. 1 ms;
    Input_Time => ([Time => Dispatch; Offset => 0 ms .. 0 ms;]);
    Output_Time => ([Time => Completion; Offset => 0 ms .. 0 ms;]);
  end thConsumer;

  thread implementation thConsumer.impl
  end thConsumer.impl;

  thread thTimer
  features
    pStartTimer: in event port {Queue_Size => 2;};
    pStopTimer: in event port;
    pTimeOut: out event port;
  properties
    Dispatch_Protocol => Periodic;
    Period => 8 ms;
    Deadline => 8 ms;
    Compute_Execution_Time => 0 ms .. 1 ms;
  end thTimer;

  thread implementation thTimer.impl
  end thTimer.impl;

  process prProdCons
  features
    pProdStart: in event port;
    pConsStart: in event port;
    pProdTimeOut: out event port;
    pConsTimeOut: out event port;
  end prProdCons;

  process implementation prProdCons.impl
  subcomponents
    thProducer: thread thProducer.impl;
    thConsumer: thread thConsumer.impl;
    thProdTimer: thread thTimer.impl;
    thConsTimer: thread thTimer.impl;
    Queue: data QueueType.impl;
  connections
    cnxProdStart: port pProdStart -> thProducer.pProdStart;
    cnxConsStart: port pConsStart -> thConsumer.pConsStart;
    cnxProdStartTimer: port thProducer.pProdStartTimer -> thProdTimer.pStartTimer;
    cnxProdStopTimer: port thProducer.pProdStopTimer -> thProdTimer.pStopTimer;
    cnxProdTimeOut: port thProdTimer.pTimeOut -> thProducer.pProdTimeOut;
    cnxConsStartTimer: port thConsumer.pConsStartTimer -> thConsTimer.pStartTimer;
    cnxConsStopTimer: port thConsumer.pConsStopTimer -> thConsTimer.pStopTimer;
    cnxConsTimeOut: port thConsTimer.pTimeOut -> thConsumer.pConsTimeOut;
    cnxProdAlarm: port thProdTimer.pTimeOut -> pProdTimeOut;
    cnxConsAlarm: port thConsTimer.pTimeOut -> pConsTimeOut;
    accProducer: data access Queue -> thProducer.reqQueue;
    accConsumer: data access Queue -> thConsumer.reqQueue;
  end prProdCons.impl;

  system sysEnv
  features
    pProdStart: out event port;
    pConsStart: out event port;
  end sysEnv;

  system implementation sysEnv.impl
  end sysEnv.impl;

  system sysOperatorDisplay
  features
    pProdTimeOut: in event port;
    pConsTimeOut: in event port;
  end sysOperatorDisplay;

  system implementation sysOperatorDisplay.impl
  end sysOperatorDisplay.impl;

  processor cpu
  properties
    Scheduling_Protocol => RMS;
  end cpu;

  processor implementation cpu.impl
  end cpu.impl;

  system ProducerConsumerSystem
  end ProducerConsumerSystem;

  system implementation ProducerConsumerSystem.others
  subcomponents
    prProdCons: process prProdCons.impl;
    Processor1: processor cpu.impl;
    sysEnv: system sysEnv.impl;
    sysOperatorDisplay: system sysOperatorDisplay.impl;
  connections
    envProd: port sysEnv.pProdStart -> prProdCons.pProdStart;
    envCons: port sysEnv.pConsStart -> prProdCons.pConsStart;
    dispProd: port prProdCons.pProdTimeOut -> sysOperatorDisplay.pProdTimeOut;
    dispCons: port prProdCons.pConsTimeOut -> sysOperatorDisplay.pConsTimeOut;
  properties
    Actual_Processor_Binding => (reference (Processor1)) applies to prProdCons;
  end ProducerConsumerSystem.others;

end ProducerConsumer;
"""


def load_producer_consumer_model() -> AadlModel:
    """Parse the textual AADL source of the case study."""
    return parse_string(PRODUCER_CONSUMER_AADL, filename="ProducerConsumer.aadl")


def instantiate_producer_consumer(model: Optional[AadlModel] = None) -> ComponentInstance:
    """Instantiate the root system of the case study."""
    if model is None:
        model = load_producer_consumer_model()
    return Instantiator(model, default_package="ProducerConsumer").instantiate(
        "ProducerConsumerSystem.others"
    )


# ----------------------------------------------------------------------
# programmatic construction (same model, without going through the parser)
# ----------------------------------------------------------------------
def _periodic_thread_properties(period_ms: float, deadline_ms: float, wcet_ms: float):
    return [
        PropertyAssociation("Dispatch_Protocol", enum_value("Periodic")),
        PropertyAssociation("Period", ms(period_ms)),
        PropertyAssociation("Deadline", ms(deadline_ms)),
        PropertyAssociation("Compute_Execution_Time", ms(wcet_ms)),
        PropertyAssociation("Input_Time", ListValue((io_time("Dispatch", 0.0),))),
        PropertyAssociation("Output_Time", ListValue((io_time("Completion", 0.0),))),
    ]


def _event_port(name: str, direction: PortDirection, kind: PortKind = PortKind.EVENT) -> Port:
    return Port(name=name, direction=direction, kind=kind)


def build_producer_consumer_model() -> AadlModel:
    """Build the case-study model programmatically (used by property tests to
    cross-check the parser)."""
    model = AadlModel()
    package = AadlPackage(name="ProducerConsumer")
    model.add_package(package)

    queue_type = ComponentType(name="QueueType", category=ComponentCategory.DATA)
    queue_type.properties.add(
        PropertyAssociation("Concurrency_Control_Protocol", enum_value("Protected_Access"))
    )
    package.add_type(queue_type)
    package.add_implementation(
        ComponentImplementation(name="QueueType.impl", category=ComponentCategory.DATA)
    )

    # -- thProducer -----------------------------------------------------
    producer = ComponentType(name="thProducer", category=ComponentCategory.THREAD)
    producer.add_feature(_event_port("pProdStart", PortDirection.IN))
    producer.add_feature(_event_port("pProdTimeOut", PortDirection.IN))
    producer.add_feature(_event_port("pProdStartTimer", PortDirection.OUT))
    producer.add_feature(_event_port("pProdStopTimer", PortDirection.OUT))
    producer.add_feature(_event_port("pProdOK", PortDirection.OUT, PortKind.EVENT_DATA))
    producer_access = DataAccess(name="reqQueue", access=AccessKind.REQUIRES, classifier="QueueType.impl")
    producer_access.properties.add(PropertyAssociation("Access_Right", enum_value("write_only")))
    producer.add_feature(producer_access)
    for association in _periodic_thread_properties(4.0, 4.0, 1.0):
        producer.properties.add(association)
    package.add_type(producer)

    producer_impl = ComponentImplementation(name="thProducer.impl", category=ComponentCategory.THREAD)
    producer_impl.modes["idle"] = Mode(name="idle", initial=True)
    producer_impl.modes["producing"] = Mode(name="producing")
    producer_impl.modes["error"] = Mode(name="error")
    producer_impl.mode_transitions.extend(
        [
            ModeTransition(name="t1", source="idle", destination="producing", triggers=("pProdStart",)),
            ModeTransition(name="t2", source="producing", destination="idle", triggers=("pProdTimeOut",)),
            ModeTransition(name="t3", source="producing", destination="error", triggers=("pProdTimeOut",)),
        ]
    )
    package.add_implementation(producer_impl)

    # -- thConsumer -----------------------------------------------------
    consumer = ComponentType(name="thConsumer", category=ComponentCategory.THREAD)
    consumer.add_feature(_event_port("pConsStart", PortDirection.IN))
    consumer.add_feature(_event_port("pConsTimeOut", PortDirection.IN))
    consumer.add_feature(_event_port("pConsStartTimer", PortDirection.OUT))
    consumer.add_feature(_event_port("pConsStopTimer", PortDirection.OUT))
    consumer.add_feature(_event_port("pConsOK", PortDirection.OUT, PortKind.EVENT_DATA))
    consumer_access = DataAccess(name="reqQueue", access=AccessKind.REQUIRES, classifier="QueueType.impl")
    consumer_access.properties.add(PropertyAssociation("Access_Right", enum_value("read_only")))
    consumer.add_feature(consumer_access)
    for association in _periodic_thread_properties(6.0, 6.0, 1.0):
        consumer.properties.add(association)
    package.add_type(consumer)
    package.add_implementation(
        ComponentImplementation(name="thConsumer.impl", category=ComponentCategory.THREAD)
    )

    # -- thTimer ----------------------------------------------------------
    timer = ComponentType(name="thTimer", category=ComponentCategory.THREAD)
    start_timer = _event_port("pStartTimer", PortDirection.IN)
    start_timer.properties.add(PropertyAssociation("Queue_Size", integer(2)))
    timer.add_feature(start_timer)
    timer.add_feature(_event_port("pStopTimer", PortDirection.IN))
    timer.add_feature(_event_port("pTimeOut", PortDirection.OUT))
    for association in _periodic_thread_properties(8.0, 8.0, 1.0):
        if association.name in ("Input_Time", "Output_Time"):
            continue
        timer.properties.add(association)
    package.add_type(timer)
    package.add_implementation(
        ComponentImplementation(name="thTimer.impl", category=ComponentCategory.THREAD)
    )

    # -- prProdCons -------------------------------------------------------
    process_type = ComponentType(name="prProdCons", category=ComponentCategory.PROCESS)
    process_type.add_feature(_event_port("pProdStart", PortDirection.IN))
    process_type.add_feature(_event_port("pConsStart", PortDirection.IN))
    process_type.add_feature(_event_port("pProdTimeOut", PortDirection.OUT))
    process_type.add_feature(_event_port("pConsTimeOut", PortDirection.OUT))
    package.add_type(process_type)

    process_impl = ComponentImplementation(name="prProdCons.impl", category=ComponentCategory.PROCESS)
    for thread_name, classifier in [
        ("thProducer", "thProducer.impl"),
        ("thConsumer", "thConsumer.impl"),
        ("thProdTimer", "thTimer.impl"),
        ("thConsTimer", "thTimer.impl"),
    ]:
        process_impl.add_subcomponent(
            Subcomponent(name=thread_name, category=ComponentCategory.THREAD, classifier=classifier)
        )
    process_impl.add_subcomponent(
        Subcomponent(name="Queue", category=ComponentCategory.DATA, classifier="QueueType.impl")
    )

    def port_connection(name: str, source: str, destination: str) -> Connection:
        def end(text: str) -> ConnectionEnd:
            if "." in text:
                sub, feature = text.split(".")
                return ConnectionEnd(subcomponent=sub, feature=feature)
            return ConnectionEnd(subcomponent=None, feature=text)

        return Connection(name=name, kind=ConnectionKind.PORT, source=end(source), destination=end(destination))

    for name, source, destination in [
        ("cnxProdStart", "pProdStart", "thProducer.pProdStart"),
        ("cnxConsStart", "pConsStart", "thConsumer.pConsStart"),
        ("cnxProdStartTimer", "thProducer.pProdStartTimer", "thProdTimer.pStartTimer"),
        ("cnxProdStopTimer", "thProducer.pProdStopTimer", "thProdTimer.pStopTimer"),
        ("cnxProdTimeOut", "thProdTimer.pTimeOut", "thProducer.pProdTimeOut"),
        ("cnxConsStartTimer", "thConsumer.pConsStartTimer", "thConsTimer.pStartTimer"),
        ("cnxConsStopTimer", "thConsumer.pConsStopTimer", "thConsTimer.pStopTimer"),
        ("cnxConsTimeOut", "thConsTimer.pTimeOut", "thConsumer.pConsTimeOut"),
        ("cnxProdAlarm", "thProdTimer.pTimeOut", "pProdTimeOut"),
        ("cnxConsAlarm", "thConsTimer.pTimeOut", "pConsTimeOut"),
    ]:
        process_impl.add_connection(port_connection(name, source, destination))
    process_impl.add_connection(
        Connection(
            name="accProducer",
            kind=ConnectionKind.DATA_ACCESS,
            source=ConnectionEnd(subcomponent=None, feature="Queue"),
            destination=ConnectionEnd(subcomponent="thProducer", feature="reqQueue"),
        )
    )
    process_impl.add_connection(
        Connection(
            name="accConsumer",
            kind=ConnectionKind.DATA_ACCESS,
            source=ConnectionEnd(subcomponent=None, feature="Queue"),
            destination=ConnectionEnd(subcomponent="thConsumer", feature="reqQueue"),
        )
    )
    package.add_implementation(process_impl)

    # -- environment, display, processor ---------------------------------
    env = ComponentType(name="sysEnv", category=ComponentCategory.SYSTEM)
    env.add_feature(_event_port("pProdStart", PortDirection.OUT))
    env.add_feature(_event_port("pConsStart", PortDirection.OUT))
    package.add_type(env)
    package.add_implementation(ComponentImplementation(name="sysEnv.impl", category=ComponentCategory.SYSTEM))

    display = ComponentType(name="sysOperatorDisplay", category=ComponentCategory.SYSTEM)
    display.add_feature(_event_port("pProdTimeOut", PortDirection.IN))
    display.add_feature(_event_port("pConsTimeOut", PortDirection.IN))
    package.add_type(display)
    package.add_implementation(
        ComponentImplementation(name="sysOperatorDisplay.impl", category=ComponentCategory.SYSTEM)
    )

    cpu = ComponentType(name="cpu", category=ComponentCategory.PROCESSOR)
    cpu.properties.add(PropertyAssociation("Scheduling_Protocol", enum_value("RMS")))
    package.add_type(cpu)
    package.add_implementation(ComponentImplementation(name="cpu.impl", category=ComponentCategory.PROCESSOR))

    # -- root system -------------------------------------------------------
    root_type = ComponentType(name="ProducerConsumerSystem", category=ComponentCategory.SYSTEM)
    package.add_type(root_type)
    root_impl = ComponentImplementation(name="ProducerConsumerSystem.others", category=ComponentCategory.SYSTEM)
    root_impl.add_subcomponent(
        Subcomponent(name="prProdCons", category=ComponentCategory.PROCESS, classifier="prProdCons.impl")
    )
    root_impl.add_subcomponent(
        Subcomponent(name="Processor1", category=ComponentCategory.PROCESSOR, classifier="cpu.impl")
    )
    root_impl.add_subcomponent(
        Subcomponent(name="sysEnv", category=ComponentCategory.SYSTEM, classifier="sysEnv.impl")
    )
    root_impl.add_subcomponent(
        Subcomponent(
            name="sysOperatorDisplay", category=ComponentCategory.SYSTEM, classifier="sysOperatorDisplay.impl"
        )
    )
    for name, source, destination in [
        ("envProd", "sysEnv.pProdStart", "prProdCons.pProdStart"),
        ("envCons", "sysEnv.pConsStart", "prProdCons.pConsStart"),
        ("dispProd", "prProdCons.pProdTimeOut", "sysOperatorDisplay.pProdTimeOut"),
        ("dispCons", "prProdCons.pConsTimeOut", "sysOperatorDisplay.pConsTimeOut"),
    ]:
        def end(text: str) -> ConnectionEnd:
            sub, feature = text.split(".")
            return ConnectionEnd(subcomponent=sub, feature=feature)

        root_impl.add_connection(
            Connection(name=name, kind=ConnectionKind.PORT, source=end(source), destination=end(destination))
        )
    root_impl.properties.add(
        PropertyAssociation(
            "Actual_Processor_Binding",
            ListValue((reference("Processor1"),)),
            applies_to=(("prProdCons",),),
        )
    )
    package.add_implementation(root_impl)
    return model
