"""Case studies: the ProducerConsumer avionic tutorial and synthetic models.

* :mod:`repro.casestudies.producer_consumer` — the tutorial avionic case study
  of the paper (Section II and V), both as textual AADL and as a programmatic
  builder;
* :mod:`repro.casestudies.generator` — parametric generator of synthetic AADL
  models used by the scalability experiment (Section IV-E);
* :mod:`repro.casestudies.catalog` — a catalog of more than ten case studies,
  mirroring the paper's claim that "more than ten case studies have been
  tested".
"""

from .producer_consumer import (
    PRODUCER_CONSUMER_AADL,
    CASE_STUDY_FACTS,
    build_producer_consumer_model,
    load_producer_consumer_model,
    instantiate_producer_consumer,
)
from .generator import GeneratedCaseStudy, GeneratorConfig, generate_case_study, scenario_sweep
from .catalog import CATALOG, CaseStudyEntry, catalog_names, load_case_study

__all__ = [
    "PRODUCER_CONSUMER_AADL",
    "CASE_STUDY_FACTS",
    "build_producer_consumer_model",
    "load_producer_consumer_model",
    "instantiate_producer_consumer",
    "GeneratedCaseStudy",
    "GeneratorConfig",
    "generate_case_study",
    "scenario_sweep",
    "CATALOG",
    "CaseStudyEntry",
    "catalog_names",
    "load_case_study",
]
