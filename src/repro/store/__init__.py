"""Persistent warm starts: the fingerprint-keyed on-disk artifact cache.

``repro.store`` makes analyse+compile a **per-model** cost instead of a
per-process cost.  PR 8's in-memory :class:`~repro.serve.cache.PlanCache`
amortises the toolchain across requests *within* one server; this package
amortises it across **processes**: CLI invocations, CI jobs, benchmark
runs and freshly started servers all warm-start from
``~/.cache/repro`` (or ``REPRO_CACHE_DIR``) when the exact model — by
structural fingerprint — was analysed before, by anyone.

Three consumers share the store:

* :func:`~repro.core.toolchain.run_toolchain` checks it before analysing
  (``store=`` option; the CLI enables it by default, ``--no-cache`` opts
  out) and publishes its analysis payload back on a miss;
* :class:`~repro.sig.calculus_modular.ExtractionCache` gains a disk tier:
  per-subprocess clock-calculus extractions persist under structural shape
  keys, so an *edited* model re-solves only the subtrees whose shape
  changed and different models sharing subtrees reuse each other's work;
* :class:`~repro.serve.service.SimulationService` passes the store through
  to the toolchain, making the in-memory plan cache the front of the disk
  tier (miss → disk → compile, compiled entries published back).

Artifacts are stamped (schema revision + repro version + Python version)
and checked before unpickling; corrupt or stale entries silently miss and
are recomputed — the store can make runs faster, never wrong.  See
:mod:`repro.store.artifacts` for the file format and concurrency protocol,
:mod:`repro.store.toolchain` for the key discipline, and the ``repro
cache`` CLI subcommand for stats/clear/prune maintenance.
"""

from .artifacts import (
    SCHEMA_REV,
    ArtifactStore,
    default_cache_dir,
    default_store,
    resolve_store,
)
from .toolchain import (
    KIND_EXTRACTION,
    KIND_INDEX,
    KIND_TOOLCHAIN,
    extraction_key,
    toolchain_fingerprint,
    toolchain_options_key,
    toolchain_raw_key,
)

__all__ = [
    "ArtifactStore",
    "KIND_EXTRACTION",
    "KIND_INDEX",
    "KIND_TOOLCHAIN",
    "SCHEMA_REV",
    "default_cache_dir",
    "default_store",
    "extraction_key",
    "resolve_store",
    "toolchain_fingerprint",
    "toolchain_options_key",
    "toolchain_raw_key",
]
