"""The on-disk artifact store: stamped, content-addressed, crash-tolerant.

:class:`ArtifactStore` is a directory of pickled artifacts addressed by
``(kind, key)`` where *key* is a content hash (a structural fingerprint of
the model that produced the artifact).  The design goals, in order:

* **correct under version skew** — every artifact starts with a magic line
  and a JSON *stamp* (store schema revision, repro version, Python
  major.minor).  The stamp is checked **before** anything is unpickled, so
  an artifact written by a different repro or Python simply misses (and is
  removed) instead of deserialising into the wrong shapes;
* **crash-tolerant** — a corrupt, truncated, unreadable or wrong-type
  artifact is never an error: :meth:`load` returns ``None`` (counting it)
  and best-effort-unlinks the file, and the caller recomputes and
  republishes.  A cache must never be able to break a build;
* **safe under concurrent writers** — artifacts are written to a temporary
  file in the same directory and published with an atomic ``os.replace``
  under an advisory ``flock`` on ``<root>/.lock``, so two processes racing
  on one key both end up with a complete artifact (last writer wins; both
  wrote identical bytes anyway, the key is a content hash);
* **bounded** — :meth:`prune` evicts least-recently-*used* artifacts
  (mtime order; :meth:`load` bumps the mtime on every hit) until the store
  fits a size budget.

The store location resolves, in order: an explicit ``root=`` argument, the
``REPRO_CACHE_DIR`` environment variable, ``$XDG_CACHE_HOME/repro``, and
finally ``~/.cache/repro``.  Setting ``REPRO_CACHE_DISABLE=1`` makes
:func:`resolve_store` return ``None`` for boolean settings, turning every
would-be cache user into a plain recompute path.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import pickletools
import sys
import tempfile
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

try:  # advisory locking is POSIX-only; the store degrades without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

__all__ = [
    "ArtifactStore",
    "SCHEMA_REV",
    "default_cache_dir",
    "default_store",
    "resolve_store",
]

#: Revision of the on-disk artifact layout.  Bump whenever the payload
#: structure of any artifact kind changes incompatibly: stamped artifacts
#: from other revisions miss instead of deserialising wrong.
SCHEMA_REV = 1

#: First line of every artifact file; anything else is not an artifact.
_MAGIC = b"repro-artifact\n"


def _repro_version() -> str:
    """The repro package version, imported lazily (the package imports us)."""
    from .. import __version__

    return __version__


def _stamp() -> Dict[str, Any]:
    """The version/ABI stamp written into (and checked against) artifacts."""
    return {
        "schema": SCHEMA_REV,
        "repro": _repro_version(),
        "python": "%d.%d" % sys.version_info[:2],
    }


def default_cache_dir() -> str:
    """The store root used when none is given explicitly.

    ``REPRO_CACHE_DIR`` wins, then ``$XDG_CACHE_HOME/repro``, then
    ``~/.cache/repro`` — the conventional per-user cache locations.
    """
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        return explicit
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return os.path.join(xdg, "repro")
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def default_store() -> "ArtifactStore":
    """A store over :func:`default_cache_dir` (fresh instance, own counters)."""
    return ArtifactStore(default_cache_dir())


def resolve_store(setting: Any) -> Optional["ArtifactStore"]:
    """Coerce a ``store=`` option into an :class:`ArtifactStore` or ``None``.

    ``None``/``False`` disable persistence; ``True`` means "the default
    per-user store" (unless ``REPRO_CACHE_DISABLE`` is set, which forces
    ``None`` so one environment variable can neutralise every cache user —
    CI and bisections rely on that); an :class:`ArtifactStore` instance is
    returned as-is.
    """
    if setting is None or setting is False:
        return None
    if setting is True:
        if os.environ.get("REPRO_CACHE_DISABLE"):
            return None
        return default_store()
    if isinstance(setting, ArtifactStore):
        return setting
    raise TypeError(
        f"store= must be None, a bool or an ArtifactStore, got {type(setting).__name__}"
    )


class ArtifactStore:
    """A stamped, content-addressed pickle store under one root directory.

    Layout: ``<root>/<kind>/<key[:2]>/<key>.pkl`` — two-character fan-out
    keeps directories small under hex-digest keys.  All methods are safe to
    call concurrently from threads and from multiple processes over the
    same root; see the module docstring for the publication protocol.
    Counters (:attr:`hits`, :attr:`misses`, :attr:`writes`,
    :attr:`corrupt`, :attr:`stale`, :attr:`write_errors`) are per-instance
    and surface through :meth:`stats`.
    """

    def __init__(self, root: Optional[str] = None, max_size_mb: Optional[float] = None) -> None:
        self.root = os.path.abspath(root or default_cache_dir())
        #: When set, :meth:`save` prunes the store back under this budget
        #: after publishing (the CLI exposes the one-shot form instead).
        self.max_size_mb = max_size_mb
        self._counter_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt = 0
        self.stale = 0
        self.write_errors = 0

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: str) -> str:
        """The artifact path of ``(kind, key)`` (the file may not exist)."""
        if not key or any(sep in key for sep in (os.sep, "/", "..")):
            raise ValueError(f"invalid artifact key {key!r}")
        return os.path.join(self.root, kind, key[:2], key + ".pkl")

    def _count(self, name: str) -> None:
        with self._counter_lock:
            setattr(self, name, getattr(self, name) + 1)

    # ------------------------------------------------------------------
    # load (crash-tolerant)
    # ------------------------------------------------------------------
    def load(self, kind: str, key: str) -> Optional[Any]:
        """The artifact under ``(kind, key)``, or ``None`` on any problem.

        The stamp is validated before the payload is unpickled: a stamp
        from another schema revision, repro version or Python counts as
        *stale*; a short, unparseable or unreadable file counts as
        *corrupt*.  Both are removed best-effort and miss — the caller
        recomputes and overwrites.  Hits bump the file mtime, which is the
        LRU clock :meth:`prune` evicts by.
        """
        path = self.path_for(kind, key)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            self._count("misses")
            return None
        except OSError:
            # Unreadable (permissions, path component is a file, I/O error):
            # treat as corrupt; removal below is best-effort anyway.
            self._count("corrupt")
            self._count("misses")
            self._unlink(path)
            return None
        try:
            payload = self._parse(data)
        except _Stale:
            self._count("stale")
            self._count("misses")
            self._unlink(path)
            return None
        except Exception:
            self._count("corrupt")
            self._count("misses")
            self._unlink(path)
            return None
        self._count("hits")
        try:
            os.utime(path, None)  # LRU clock for prune()
        except OSError:
            pass
        return payload

    @staticmethod
    def _parse(data: bytes) -> Any:
        """Split magic + stamp + payload, checking the stamp before unpickling."""
        if not data.startswith(_MAGIC):
            raise ValueError("bad magic")
        body = data[len(_MAGIC):]
        newline = body.index(b"\n")  # ValueError when truncated inside the stamp
        stamp = json.loads(body[:newline].decode("utf-8"))
        if stamp != _stamp():
            raise _Stale()
        return pickle.loads(body[newline + 1:])

    def _unlink(self, path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # save (atomic publish)
    # ------------------------------------------------------------------
    def save(self, kind: str, key: str, artifact: Any) -> bool:
        """Publish *artifact* under ``(kind, key)``; ``False`` on any failure.

        Failures (unpicklable artifact, full disk, unwritable root) are
        counted in :attr:`write_errors` and swallowed: persistence is an
        optimisation, never a correctness requirement.
        """
        try:
            payload = pickletools.optimize(
                pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
            )
        except Exception:
            self._count("write_errors")
            return False
        stamp_line = json.dumps(_stamp(), sort_keys=True).encode("utf-8") + b"\n"
        path = self.path_for(kind, key)
        try:
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            with self._locked():
                descriptor, temp_path = tempfile.mkstemp(
                    prefix=".tmp-" + key[:8] + "-", dir=directory
                )
                try:
                    with os.fdopen(descriptor, "wb") as handle:
                        handle.write(_MAGIC)
                        handle.write(stamp_line)
                        handle.write(payload)
                    os.replace(temp_path, path)
                except BaseException:
                    self._unlink(temp_path)
                    raise
        except OSError:
            self._count("write_errors")
            return False
        self._count("writes")
        if self.max_size_mb is not None:
            self.prune(self.max_size_mb)
        return True

    def _locked(self):
        """Advisory exclusive lock on ``<root>/.lock`` (no-op without fcntl)."""
        return _StoreLock(os.path.join(self.root, ".lock"))

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _artifacts(self) -> Iterator[str]:
        """Every artifact path currently in the store."""
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".pkl"):
                    yield os.path.join(dirpath, name)

    def delete(self, kind: str, key: str) -> bool:
        """Remove one artifact; ``True`` when something was removed."""
        path = self.path_for(kind, key)
        try:
            os.unlink(path)
            return True
        except OSError:
            return False

    def clear(self) -> int:
        """Remove every artifact (counters survive); returns the number removed."""
        removed = 0
        for path in list(self._artifacts()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_size_mb: float) -> int:
        """Evict least-recently-used artifacts until the store fits the budget.

        "Used" is file mtime — bumped by every :meth:`load` hit — so warm
        artifacts survive and long-forgotten ones go first.  Returns the
        number of artifacts removed.  Concurrent loaders racing a prune
        simply miss and recompute, like any other eviction.
        """
        budget = max(0.0, max_size_mb) * 1024 * 1024
        entries: List[Tuple[float, int, str]] = []
        for path in self._artifacts():
            try:
                status = os.stat(path)
            except OSError:
                continue
            entries.append((status.st_mtime, status.st_size, path))
        total = sum(size for _mtime, size, _path in entries)
        removed = 0
        for _mtime, size, path in sorted(entries):  # oldest first
            if total <= budget:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters plus an on-disk census (entries and bytes per kind)."""
        kinds: Dict[str, Dict[str, int]] = {}
        total_bytes = 0
        entries = 0
        for path in self._artifacts():
            try:
                size = os.stat(path).st_size
            except OSError:
                continue
            relative = os.path.relpath(path, self.root)
            kind = relative.split(os.sep, 1)[0]
            bucket = kinds.setdefault(kind, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
            entries += 1
            total_bytes += size
        with self._counter_lock:
            counters = {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "corrupt": self.corrupt,
                "stale": self.stale,
                "write_errors": self.write_errors,
            }
        return {
            "root": self.root,
            "entries": entries,
            "bytes": total_bytes,
            "kinds": kinds,
            **counters,
        }


class _Stale(Exception):
    """Internal: the artifact's stamp does not match this process."""


class _StoreLock:
    """Context manager holding the advisory store lock (own fd per entry)."""

    def __init__(self, path: str) -> None:
        self._path = path
        self._handle: Optional[io.BufferedWriter] = None

    def __enter__(self) -> "_StoreLock":
        if fcntl is not None:
            try:
                self._handle = open(self._path, "ab")
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                # Locking is advisory; publication stays atomic via replace.
                if self._handle is not None:
                    self._handle.close()
                    self._handle = None
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
            self._handle.close()
            self._handle = None
