"""Keys and kinds of the toolchain's persistent artifacts.

The store itself (:mod:`repro.store.artifacts`) is payload-agnostic; this
module defines how the toolchain addresses it.  Addressing reuses the
serving layer's fingerprint discipline (:mod:`repro.serve.cache`) so the
CLI, :func:`~repro.core.toolchain.run_toolchain` and a ``repro serve``
process all converge on **the same keys** for the same model:

* the **structural fingerprint** — sha-256 over the canonical (parse →
  render fixed point) source plus the analysis-relevant options — keys the
  ``toolchain`` artifact: the pickled analysis payload (parsed model,
  translation, clock/determinism/deadlock reports, schedulability tables,
  flattened system model) a warm process restores instead of re-analysing;
* the **raw-source key** — sha-256 over the source bytes plus the same
  options — keys a tiny ``index`` artifact mapping to the structural
  fingerprint, so byte-identical re-runs skip even the parse;
* the **extraction key** — sha-256 over a subprocess's structural shape
  plus its parameter bindings — keys individual ``extraction`` artifacts,
  the incremental half: an edited model re-solves only the subtrees whose
  shape changed, and *different* models sharing subtrees reuse each
  other's extractions.

Only the options that change the analysis artefacts participate in the
keys (root, package, validation strictness, scheduler synthesis settings);
simulation-only knobs (backend, horizon, stimuli, sinks, supervision) are
deliberately absent — the simulation stage always runs live.  Options the
key cannot represent faithfully (user-supplied ``thread_behaviours``
callables) disable persistence for that run: :func:`toolchain_options_key`
returns ``None`` and the caller falls back to the plain cold path.

Imports from :mod:`repro.serve.cache` are deferred into the functions:
``repro.core.toolchain`` imports this module, and the serve package
imports ``repro.core.toolchain`` — lazy imports break the cycle.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional, Tuple

__all__ = [
    "KIND_EXTRACTION",
    "KIND_INDEX",
    "KIND_TOOLCHAIN",
    "extraction_key",
    "toolchain_fingerprint",
    "toolchain_options_key",
    "toolchain_raw_key",
]

#: Artifact kind of the pickled analysis payload (keyed by fingerprint).
KIND_TOOLCHAIN = "toolchain"
#: Artifact kind of the raw-source → fingerprint shortcut entries.
KIND_INDEX = "index"
#: Artifact kind of per-subprocess clock-calculus extractions.
KIND_EXTRACTION = "extraction"


def toolchain_options_key(options: Any) -> Optional[Tuple[Any, ...]]:
    """The analysis-relevant slice of a ``ToolchainOptions`` as a key tuple.

    ``None`` means "this run cannot be keyed" (user-supplied thread
    behaviours are arbitrary callables with no stable identity): the
    caller must skip the store entirely rather than risk a false hit.
    """
    translation = options.translation
    if translation.thread_behaviours:
        return None
    return (
        "toolchain",
        options.root_implementation,
        options.default_package or "",
        bool(options.strict_validation),
        bool(translation.include_scheduler),
        translation.scheduling_policy.name,
        bool(translation.resolve_mode_conflicts),
        repr(translation.default_wcet_fraction),
    )


def toolchain_raw_key(source: str, options_key: Tuple[Any, ...]) -> str:
    """The byte-identity key of textual *source* (the parse-skipping index)."""
    from ..serve.cache import source_key

    # source_key prefixes "src-"; strip it so the hex digest shards evenly
    # over the two-character fan-out directories.
    return source_key(source, options_key)[len("src-"):]


def toolchain_fingerprint(canonical: str, options_key: Tuple[Any, ...]) -> str:
    """The structural fingerprint of an already-canonical source."""
    from ..serve.cache import model_fingerprint

    return model_fingerprint(canonical, options_key)


def extraction_key(shape_fingerprint: str, params_key: Tuple[Any, ...]) -> str:
    """The disk key of one memoised subprocess extraction.

    *shape_fingerprint* is :class:`~repro.sig.calculus_modular.ExtractionCache`'s
    structural shape string (equation/constraint reprs — stable across
    processes, the expression types are frozen dataclasses) and
    *params_key* its sorted ``(name, repr(value))`` parameter bindings.
    """
    digest = hashlib.sha256()
    digest.update(shape_fingerprint.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(repr(params_key).encode("utf-8"))
    return digest.hexdigest()
