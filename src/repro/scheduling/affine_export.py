"""Export of a static schedule to affine clock relations and SIGNAL.

Step 3 of the paper's scheduler synthesis: "export schedules to SIGNAL affine
clocks in a direct way".  Given a :class:`~repro.scheduling.static_scheduler.StaticSchedule`:

* each strictly periodic event stream (the dispatch and deadline events of a
  task always are; start/complete streams are whenever the schedule gives the
  same offset to every job of the task) is exported as **one** affine sampling
  ``{period·t + phase}`` of the base tick clock;
* event streams that are periodic only at the hyper-period level (e.g. the
  start events of a task whose jobs are shifted differently inside the
  hyper-period) are exported as a **union** of affine samplings, one per job,
  all with the hyper-period as their period;
* the whole schedule can also be materialised as an executable SIGNAL process
  (one :func:`~repro.sig.library.periodic_clock_divider` instance per affine
  clock) that produces the event signals driving the translated threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..sig.affine import AffineClock, AffineRelation, mutually_disjoint
from ..sig.library import periodic_clock_divider
from ..sig.process import ProcessModel
from ..sig.values import EVENT
from .static_scheduler import EVENT_KINDS, StaticSchedule

#: Name of the base reference clock (the tick of the chosen resolution).
BASE_CLOCK = "tick"


@dataclass
class AffineScheduleExport:
    """Affine clocks of every (task, event-kind) stream of a schedule."""

    tick_ms: float
    hyperperiod_ticks: int
    clocks: Dict[Tuple[str, str], List[AffineClock]] = field(default_factory=dict)

    def clock_of(self, task: str, kind: str) -> List[AffineClock]:
        return self.clocks.get((task, kind), [])

    def single_affine(self, task: str, kind: str) -> Optional[AffineClock]:
        """The event stream as one affine clock, or ``None`` if it needs a union."""
        clocks = self.clock_of(task, kind)
        return clocks[0] if len(clocks) == 1 else None

    def is_strictly_periodic(self, task: str, kind: str) -> bool:
        return len(self.clock_of(task, kind)) == 1

    def all_clocks(self) -> List[Tuple[str, str, AffineClock]]:
        out: List[Tuple[str, str, AffineClock]] = []
        for (task, kind), clocks in sorted(self.clocks.items()):
            for clock in clocks:
                out.append((task, kind, clock))
        return out

    def relations(self, kind: str = "dispatch") -> List[AffineRelation]:
        """Pairwise affine relations between the (single) clocks of one event kind."""
        singles = [
            (task, self.single_affine(task, kind))
            for task, k in {key for key in self.clocks}
            if k == kind
        ]
        singles = [(task, clock) for task, clock in singles if clock is not None]
        relations: List[AffineRelation] = []
        for i, (task_a, clock_a) in enumerate(singles):
            for task_b, clock_b in singles[i + 1:]:
                n, phi, d = clock_a.relative_relation(clock_b)
                relations.append(AffineRelation(source=f"{task_a}.{kind}", target=f"{task_b}.{kind}", n=n, phase=phi, d=d))
        return relations

    def start_clocks_mutually_disjoint(self) -> bool:
        """Check that no two *strictly periodic* start clocks ever coincide.

        Tasks whose start stream needed a union of affine clocks are checked
        pairwise over all their components.
        """
        start_clocks: List[AffineClock] = []
        for (task, kind), clocks in self.clocks.items():
            if kind == "start":
                start_clocks.extend(clocks)
        return mutually_disjoint(start_clocks)

    def summary(self) -> str:
        lines = [
            f"Affine export (tick = {self.tick_ms} ms, hyper-period = {self.hyperperiod_ticks} ticks)"
        ]
        for (task, kind), clocks in sorted(self.clocks.items()):
            rendered = " U ".join(str(c) for c in clocks)
            lines.append(f"  {task}.{kind:<13s} = {rendered}")
        return "\n".join(lines)


def export_affine_clocks(schedule: StaticSchedule) -> AffineScheduleExport:
    """Derive the affine clock of every (task, event kind) stream of *schedule*."""
    export = AffineScheduleExport(tick_ms=schedule.tick_ms, hyperperiod_ticks=schedule.hyperperiod_ticks)
    tasks = sorted({job.task for job in schedule.jobs})
    for task in tasks:
        jobs = sorted(schedule.jobs_of(task), key=lambda j: j.job_index)
        if not jobs:
            continue
        for kind in EVENT_KINDS:
            ticks = [getattr(job, f"{kind}_tick") for job in jobs]
            export.clocks[(task, kind)] = _affine_decomposition(ticks, schedule.hyperperiod_ticks)
    return export


def _affine_decomposition(ticks: Sequence[int], hyperperiod: int) -> List[AffineClock]:
    """Express a finite periodic tick pattern as a union of affine clocks.

    When the pattern is an arithmetic progression whose step divides the
    hyper-period, a single affine clock suffices; otherwise one affine clock
    per tick (period = hyper-period) is returned.
    """
    if not ticks:
        return []
    if len(ticks) == 1:
        return [AffineClock(BASE_CLOCK, period=hyperperiod, phase=ticks[0])]
    steps = {b - a for a, b in zip(ticks, ticks[1:])}
    if len(steps) == 1:
        step = steps.pop()
        if step > 0 and hyperperiod % step == 0 and ticks[0] + step * len(ticks) == ticks[0] + hyperperiod:
            return [AffineClock(BASE_CLOCK, period=step, phase=ticks[0])]
    return [AffineClock(BASE_CLOCK, period=hyperperiod, phase=tick) for tick in ticks]


def scheduler_process(schedule: StaticSchedule, name: str = "static_scheduler") -> ProcessModel:
    """Build the SIGNAL scheduler process realising *schedule*.

    The process has the base ``tick`` event as its only input and one output
    event per (task, event kind).  Each affine clock becomes an instance of
    the ``periodic_clock`` library process; unions of affine clocks are merged
    through intermediate signals.
    """
    export = export_affine_clocks(schedule)
    model = ProcessModel(
        name,
        comment=(
            f"thread-level static scheduler ({schedule.policy.value}), "
            f"hyper-period {schedule.hyperperiod_ms} ms, tick {schedule.tick_ms} ms"
        ),
    )
    model.pragmas["hyperperiod_ticks"] = str(schedule.hyperperiod_ticks)
    model.pragmas["policy"] = schedule.policy.value
    model.input(BASE_CLOCK, EVENT, comment="base tick of the schedule (one per tick_ms)")

    from ..sig.expressions import ClockUnion, SignalRef

    for (task, kind), clocks in sorted(export.clocks.items()):
        output_name = f"{task}_{kind}"
        model.output(output_name, EVENT)
        part_names: List[str] = []
        for index, clock in enumerate(clocks):
            divider = periodic_clock_divider(
                name=f"periodic_clock_{task}_{kind}_{index}",
                period=clock.period,
                phase=clock.phase,
            )
            model.add_submodel(divider)
            part_name = output_name if len(clocks) == 1 else f"{output_name}_part{index}"
            if len(clocks) > 1:
                model.local(part_name, EVENT)
            part_names.append(part_name)
            model.instantiate(
                divider,
                instance_name=f"clk_{task}_{kind}_{index}",
                bindings={"tick": BASE_CLOCK, "out": part_name},
            )
        if len(part_names) > 1:
            union = SignalRef(part_names[0])
            for part in part_names[1:]:
                union = ClockUnion(union, SignalRef(part))
            model.define(output_name, union)
    return model
