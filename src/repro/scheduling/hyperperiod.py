"""Hyper-period and tick-resolution computation.

The first step of the paper's scheduler synthesis is to "calculate the
hyper-period from the periods of all the threads according to the least
common multiple principle".  Periods are given in milliseconds (possibly
fractional); to keep the affine clock relations integral, a common tick
resolution is computed (the greatest value that divides every period, offset,
deadline and execution time) and everything is expressed in ticks of that
resolution.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, List, Sequence

from .task import Task, TaskSet


def _to_fraction(value: float) -> Fraction:
    return Fraction(value).limit_denominator(10**6)


def tick_resolution_ms(task_set: "TaskSet | Sequence[Task]", include_wcet: bool = True) -> float:
    """Largest tick (in ms) that measures every period/deadline/offset/WCET.

    Falls back to 1 ms when the task set is empty.
    """
    tasks = list(task_set)
    if not tasks:
        return 1.0
    values: List[Fraction] = []
    for task in tasks:
        values.append(_to_fraction(task.period_ms))
        values.append(_to_fraction(task.deadline_ms))
        if task.offset_ms:
            values.append(_to_fraction(task.offset_ms))
        if include_wcet and task.wcet_ms > 0:
            values.append(_to_fraction(task.wcet_ms))
        if task.input_time.offset_ms():
            values.append(_to_fraction(task.input_time.offset_ms()))
        if task.output_time.offset_ms():
            values.append(_to_fraction(task.output_time.offset_ms()))
    # gcd of fractions: gcd of numerators / lcm of denominators
    numerators = [v.numerator for v in values if v != 0]
    denominators = [v.denominator for v in values if v != 0]
    if not numerators:
        return 1.0
    num_gcd = numerators[0]
    for n in numerators[1:]:
        num_gcd = gcd(num_gcd, n)
    den_lcm = 1
    for d in denominators:
        den_lcm = den_lcm * d // gcd(den_lcm, d)
    return float(Fraction(num_gcd, den_lcm))


def hyperperiod_ms(task_set: "TaskSet | Sequence[Task]") -> float:
    """Hyper-period (LCM of the task periods) in milliseconds."""
    tasks = list(task_set)
    if not tasks:
        return 0.0
    fractions = [_to_fraction(task.period_ms) for task in tasks]
    # lcm of fractions: lcm of numerators / gcd of denominators
    num_lcm = fractions[0].numerator
    for f in fractions[1:]:
        num_lcm = num_lcm * f.numerator // gcd(num_lcm, f.numerator)
    den_gcd = fractions[0].denominator
    for f in fractions[1:]:
        den_gcd = gcd(den_gcd, f.denominator)
    return float(Fraction(num_lcm, den_gcd))


def hyperperiod_ticks(task_set: "TaskSet | Sequence[Task]", tick_ms: float = None) -> int:
    """Hyper-period expressed in ticks of the (possibly supplied) resolution."""
    tasks = list(task_set)
    if not tasks:
        return 0
    if tick_ms is None:
        tick_ms = tick_resolution_ms(tasks)
    hyper = hyperperiod_ms(tasks)
    ticks = _to_fraction(hyper) / _to_fraction(tick_ms)
    if ticks.denominator != 1:
        raise ValueError(
            f"hyper-period {hyper} ms is not an integral number of ticks of {tick_ms} ms"
        )
    return int(ticks)


def to_ticks(value_ms: float, tick_ms: float) -> int:
    """Convert a duration in ms to an integral number of ticks (rounding up)."""
    ratio = _to_fraction(value_ms) / _to_fraction(tick_ms)
    if ratio.denominator == 1:
        return int(ratio)
    return int(ratio) + 1
