"""Cheddar-like preemptive scheduling baseline.

The paper positions its static affine-clock scheduler against classical AADL
scheduling tools such as Cheddar, which perform (usually preemptive)
schedulability analysis and scheduling simulation *inside the tool*, without a
formal, verifiable artefact coming out.  This module provides that comparison
point: an event-driven, preemptive, fixed- or dynamic-priority scheduling
simulation over the hyper-period, reporting deadline misses, preemption counts
and per-task response times.

The benchmark E12 contrasts the two along the axes discussed in Section IV-D:
ability to find a feasible schedule, predictability (preemptions), and whether
the result can be exported to affine clocks for formal verification (only the
static scheduler's can).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .hyperperiod import hyperperiod_ms, tick_resolution_ms, to_ticks
from .static_scheduler import SchedulingPolicy
from .task import Task, TaskSet


@dataclass
class BaselineJobRecord:
    """Execution record of one job in the preemptive simulation."""

    task: str
    job_index: int
    release_tick: int
    completion_tick: Optional[int]
    deadline_tick: int
    preemptions: int

    @property
    def met_deadline(self) -> bool:
        return self.completion_tick is not None and self.completion_tick <= self.deadline_tick

    @property
    def response_ticks(self) -> Optional[int]:
        if self.completion_tick is None:
            return None
        return self.completion_tick - self.release_tick


@dataclass
class BaselineResult:
    """Outcome of the preemptive scheduling simulation."""

    policy: SchedulingPolicy
    tick_ms: float
    hyperperiod_ticks: int
    jobs: List[BaselineJobRecord] = field(default_factory=list)
    context_switches: int = 0

    @property
    def schedulable(self) -> bool:
        return all(job.met_deadline for job in self.jobs)

    @property
    def deadline_misses(self) -> int:
        return sum(0 if job.met_deadline else 1 for job in self.jobs)

    @property
    def total_preemptions(self) -> int:
        return sum(job.preemptions for job in self.jobs)

    def max_response_ms(self, task: str) -> Optional[float]:
        responses = [job.response_ticks for job in self.jobs if job.task == task and job.response_ticks is not None]
        if not responses:
            return None
        return max(responses) * self.tick_ms

    def exportable_to_affine_clocks(self) -> bool:
        """A dynamic/preemptive schedule has no static event table to export."""
        return False

    def summary(self) -> str:
        return (
            f"Preemptive {self.policy.value} baseline: "
            f"{'schedulable' if self.schedulable else f'{self.deadline_misses} deadline miss(es)'}, "
            f"{self.total_preemptions} preemption(s), {self.context_switches} context switch(es)"
        )


@dataclass
class _ActiveJob:
    task: Task
    index: int
    release: int
    deadline: int
    remaining: int
    preemptions: int = 0


class PreemptiveScheduler:
    """Event-driven preemptive scheduling simulation over the hyper-period."""

    def __init__(self, task_set: TaskSet, policy: SchedulingPolicy = SchedulingPolicy.RATE_MONOTONIC) -> None:
        self.task_set = task_set
        self.policy = policy

    def _priority(self, job: _ActiveJob) -> Tuple:
        task = job.task
        if self.policy is SchedulingPolicy.RATE_MONOTONIC:
            return (task.period_ms, task.name)
        if self.policy is SchedulingPolicy.DEADLINE_MONOTONIC:
            return (task.deadline_ms, task.name)
        if self.policy is SchedulingPolicy.EARLIEST_DEADLINE_FIRST:
            return (job.deadline, task.period_ms, task.name)
        priority = task.priority if task.priority is not None else 10**6
        return (priority, task.period_ms, task.name)

    def run(self, horizon_ticks: Optional[int] = None) -> BaselineResult:
        tasks = list(self.task_set)
        if not tasks:
            raise ValueError("empty task set")
        tick_ms = tick_resolution_ms(tasks)
        horizon = horizon_ticks or to_ticks(hyperperiod_ms(tasks), tick_ms)

        releases: List[Tuple[int, Task, int]] = []
        for task in tasks:
            period = to_ticks(task.period_ms, tick_ms)
            offset = to_ticks(task.offset_ms, tick_ms) if task.offset_ms else 0
            index = 0
            release = offset
            while release < horizon:
                releases.append((release, task, index))
                index += 1
                release += period
        releases.sort(key=lambda item: item[0])

        result = BaselineResult(policy=self.policy, tick_ms=tick_ms, hyperperiod_ticks=horizon)
        active: List[_ActiveJob] = []
        records: Dict[Tuple[str, int], BaselineJobRecord] = {}
        running: Optional[_ActiveJob] = None
        release_index = 0

        for now in range(horizon + 1):
            # Release new jobs.
            while release_index < len(releases) and releases[release_index][0] == now:
                _, task, job_index = releases[release_index]
                job = _ActiveJob(
                    task=task,
                    index=job_index,
                    release=now,
                    deadline=now + to_ticks(task.deadline_ms, tick_ms),
                    remaining=to_ticks(task.wcet_ms, tick_ms) if task.wcet_ms > 0 else 0,
                )
                active.append(job)
                records[(task.name, job_index)] = BaselineJobRecord(
                    task=task.name,
                    job_index=job_index,
                    release_tick=now,
                    completion_tick=now if job.remaining == 0 else None,
                    deadline_tick=job.deadline,
                    preemptions=0,
                )
                if job.remaining == 0:
                    active.remove(job)
                release_index += 1

            if now >= horizon:
                break

            if not active:
                running = None
                continue
            # Pick the highest-priority active job; preempt if needed.
            active.sort(key=self._priority)
            chosen = active[0]
            if running is not None and running is not chosen and running in active:
                running.preemptions += 1
                records[(running.task.name, running.index)].preemptions = running.preemptions
                result.context_switches += 1
            elif running is not chosen:
                result.context_switches += 1
            running = chosen
            chosen.remaining -= 1
            if chosen.remaining == 0:
                records[(chosen.task.name, chosen.index)].completion_tick = now + 1
                active.remove(chosen)
                running = None

        result.jobs = [records[key] for key in sorted(records)]
        return result


def simulate_preemptive(
    task_set: TaskSet, policy: SchedulingPolicy = SchedulingPolicy.RATE_MONOTONIC
) -> BaselineResult:
    """Convenience wrapper around :class:`PreemptiveScheduler`."""
    return PreemptiveScheduler(task_set, policy).run()
