"""Schedulability and synchronizability analysis.

Two families of checks complement the constructive scheduler synthesis:

* **schedulability analysis** — classical utilisation-based and response-time
  based tests adapted to the non-preemptive single-processor setting of the
  paper (blocking by at most one lower-priority job, since jobs are never
  preempted once started);
* **synchronizability analysis** — the paper uses affine clock relations to
  decide whether the clocks of multi-periodic threads can be synchronised
  ("synchronizability analysis can be carried out between multi-period
  threads", Section IV-B).  Two periodic thread clocks are *harmonically
  related* when one period divides the other (one clock is an affine
  sub-sampling of the other after re-phasing) and *synchronisable* when their
  periods are equal (a common affine re-phasing makes them identical).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sig.affine import AffineClock, lcm
from .hyperperiod import hyperperiod_ms, tick_resolution_ms, to_ticks
from .task import Task, TaskSet


@dataclass
class TaskAnalysis:
    """Per-task outcome of the schedulability analysis."""

    name: str
    utilisation: float
    blocking_ms: float
    response_time_ms: Optional[float]
    deadline_ms: float
    schedulable: bool


@dataclass
class SchedulabilityReport:
    """Outcome of the utilisation / response-time analysis of a task set."""

    total_utilisation: float
    liu_layland_bound: float
    utilisation_test_passed: bool
    tasks: List[TaskAnalysis] = field(default_factory=list)

    @property
    def schedulable(self) -> bool:
        return all(task.schedulable for task in self.tasks)

    def task(self, name: str) -> TaskAnalysis:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(name)

    def summary(self) -> str:
        lines = [
            f"Schedulability report: U = {self.total_utilisation:.3f}, "
            f"Liu-Layland bound = {self.liu_layland_bound:.3f} "
            f"({'passes' if self.utilisation_test_passed else 'exceeds'})",
        ]
        for task in self.tasks:
            response = f"{task.response_time_ms:.2f} ms" if task.response_time_ms is not None else "n/a"
            lines.append(
                f"  {task.name:<16s} U={task.utilisation:.3f} B={task.blocking_ms:.2f} ms "
                f"R={response} D={task.deadline_ms:.2f} ms -> "
                f"{'ok' if task.schedulable else 'MISS'}"
            )
        return "\n".join(lines)


def utilisation(task_set: TaskSet) -> float:
    """Total processor utilisation of the task set."""
    return sum(task.utilisation for task in task_set)


def liu_layland_bound(n: int) -> float:
    """The rate-monotonic utilisation bound ``n (2^{1/n} - 1)``."""
    if n <= 0:
        return 1.0
    return n * (2.0 ** (1.0 / n) - 1.0)


def analyse_schedulability(task_set: TaskSet, preemptive: bool = False) -> SchedulabilityReport:
    """Utilisation + response-time analysis under rate-monotonic priorities.

    In the non-preemptive case (the paper's setting), each task additionally
    suffers a blocking term equal to the largest execution time among the
    lower-priority tasks (a job that started just before the release cannot be
    preempted).
    """
    tasks = task_set.rm_sorted()
    total = utilisation(task_set)
    bound = liu_layland_bound(len(tasks))
    report = SchedulabilityReport(
        total_utilisation=total,
        liu_layland_bound=bound,
        utilisation_test_passed=total <= bound + 1e-12,
    )
    for index, task in enumerate(tasks):
        higher = tasks[:index]
        lower = tasks[index + 1:]
        blocking = 0.0 if preemptive else max((t.wcet_ms for t in lower), default=0.0)
        response = _response_time(task, higher, blocking)
        report.tasks.append(
            TaskAnalysis(
                name=task.name,
                utilisation=task.utilisation,
                blocking_ms=blocking,
                response_time_ms=response,
                deadline_ms=task.deadline_ms,
                schedulable=response is not None and response <= task.deadline_ms + 1e-9,
            )
        )
    return report


def _response_time(task: Task, higher: List[Task], blocking: float, max_iterations: int = 1000) -> Optional[float]:
    """Classical fixed-point response-time iteration (returns None on divergence)."""
    response = task.wcet_ms + blocking
    for _ in range(max_iterations):
        interference = sum(math.ceil(response / t.period_ms) * t.wcet_ms for t in higher)
        updated = task.wcet_ms + blocking + interference
        if abs(updated - response) < 1e-9:
            return updated
        if updated > 1000 * max(task.deadline_ms, task.period_ms):
            return None
        response = updated
    return None


# ----------------------------------------------------------------------
# synchronizability (affine clock relations between thread clocks)
# ----------------------------------------------------------------------
@dataclass
class PairSynchronizability:
    """Affine relation between the dispatch clocks of two tasks."""

    task_a: str
    task_b: str
    relation: Tuple[int, int, int]  # (n, phase, d) over the common tick
    harmonic: bool
    synchronisable: bool
    common_hyperperiod_ms: float


@dataclass
class SynchronizabilityReport:
    """Pairwise synchronizability of all the tasks of a set."""

    tick_ms: float
    pairs: List[PairSynchronizability] = field(default_factory=list)

    def pair(self, a: str, b: str) -> PairSynchronizability:
        for pair in self.pairs:
            if {pair.task_a, pair.task_b} == {a, b}:
                return pair
        raise KeyError((a, b))

    @property
    def all_harmonic(self) -> bool:
        return all(pair.harmonic for pair in self.pairs)

    def summary(self) -> str:
        lines = [f"Synchronizability report (tick = {self.tick_ms} ms)"]
        for pair in self.pairs:
            n, phi, d = pair.relation
            lines.append(
                f"  {pair.task_a} ~ {pair.task_b}: relation (n={n}, phi={phi}, d={d}), "
                f"{'harmonic' if pair.harmonic else 'non-harmonic'}, "
                f"{'synchronisable' if pair.synchronisable else 'not synchronisable'}, "
                f"hyper-period {pair.common_hyperperiod_ms} ms"
            )
        return "\n".join(lines)


def analyse_synchronizability(task_set: TaskSet) -> SynchronizabilityReport:
    """Compute the pairwise affine relations between the task dispatch clocks."""
    tasks = list(task_set)
    tick = tick_resolution_ms(tasks)
    report = SynchronizabilityReport(tick_ms=tick)
    clocks: Dict[str, AffineClock] = {}
    for task in tasks:
        clocks[task.name] = AffineClock(
            "tick",
            period=to_ticks(task.period_ms, tick),
            phase=to_ticks(task.offset_ms, tick) if task.offset_ms else 0,
        )
    for i, task_a in enumerate(tasks):
        for task_b in tasks[i + 1:]:
            clock_a, clock_b = clocks[task_a.name], clocks[task_b.name]
            relation = clock_a.relative_relation(clock_b)
            harmonic = (
                task_a.period_ms % task_b.period_ms == 0 or task_b.period_ms % task_a.period_ms == 0
            )
            report.pairs.append(
                PairSynchronizability(
                    task_a=task_a.name,
                    task_b=task_b.name,
                    relation=relation,
                    harmonic=harmonic,
                    synchronisable=clock_a.synchronisable_with(clock_b),
                    common_hyperperiod_ms=clock_a.union_hyperperiod(clock_b) * tick,
                )
            )
    return report
