"""Thread-level scheduler synthesis and schedulability analysis.

Implements Section IV-D of the paper:

1. extract a task set from the AADL threads (:mod:`repro.scheduling.task`);
2. compute the hyper-period as the LCM of the thread periods
   (:mod:`repro.scheduling.hyperperiod`);
3. synthesise a static, non-preemptive, single-processor schedule placing the
   discrete events of each thread (dispatch, input-freeze, start, complete,
   output-send, deadline) inside the hyper-period, under RM or EDF event
   ordering (:mod:`repro.scheduling.static_scheduler`);
4. export the schedule as affine clock relations on a base tick clock and as a
   SIGNAL scheduler process (:mod:`repro.scheduling.affine_export`);
5. analyse schedulability and synchronizability (:mod:`repro.scheduling.analysis`);
6. compare against a Cheddar-like preemptive, simulation-based baseline
   (:mod:`repro.scheduling.baseline`).
"""

from .task import Task, TaskSet, task_set_from_instance, task_set_from_threads
from .hyperperiod import hyperperiod_ms, hyperperiod_ticks, tick_resolution_ms
from .static_scheduler import (
    ScheduledEvent,
    ScheduledJob,
    SchedulingError,
    SchedulingPolicy,
    StaticSchedule,
    StaticSchedulerConfig,
    synthesise_schedule,
)
from .affine_export import AffineScheduleExport, export_affine_clocks, scheduler_process
from .analysis import (
    SchedulabilityReport,
    SynchronizabilityReport,
    analyse_schedulability,
    analyse_synchronizability,
    utilisation,
)
from .baseline import BaselineResult, PreemptiveScheduler, simulate_preemptive

__all__ = [
    "Task", "TaskSet", "task_set_from_instance", "task_set_from_threads",
    "hyperperiod_ms", "hyperperiod_ticks", "tick_resolution_ms",
    "ScheduledEvent", "ScheduledJob", "SchedulingError", "SchedulingPolicy",
    "StaticSchedule", "StaticSchedulerConfig", "synthesise_schedule",
    "AffineScheduleExport", "export_affine_clocks", "scheduler_process",
    "SchedulabilityReport", "SynchronizabilityReport", "analyse_schedulability",
    "analyse_synchronizability", "utilisation",
    "BaselineResult", "PreemptiveScheduler", "simulate_preemptive",
]
