"""Task model extracted from AADL threads.

The scheduler works on a plain periodic task model: each AADL thread with a
``Periodic`` dispatch protocol becomes a :class:`Task` with a period, a
deadline (defaulting to the period), a worst-case execution time
(``Compute_Execution_Time``, defaulting to a configurable fraction of the
period when absent), an optional offset and an optional explicit priority.

Input/Output time specifications are carried along so that the static
scheduler can place the input-freeze and output-send events of each job
(Section IV-A of the paper: the input-compute-output model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..aadl.instance import ComponentInstance
from ..aadl.properties import (
    COMPUTE_EXECUTION_TIME,
    INPUT_TIME,
    OUTPUT_TIME,
    PRIORITY,
    DispatchProtocol,
    IOReference,
    IOTimeSpec,
    DEFAULT_INPUT_TIME,
    DEFAULT_OUTPUT_TIME_IMMEDIATE,
    parse_io_time,
    parse_time_value,
)

#: Default WCET (fraction of the period) when Compute_Execution_Time is absent.
DEFAULT_WCET_FRACTION = 0.25


@dataclass
class Task:
    """One periodic task (AADL thread) of the scheduling problem."""

    name: str
    period_ms: float
    deadline_ms: float
    wcet_ms: float
    offset_ms: float = 0.0
    priority: Optional[int] = None
    input_time: IOTimeSpec = DEFAULT_INPUT_TIME
    output_time: IOTimeSpec = DEFAULT_OUTPUT_TIME_IMMEDIATE
    instance: Optional[ComponentInstance] = None

    def __post_init__(self) -> None:
        if self.period_ms <= 0:
            raise ValueError(f"task {self.name!r}: period must be strictly positive")
        if self.deadline_ms <= 0:
            raise ValueError(f"task {self.name!r}: deadline must be strictly positive")
        if self.wcet_ms < 0:
            raise ValueError(f"task {self.name!r}: execution time cannot be negative")
        if self.wcet_ms > self.deadline_ms:
            raise ValueError(
                f"task {self.name!r}: execution time {self.wcet_ms} ms exceeds deadline {self.deadline_ms} ms"
            )

    @property
    def utilisation(self) -> float:
        return self.wcet_ms / self.period_ms

    def release_times(self, horizon_ms: float) -> List[float]:
        """Release (dispatch) instants strictly below *horizon_ms*."""
        out: List[float] = []
        t = self.offset_ms
        while t < horizon_ms:
            out.append(t)
            t += self.period_ms
        return out

    def __str__(self) -> str:
        return (
            f"Task({self.name}: T={self.period_ms}ms, D={self.deadline_ms}ms, "
            f"C={self.wcet_ms}ms, O={self.offset_ms}ms)"
        )


@dataclass
class TaskSet:
    """A set of periodic tasks sharing one processor."""

    tasks: List[Task] = field(default_factory=list)
    processor_name: str = "processor"

    def __iter__(self):
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def add(self, task: Task) -> Task:
        self.tasks.append(task)
        return task

    def by_name(self, name: str) -> Task:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"unknown task {name!r}")

    def names(self) -> List[str]:
        return [task.name for task in self.tasks]

    def periods(self) -> List[float]:
        return [task.period_ms for task in self.tasks]

    @property
    def utilisation(self) -> float:
        return sum(task.utilisation for task in self.tasks)

    def rm_sorted(self) -> List[Task]:
        """Tasks by rate-monotonic priority (shorter period = higher priority)."""
        return sorted(self.tasks, key=lambda task: (task.period_ms, task.name))

    def dm_sorted(self) -> List[Task]:
        """Tasks by deadline-monotonic priority."""
        return sorted(self.tasks, key=lambda task: (task.deadline_ms, task.name))


def _io_spec(instance: ComponentInstance, property_name: str, default: IOTimeSpec) -> IOTimeSpec:
    association = instance.properties.find(property_name)
    if association is None:
        return default
    specs = parse_io_time(association.value)
    return specs[0] if specs else default


def task_from_thread(thread: ComponentInstance, default_wcet_fraction: float = DEFAULT_WCET_FRACTION) -> Task:
    """Build a :class:`Task` from an AADL thread instance."""
    period = thread.period_ms()
    if period is None:
        raise ValueError(f"thread {thread.qualified_name} has no Period property")
    deadline = thread.deadline_ms() or period
    wcet_association = thread.properties.find(COMPUTE_EXECUTION_TIME)
    if wcet_association is not None:
        wcet = parse_time_value(wcet_association.value)
    else:
        wcet = period * default_wcet_fraction
    priority_value = thread.properties.value(PRIORITY)
    priority = int(priority_value) if priority_value is not None else None
    return Task(
        name=thread.name,
        period_ms=period,
        deadline_ms=deadline,
        wcet_ms=wcet,
        priority=priority,
        input_time=_io_spec(thread, INPUT_TIME, DEFAULT_INPUT_TIME),
        output_time=_io_spec(thread, OUTPUT_TIME, DEFAULT_OUTPUT_TIME_IMMEDIATE),
        instance=thread,
    )


def task_set_from_threads(
    threads: Iterable[ComponentInstance],
    processor_name: str = "processor",
    default_wcet_fraction: float = DEFAULT_WCET_FRACTION,
) -> TaskSet:
    """Build a task set from thread instances (periodic threads only)."""
    task_set = TaskSet(processor_name=processor_name)
    for thread in threads:
        protocol = thread.dispatch_protocol() or DispatchProtocol.PERIODIC.value
        if protocol.lower() != DispatchProtocol.PERIODIC.value.lower():
            # Sporadic/aperiodic threads are handled by treating their minimum
            # inter-arrival time as a period (conservative), as done by most
            # schedulability tools; threads with no Period at all are skipped.
            if thread.period_ms() is None:
                continue
        task_set.add(task_from_thread(thread, default_wcet_fraction))
    return task_set


def task_set_from_instance(
    root: ComponentInstance,
    process_path: Optional[Sequence[str]] = None,
    default_wcet_fraction: float = DEFAULT_WCET_FRACTION,
) -> TaskSet:
    """Extract the task set of a process (or of the whole instance tree)."""
    scope = root if process_path is None else root.find(process_path)
    if scope is None:
        raise KeyError(f"no component at path {process_path!r}")
    processor = "processor"
    from ..aadl.instance import processor_bindings

    bindings = processor_bindings(root.root())
    bound = bindings.get(scope.qualified_name)
    if bound is not None:
        processor = bound.name
    return task_set_from_threads(scope.threads(), processor_name=processor, default_wcet_fraction=default_wcet_fraction)
