"""Signal expression AST of the polychronous kernel.

The SIGNAL language defines signals by equations ``y := E`` where ``E`` is an
expression built from a small set of primitive operators:

* **stepwise functions** ``f(x1, …, xn)`` — present when all operands are
  present (the operands are constrained to be synchronous), value obtained by
  applying ``f`` point-wise;
* **delay** ``x $ 1 init v`` — same clock as ``x``, value is the previous
  present value of ``x`` (``v`` at the first instant);
* **sampling** ``x when b`` — present when ``x`` is present and the boolean
  ``b`` is present and true;
* **deterministic merge** ``x default y`` — present when ``x`` or ``y`` is,
  value of ``x`` when ``x`` is present, else value of ``y``;
* **cell** ``x cell b init v`` — the *memory* operator: present when ``x`` is
  present or ``b`` is present and true; holds the last value of ``x``.  This
  is the ``fm`` memory process of the paper (Section IV-C);
* **clock operators** ``^x`` (the clock of ``x``), ``x ^+ y``, ``x ^* y``,
  ``x ^- y`` (union, intersection, difference of clocks), ``when b`` (the
  instants at which ``b`` is true).

Expressions are plain immutable dataclasses; the clock calculus
(:mod:`repro.sig.clock_calculus`) and the simulator
(:mod:`repro.sig.simulator`) interpret them.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Sequence, Tuple

from .values import ABSENT, SignalType, is_absent, is_present


class Expression:
    """Base class of all signal expressions."""

    def signals(self) -> Tuple[str, ...]:
        """Names of the signals this expression reads, in appearance order."""
        raise NotImplementedError

    # Convenience constructors so expressions can be combined with operators
    # in the Python DSL (see :mod:`repro.sig.builder`).
    def __add__(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("+", (self, lift(other)))

    def __radd__(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("+", (lift(other), self))

    def __sub__(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("-", (self, lift(other)))

    def __rsub__(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("-", (lift(other), self))

    def __mul__(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("*", (self, lift(other)))

    def __rmul__(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("*", (lift(other), self))

    def __neg__(self) -> "FunctionApp":
        return FunctionApp("neg", (self,))

    def eq(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("=", (self, lift(other)))

    def ne(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("/=", (self, lift(other)))

    def lt(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("<", (self, lift(other)))

    def le(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("<=", (self, lift(other)))

    def gt(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp(">", (self, lift(other)))

    def ge(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp(">=", (self, lift(other)))

    def and_(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("and", (self, lift(other)))

    def or_(self, other: "ExpressionLike") -> "FunctionApp":
        return FunctionApp("or", (self, lift(other)))

    def not_(self) -> "FunctionApp":
        return FunctionApp("not", (self,))

    def when(self, cond: "ExpressionLike") -> "When":
        return When(self, lift(cond))

    def default(self, other: "ExpressionLike") -> "Default":
        return Default(self, lift(other))

    def delay(self, init: Any = None, depth: int = 1) -> "Delay":
        return Delay(self, init=init, depth=depth)

    def cell(self, cond: "ExpressionLike", init: Any = None) -> "Cell":
        return Cell(self, lift(cond), init=init)

    def clock(self) -> "ClockOf":
        return ClockOf(self)


ExpressionLike = Any


def lift(value: ExpressionLike) -> Expression:
    """Lift a Python constant into a :class:`Const` expression if needed."""
    if isinstance(value, Expression):
        return value
    return Const(value)


@dataclass(frozen=True)
class SignalRef(Expression):
    """Reference to a named signal."""

    name: str

    def signals(self) -> Tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expression):
    """A constant.

    A constant is present whenever the context requires it; by itself it does
    not constrain any clock (in full SIGNAL a lone constant has no clock and
    must be sampled or merged to acquire one).
    """

    value: Any

    def signals(self) -> Tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            return f'"{self.value}"'
        return str(self.value)


@dataclass(frozen=True)
class FunctionApp(Expression):
    """Stepwise extension of an instantaneous function over synchronous operands."""

    op: str
    args: Tuple[Expression, ...]

    def signals(self) -> Tuple[str, ...]:
        out: list = []
        for arg in self.args:
            out.extend(arg.signals())
        return tuple(out)

    def __str__(self) -> str:
        if self.op in _INFIX_OPS and len(self.args) == 2:
            return f"({self.args[0]} {self.op} {self.args[1]})"
        if self.op == "not" and len(self.args) == 1:
            return f"(not {self.args[0]})"
        if self.op == "neg" and len(self.args) == 1:
            return f"(-{self.args[0]})"
        joined = ", ".join(str(a) for a in self.args)
        return f"{self.op}({joined})"


@dataclass(frozen=True)
class Delay(Expression):
    """``x $ depth init v`` — the previous (depth-th previous) value of ``x``."""

    operand: Expression
    init: Any = None
    depth: int = 1

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals()

    def __str__(self) -> str:
        init = Const(self.init) if not isinstance(self.init, Expression) else self.init
        suffix = f" init {init}" if self.init is not None else ""
        depth = f" {self.depth}" if self.depth != 1 else ""
        return f"({self.operand} ${depth}{suffix})"


@dataclass(frozen=True)
class When(Expression):
    """``x when b`` — sample ``x`` at the instants where ``b`` is present and true."""

    operand: Expression
    condition: Expression

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals() + self.condition.signals()

    def __str__(self) -> str:
        return f"({self.operand} when {self.condition})"


@dataclass(frozen=True)
class Default(Expression):
    """``x default y`` — deterministic merge with priority to ``x``."""

    left: Expression
    right: Expression

    def signals(self) -> Tuple[str, ...]:
        return self.left.signals() + self.right.signals()

    def __str__(self) -> str:
        return f"({self.left} default {self.right})"


@dataclass(frozen=True)
class Cell(Expression):
    """``x cell b init v`` — the memory process ``fm`` of the paper.

    The result is present when ``x`` is present, or when ``b`` is present and
    true; its value is the current value of ``x`` if present, otherwise the
    last present value of ``x`` (``v`` before the first one).
    """

    operand: Expression
    condition: Expression
    init: Any = None

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals() + self.condition.signals()

    def __str__(self) -> str:
        suffix = f" init {Const(self.init)}" if self.init is not None else ""
        return f"({self.operand} cell {self.condition}{suffix})"


@dataclass(frozen=True)
class ClockOf(Expression):
    """``^x`` — the clock of ``x`` seen as an event signal."""

    operand: Expression

    def signals(self) -> Tuple[str, ...]:
        return self.operand.signals()

    def __str__(self) -> str:
        return f"(^{self.operand})"


@dataclass(frozen=True)
class WhenClock(Expression):
    """``when b`` — the event clock of the instants at which ``b`` is true."""

    condition: Expression

    def signals(self) -> Tuple[str, ...]:
        return self.condition.signals()

    def __str__(self) -> str:
        return f"(when {self.condition})"


@dataclass(frozen=True)
class ClockUnion(Expression):
    """``x ^+ y`` — union of the clocks of ``x`` and ``y`` (an event signal)."""

    left: Expression
    right: Expression

    def signals(self) -> Tuple[str, ...]:
        return self.left.signals() + self.right.signals()

    def __str__(self) -> str:
        return f"({self.left} ^+ {self.right})"


@dataclass(frozen=True)
class ClockIntersection(Expression):
    """``x ^* y`` — intersection of the clocks of ``x`` and ``y``."""

    left: Expression
    right: Expression

    def signals(self) -> Tuple[str, ...]:
        return self.left.signals() + self.right.signals()

    def __str__(self) -> str:
        return f"({self.left} ^* {self.right})"


@dataclass(frozen=True)
class ClockDifference(Expression):
    """``x ^- y`` — instants of ``x`` at which ``y`` is absent."""

    left: Expression
    right: Expression

    def signals(self) -> Tuple[str, ...]:
        return self.left.signals() + self.right.signals()

    def __str__(self) -> str:
        return f"({self.left} ^- {self.right})"


@dataclass(frozen=True)
class Var(Expression):
    """Reference to a state (shared) variable, read at the instants of its context.

    Shared variables are the SIGNAL mechanism used by the paper for shared
    data components: several partial definitions contribute to one variable.
    """

    name: str

    def signals(self) -> Tuple[str, ...]:
        return (self.name,)

    def __str__(self) -> str:
        return f"var {self.name}"


_INFIX_OPS = {
    "+", "-", "*", "/", "%", "=", "/=", "<", "<=", ">", ">=", "and", "or", "xor",
    "min", "max",
}


def _safe_div(a: Any, b: Any) -> Any:
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise ZeroDivisionError("SIGNAL integer division by zero")
        return a // b if (a >= 0) == (b >= 0) or a % b == 0 else -((-a) // b if a < 0 else a // (-b))
    return a / b


#: Semantics of the stepwise operators used by :class:`FunctionApp`.
STEPWISE_OPERATIONS: Dict[str, Callable[..., Any]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": _safe_div,
    "%": operator.mod,
    "neg": operator.neg,
    "=": operator.eq,
    "/=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "xor": lambda a, b: bool(a) != bool(b),
    "not": lambda a: not a,
    "min": min,
    "max": max,
    "abs": abs,
}


def register_stepwise_operation(name: str, func: Callable[..., Any]) -> None:
    """Register a user-defined stepwise function usable in :class:`FunctionApp`.

    The AADL translation registers uninterpreted computation functions of
    threads and subprograms this way when a behaviour is supplied.
    """
    STEPWISE_OPERATIONS[name] = func


def apply_stepwise(op: str, args: Sequence[Any]) -> Any:
    """Apply a stepwise operator to already-present argument values."""
    if any(is_absent(a) for a in args):
        raise ValueError(f"stepwise operator {op!r} applied to an absent operand")
    try:
        func = STEPWISE_OPERATIONS[op]
    except KeyError as exc:
        raise KeyError(f"unknown stepwise operator {op!r}") from exc
    return func(*args)


def free_signals(expr: Expression) -> Tuple[str, ...]:
    """Distinct signal names read by *expr*, preserving first-appearance order."""
    seen: Dict[str, None] = {}
    for name in expr.signals():
        seen.setdefault(name, None)
    return tuple(seen.keys())
