"""Modular clock calculus: per-subprocess extraction, memoisation, composition.

The flat clock calculus (:mod:`repro.sig.clock_calculus`) first flattens the
translated process hierarchy into one process with thousands of signals and
then extracts and resolves a single constraint system.  On the large
generated models of the scalability experiment (E10) that flat resolution
dominates the whole tool chain.

The translator, however, already knows the per-process structure: the system
model is a tree of instantiated subprocesses (one per AADL system, processor,
process, thread, port, shared data component), and most of those subprocesses
are *instances of the same shape* — every thread instantiates the same event
port and property observer models, a 10x10 generated model contains one
hundred structurally identical ``in_event_port_pIn`` processes.  This module
exploits that structure:

1. **per-subprocess extraction** — each subprocess's clock-constraint system
   (synchronisation pairs, defined clocks, explicit constraints) is extracted
   locally, over the subprocess's own signal names;
2. **memoisation** — extractions are cached under a structural fingerprint of
   the subprocess body (plus its parameter bindings), so repeated thread and
   port shapes are solved once and instantiated many times by renaming;
3. **composition** — the per-process systems are composed at the interface
   signals through the binding renames (the same hierarchical renaming
   :meth:`~repro.sig.process.ProcessModel.flatten` performs), and the
   composite system is resolved with the dependency-directed strategy of
   :func:`~repro.sig.clock_calculus.solve_constraint_system`;
4. **fallback** — when composition cannot discharge the system cheaply (a
   cyclic clock cluster makes the directed expansion order-dependent, or a
   non-injective binding merges two subprocess signals), the affected part
   falls back to the flat solver's exact code path, so results stay sound.

The outcome is *identical* — same synchronisation classes, clock hierarchy,
endochrony verdicts, reports — to running the flat solver on the flattened
model (enforced by the catalog parity tests), at a fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple, Union

from .clock_calculus import (
    ClockCalculus,
    ClockCalculusResult,
    _ExtractedConstraints,
    solve_constraint_system,
)
from .clocks import Clock, ClockAtom, _normalise_products
from .expressions import Cell, Delay, Expression, SignalRef, Var
from .process import (
    ClockConstraint,
    ConstraintKind,
    Direction,
    ProcessModel,
    SignalDecl,
    rename_expression,
    substitute_parameters,
)


# ----------------------------------------------------------------------
# local (per-subprocess) extraction
# ----------------------------------------------------------------------
@dataclass
class _LocalEquation:
    """Extraction of one equation, over the subprocess's local names."""

    target: str
    clock: Optional[Clock]
    sync_pairs: Tuple[Tuple[str, str], ...]


#: A constraint classified at extraction time.  ``"unres"`` entries keep the
#: (parameter-substituted) constraint object so the unresolved report line can
#: be rendered with the instance's renamed operands, exactly as the flat
#: solver prints it.
_LocalConstraint = Tuple[str, Union[Tuple[str, ...], ClockConstraint]]


@dataclass
class _LocalExtraction:
    """Memoised clock-constraint system of one subprocess shape."""

    equations: List[_LocalEquation]
    constraints: List[_LocalConstraint]
    #: Every local name the extraction mentions (used to check that an
    #: instance's renaming is injective before reusing the memoised system).
    occurring: FrozenSet[str]


def _collect_init_strings(expr: Expression, out: Set[str]) -> None:
    """String-valued delay/cell initialisers are parameter references too."""
    if isinstance(expr, (Delay, Cell)):
        if isinstance(expr.init, str):
            out.add(expr.init)
    for attr in ("operand", "condition", "left", "right"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expression):
            _collect_init_strings(child, out)
    for child in getattr(expr, "args", ()):  # FunctionApp
        _collect_init_strings(child, out)


def _extract_local(model: ProcessModel, substitution: Mapping[str, Any]) -> _LocalExtraction:
    """Extract *model*'s own clock-constraint system over its local names.

    Mirrors :meth:`ClockCalculus._extract` equation by equation (same clock
    computation, same synchrony rules, same constraint classification), but
    without flattening: the result is stated over the subprocess's own signal
    names and is renamed per instance by the composer.
    """
    calculus = ClockCalculus(model)  # only the expression-clock rules are used
    equations: List[_LocalEquation] = []
    constraints: List[_LocalConstraint] = []
    occurring: Set[str] = set()

    for eq in model.equations:
        expr = substitute_parameters(eq.expr, substitution) if substitution else eq.expr
        clock = calculus.expression_clock(expr)
        sync: List[Tuple[str, str]] = []
        calculus._collect_function_synchrony(expr, sync)
        entry_clock: Optional[Clock] = None
        if clock is not None:
            entry_clock = clock
            if not eq.partial and len(clock.products) == 1:
                product = clock.products[0]
                if len(product) == 1:
                    atom = next(iter(product))
                    if atom.kind == "sig":
                        sync.append((eq.target, atom.name))
        equations.append(_LocalEquation(eq.target, entry_clock, tuple(sync)))
        occurring.add(eq.target)
        for a, b in sync:
            occurring.add(a)
            occurring.add(b)
        if entry_clock is not None:
            occurring.update(entry_clock.base_signals())

    for constraint in model.constraints:
        if substitution:
            constraint = ClockConstraint(
                constraint.kind,
                tuple(substitute_parameters(op, substitution) for op in constraint.operands),
                label=constraint.label,
            )
        names = [op.name for op in constraint.operands if isinstance(op, (SignalRef, Var))]
        if len(names) != len(constraint.operands):
            constraints.append(("unres", constraint))
            for op in constraint.operands:
                occurring.update(op.signals())
            continue
        occurring.update(names)
        if constraint.kind is ConstraintKind.SYNCHRONOUS:
            constraints.append(("sync", tuple(names)))
        elif constraint.kind is ConstraintKind.EXCLUSIVE:
            constraints.append(("excl", tuple(names)))
        elif constraint.kind is ConstraintKind.SUBCLOCK:
            if len(names) == 2:
                constraints.append(("sub", tuple(names)))
            else:
                constraints.append(("unres", constraint))

    return _LocalExtraction(equations, constraints, frozenset(occurring))


def _rename_clock(clock: Clock, rename: Mapping[str, str]) -> Clock:
    """Rename every atom of *clock* and re-normalise in the global namespace."""
    products = []
    for product in clock.products:
        products.append(
            frozenset(ClockAtom(atom.kind, rename.get(atom.name, atom.name)) for atom in product)
        )
    return Clock(products=_normalise_products(products))


# ----------------------------------------------------------------------
# memoisation
# ----------------------------------------------------------------------
class ExtractionCache:
    """Structural cache of per-subprocess extractions.

    Keyed by a fingerprint of the subprocess body (equations and constraints)
    plus the parameter values that can affect it, so two structurally
    identical subprocess models — the typical translated thread/port shapes —
    share one extraction however many times they are instantiated, and across
    analysis runs when the cache object is reused.

    With a *store* (:class:`repro.store.ArtifactStore`) the memo gains a
    **disk tier**: extractions missing in memory are looked up on disk under
    a hash of the same structural key before being computed, and computed
    ones are published back.  This is what makes re-analysis *incremental
    across processes*: an edited model re-solves only subtrees whose shape
    changed, and different models sharing subtrees (every translated thread
    instantiates the same port/observer shapes) reuse each other's work.
    :attr:`hits` and :attr:`misses` keep their in-memory meaning — a miss is
    an extraction actually computed — while disk reuse is counted separately
    in :attr:`disk_hits` / :attr:`disk_writes`.
    """

    def __init__(self, store: Optional[Any] = None) -> None:
        self._extractions: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], _LocalExtraction] = {}
        # id(model) -> (model, shape).  The strong reference to the model is
        # what keeps the id from being recycled for a different object while
        # the entry exists — without it a cache shared across runs could
        # return the fingerprint of a dead, structurally different model.
        self._shapes: Dict[int, Tuple[ProcessModel, Tuple[str, FrozenSet[str]]]] = {}
        self.store = store
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_writes = 0

    def _shape(self, model: ProcessModel) -> Tuple[str, FrozenSet[str]]:
        """Fingerprint + parameter-relevant names of *model*, cached by id."""
        cached = self._shapes.get(id(model))
        if cached is not None:
            return cached[1]
        parts: List[str] = []
        relevant: Set[str] = set()
        for eq in model.equations:
            parts.append(f"{eq.target}|{int(eq.partial)}|{eq.expr!r}")
            relevant.update(eq.expr.signals())
            _collect_init_strings(eq.expr, relevant)
        for constraint in model.constraints:
            parts.append(f"{constraint.kind.value}|{constraint.operands!r}")
            for op in constraint.operands:
                relevant.update(op.signals())
                _collect_init_strings(op, relevant)
        shape = ("\n".join(parts), frozenset(relevant))
        self._shapes[id(model)] = (model, shape)
        return shape

    def get(self, model: ProcessModel, substitution: Mapping[str, Any]) -> _LocalExtraction:
        fingerprint, relevant = self._shape(model)
        params_key = tuple(
            sorted((name, repr(value)) for name, value in substitution.items() if name in relevant)
        )
        key = (fingerprint, params_key)
        extraction = self._extractions.get(key)
        if extraction is not None:
            self.hits += 1
            return extraction
        if self.store is not None:
            from ..store import KIND_EXTRACTION, extraction_key

            disk_key = extraction_key(fingerprint, params_key)
            cached = self.store.load(KIND_EXTRACTION, disk_key)
            if isinstance(cached, _LocalExtraction):
                self.disk_hits += 1
                self._extractions[key] = cached
                return cached
            self.misses += 1
            extraction = _extract_local(model, substitution)
            self._extractions[key] = extraction
            if self.store.save(KIND_EXTRACTION, disk_key, extraction):
                self.disk_writes += 1
            return extraction
        self.misses += 1
        extraction = _extract_local(model, substitution)
        self._extractions[key] = extraction
        return extraction


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------
@dataclass
class ModularStats:
    """Shape of one modular clock-calculus run (for reports and tests)."""

    subprocesses: int = 0
    extraction_hits: int = 0
    extraction_misses: int = 0
    #: Extractions restored from the persistent store's disk tier (0 when the
    #: cache runs without a store).
    extraction_disk_hits: int = 0
    #: Freshly computed extractions published to the disk tier.
    extraction_disk_writes: int = 0
    renamed_instances: int = 0
    direct_instances: int = 0  # non-injective renames re-extracted in place
    resolution: str = ""

    def summary(self) -> str:
        disk = ""
        if self.extraction_disk_hits or self.extraction_disk_writes:
            disk = (
                f"{self.extraction_disk_hits} disk hit(s), "
                f"{self.extraction_disk_writes} disk write(s), "
            )
        return (
            f"modular clock calculus: {self.subprocesses} subprocess(es), "
            f"{self.extraction_misses} extraction(s) computed, "
            f"{self.extraction_hits} memo hit(s), "
            f"{disk}"
            f"{self.direct_instances} non-injective instance(s), "
            f"resolution {self.resolution or '?'}"
        )


class ModularClockCalculus:
    """Run the clock calculus over an *unflattened* process tree.

    The tree is walked exactly like :meth:`ProcessModel.flatten` (same
    hierarchical renames, same parameter substitution, same order), but
    instead of materialising a flat equation list each subprocess contributes
    its memoised local extraction, renamed into the global namespace.  The
    composed system is then solved by the shared
    :func:`~repro.sig.clock_calculus.solve_constraint_system` with the
    dependency-directed resolution (iterative fallback on cyclic clusters).
    """

    def __init__(self, process: ProcessModel, cache: Optional[ExtractionCache] = None) -> None:
        self.process = process
        self.cache = cache if cache is not None else ExtractionCache()
        self.stats = ModularStats()
        # Composed system, in the flat solver's extraction order.
        self._signals: Dict[str, SignalDecl] = {}
        self._sync: List[Tuple[str, str]] = []
        self._defined: Dict[str, List[Clock]] = {}
        self._exclusive: List[Tuple[str, str]] = []
        self._subclocks: List[Tuple[str, str]] = []
        self._unresolved: List[str] = []

    # ------------------------------------------------------------------
    def run(self) -> ClockCalculusResult:
        hits0, misses0 = self.cache.hits, self.cache.misses
        disk_hits0, disk_writes0 = self.cache.disk_hits, self.cache.disk_writes
        self._walk(self.process, rename={}, prefix="", top=True, substitution={})
        self.stats.extraction_hits = self.cache.hits - hits0
        self.stats.extraction_misses = self.cache.misses - misses0
        self.stats.extraction_disk_hits = self.cache.disk_hits - disk_hits0
        self.stats.extraction_disk_writes = self.cache.disk_writes - disk_writes0
        extracted = _ExtractedConstraints(
            synchronous_pairs=self._sync,
            defined_clock=self._defined,
            exclusive_pairs=self._exclusive,
            subclock_pairs=self._subclocks,
            unresolved=self._unresolved,
        )
        result = solve_constraint_system(
            self.process.name, self._signals, extracted, resolution="directed"
        )
        self.stats.resolution = result.resolution
        return result

    # ------------------------------------------------------------------
    def _walk(
        self,
        model: ProcessModel,
        rename: Dict[str, str],
        prefix: str,
        top: bool,
        substitution: Dict[str, Any],
    ) -> None:
        self.stats.subprocesses += 1

        # Signal table: same first-wins registration and direction demotion
        # as ProcessModel.flatten().
        signals = self._signals
        for decl in model.signals.values():
            new_name = decl.name if top else rename[decl.name]
            if new_name not in signals:
                direction = decl.direction if top else (
                    Direction.SHARED if decl.direction is Direction.SHARED else Direction.LOCAL
                )
                signals[new_name] = SignalDecl(new_name, decl.type, direction, decl.comment)

        # This subprocess's own constraint system, renamed into place.
        if model.equations or model.constraints:
            extraction = self.cache.get(model, substitution)
            effective = {name: rename.get(name, name) for name in extraction.occurring}
            if len(set(effective.values())) == len(effective):
                self._compose_renamed(extraction, effective, rename)
                self.stats.renamed_instances += 1
            else:
                # A binding merged two local names: renaming the memoised
                # clocks is not a homomorphism any more, so extract this one
                # instance directly from the renamed equations — the flat
                # solver's exact code path.
                self._compose_direct(model, rename, substitution)
                self.stats.direct_instances += 1

        # Children, in instantiation order, with flatten()'s renaming rules.
        for instance in model.instances:
            child_prefix = f"{prefix}{instance.instance_name}_"
            child = instance.model
            child_rename: Dict[str, str] = {}
            for decl in child.signals.values():
                if decl.name in instance.bindings:
                    bound = instance.bindings[decl.name]
                    child_rename[decl.name] = rename.get(bound, bound if top else f"{prefix}{bound}")
                else:
                    child_rename[decl.name] = f"{child_prefix}{decl.name}"
            if top:
                child_substitution = dict(instance.parameters)
            else:
                child_substitution = dict(substitution)
                child_substitution.update(instance.parameters)
            # The child's own parameters underlie whatever the parent passed.
            merged = dict(child.parameters)
            merged.update(child_substitution)
            self._walk(child, child_rename, child_prefix, top=False, substitution=merged)

    # ------------------------------------------------------------------
    def _compose_renamed(
        self,
        extraction: _LocalExtraction,
        effective: Mapping[str, str],
        rename: Mapping[str, str],
    ) -> None:
        sync = self._sync
        defined = self._defined
        for entry in extraction.equations:
            target = effective.get(entry.target, entry.target)
            for a, b in entry.sync_pairs:
                sync.append((effective.get(a, a), effective.get(b, b)))
            if entry.clock is not None:
                defined.setdefault(target, []).append(_rename_clock(entry.clock, effective))
            # Full definitions also force an (empty) entry in the flat
            # extraction; setdefault above only runs when a clock exists,
            # which matches: clock-less equations never touch defined_clock.
        for kind, payload in extraction.constraints:
            if kind == "sync":
                names = [effective.get(n, n) for n in payload]
                for a, b in zip(names, names[1:]):
                    sync.append((a, b))
            elif kind == "excl":
                names = [effective.get(n, n) for n in payload]
                for i, a in enumerate(names):
                    for b in names[i + 1:]:
                        self._exclusive.append((a, b))
            elif kind == "sub":
                a, b = payload
                self._subclocks.append((effective.get(a, a), effective.get(b, b)))
            else:  # "unres"
                constraint = payload
                self._unresolved.append(
                    str(
                        ClockConstraint(
                            constraint.kind,
                            tuple(rename_expression(op, rename) for op in constraint.operands),
                            label=constraint.label,
                        )
                    )
                )

    def _compose_direct(
        self,
        model: ProcessModel,
        rename: Mapping[str, str],
        substitution: Mapping[str, Any],
    ) -> None:
        """Extract one instance straight from its renamed equations."""
        renamed = ProcessModel(model.name)
        for eq in model.equations:
            expr = substitute_parameters(eq.expr, substitution) if substitution else eq.expr
            renamed.equations.append(
                type(eq)(rename.get(eq.target, eq.target), rename_expression(expr, rename), eq.partial, eq.label)
            )
        for constraint in model.constraints:
            operands = tuple(
                rename_expression(
                    substitute_parameters(op, substitution) if substitution else op, rename
                )
                for op in constraint.operands
            )
            renamed.constraints.append(ClockConstraint(constraint.kind, operands, constraint.label))
        extraction = _extract_local(renamed, {})
        identity: Dict[str, str] = {}
        self._compose_renamed(extraction, identity, identity)


# ----------------------------------------------------------------------
def run_clock_calculus_modular(
    process: ProcessModel, cache: Optional[ExtractionCache] = None
) -> ClockCalculusResult:
    """Modular counterpart of :func:`~repro.sig.clock_calculus.run_clock_calculus`.

    Analyses the *unflattened* process tree (flat processes work too — they
    are a tree of one node) and produces a result identical to flattening and
    running the flat solver.  Pass a shared :class:`ExtractionCache` to reuse
    memoised subprocess extractions across runs.
    """
    return ModularClockCalculus(process, cache=cache).run()
