"""A small Python DSL for assembling SIGNAL expressions and processes.

The translator and the tests build many expressions; these helpers keep that
construction readable::

    from repro.sig import builder as b

    model = ProcessModel("counter")
    model.input("tick")
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.define("zcount", b.delay(b.ref("count"), init=0))
    model.define("count", b.when(b.ref("zcount") + 1, b.clock("tick")))
    model.synchronise("count", "tick")
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from .expressions import (
    Cell,
    ClockDifference,
    ClockIntersection,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Expression,
    FunctionApp,
    SignalRef,
    Var,
    When,
    WhenClock,
    lift,
)


def ref(name: str) -> SignalRef:
    """Reference to a signal."""
    return SignalRef(name)


def var(name: str) -> Var:
    """Reference to a shared variable."""
    return Var(name)


def const(value: Any) -> Const:
    """A constant expression."""
    return Const(value)


def func(op: str, *args: Any) -> FunctionApp:
    """Stepwise application ``op(args…)``."""
    return FunctionApp(op, tuple(lift(a) for a in args))


def delay(operand: Any, init: Any = None, depth: int = 1) -> Delay:
    """``operand $ depth init init``."""
    return Delay(lift(operand), init=init, depth=depth)


def when(operand: Any, condition: Any) -> When:
    """``operand when condition``."""
    return When(lift(operand), lift(condition))


def when_clock(condition: Any) -> WhenClock:
    """``when condition`` — the event clock of the true instants of *condition*."""
    return WhenClock(lift(condition))


def default(left: Any, right: Any) -> Default:
    """``left default right``."""
    return Default(lift(left), lift(right))


def merge(*operands: Any) -> Expression:
    """Right-associated chain of ``default`` merges."""
    if not operands:
        raise ValueError("merge needs at least one operand")
    expr = lift(operands[-1])
    for operand in reversed(operands[:-1]):
        expr = Default(lift(operand), expr)
    return expr


def cell(operand: Any, condition: Any, init: Any = None) -> Cell:
    """``operand cell condition init init`` — the memory operator."""
    return Cell(lift(operand), lift(condition), init=init)


def clock(operand: Any) -> ClockOf:
    """``^operand`` — the clock of a signal as an event."""
    if isinstance(operand, str):
        operand = SignalRef(operand)
    return ClockOf(lift(operand))


def clock_union(*operands: Any) -> Expression:
    """``a ^+ b ^+ …`` — union of clocks."""
    if not operands:
        raise ValueError("clock_union needs at least one operand")
    exprs = [SignalRef(o) if isinstance(o, str) else lift(o) for o in operands]
    out = exprs[0]
    for expr in exprs[1:]:
        out = ClockUnion(out, expr)
    return out


def clock_intersection(left: Any, right: Any) -> ClockIntersection:
    """``a ^* b`` — intersection of clocks."""
    left = SignalRef(left) if isinstance(left, str) else lift(left)
    right = SignalRef(right) if isinstance(right, str) else lift(right)
    return ClockIntersection(left, right)


def clock_difference(left: Any, right: Any) -> ClockDifference:
    """``a ^- b`` — instants of ``a`` without those of ``b``."""
    left = SignalRef(left) if isinstance(left, str) else lift(left)
    right = SignalRef(right) if isinstance(right, str) else lift(right)
    return ClockDifference(left, right)


def counter(increment_clock: Any, init: int = 0) -> Sequence[Expression]:
    """Expressions for a counter incremented at *increment_clock*.

    Returns ``(zcount_expr, count_expr)`` to be bound to two signals by the
    caller (plus a ``count ^= clock`` constraint).
    """
    zcount = delay(ref("count"), init=init)
    count = when(func("+", ref("zcount"), const(1)), increment_clock)
    return zcount, count
