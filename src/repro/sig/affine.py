"""Affine clock calculus.

The paper (Section IV-D) schedules AADL threads by relating the clocks of
their discrete events (dispatch, input-frozen, start, complete, output-send,
deadline) to a single reference tick clock through *affine sampling
relations*:

    ``y = { d·t + φ | t ∈ x }``

meaning that ``y`` ticks at the instants of ``x`` whose index is ``φ``,
``φ + d``, ``φ + 2d``, …  ``d`` is the (strictly positive) period and ``φ``
the (non-negative) phase, both counted in instants of the reference clock.

The affine clock calculus (Smarandache, Gautier, Le Guernic — FM'99) gives a
decidable set of rules to compare such clocks: equality, inclusion,
disjointness and the existence of a common super-sampling.  These rules are
what the scheduler synthesis uses to prove the synchronisation constraints of
a static schedule, and what the synchronizability analysis between
multi-periodic threads relies on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple


def gcd(a: int, b: int) -> int:
    """Greatest common divisor (non-negative)."""
    return math.gcd(a, b)


def lcm(a: int, b: int) -> int:
    """Least common multiple; ``lcm(0, x) = 0`` by convention."""
    if a == 0 or b == 0:
        return 0
    return abs(a * b) // math.gcd(a, b)


def lcm_many(values: Iterable[int]) -> int:
    """Least common multiple of a collection (1 for an empty collection)."""
    out = 1
    for v in values:
        out = lcm(out, v)
    return out


def extended_gcd(a: int, b: int) -> Tuple[int, int, int]:
    """Return ``(g, x, y)`` with ``a·x + b·y = g = gcd(a, b)``."""
    if b == 0:
        return a, 1, 0
    g, x, y = extended_gcd(b, a % b)
    return g, y, x - (a // b) * y


def solve_congruences(r1: int, m1: int, r2: int, m2: int) -> Optional[Tuple[int, int]]:
    """Solve ``x ≡ r1 (mod m1)`` and ``x ≡ r2 (mod m2)``.

    Returns ``(r, m)`` describing the solution set ``x ≡ r (mod m)`` with
    ``m = lcm(m1, m2)``, or ``None`` when the system has no solution.
    """
    g, p, _q = extended_gcd(m1, m2)
    if (r2 - r1) % g != 0:
        return None
    l = lcm(m1, m2)
    diff = (r2 - r1) // g
    r = (r1 + m1 * diff * p) % l
    return r, l


@dataclass(frozen=True)
class AffineClock:
    """An affine sampling ``{ period·t + phase | t ∈ reference }`` of a reference clock.

    ``reference`` is a symbolic name (for the scheduler it is the base tick
    clock of the hyper-period); ``period`` must be strictly positive,
    ``phase`` non-negative and conventionally smaller than ``period`` although
    larger phases (initial offsets) are accepted.
    """

    reference: str
    period: int
    phase: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"affine clock period must be positive, got {self.period}")
        if self.phase < 0:
            raise ValueError(f"affine clock phase must be non-negative, got {self.phase}")

    # -- enumeration ------------------------------------------------------
    def instants(self, horizon: int) -> List[int]:
        """Reference-clock indices of the ticks strictly below *horizon*."""
        return list(range(self.phase, horizon, self.period))

    def contains(self, tick: int) -> bool:
        """True when the reference instant *tick* is a tick of this clock."""
        return tick >= self.phase and (tick - self.phase) % self.period == 0

    def tick_index(self, tick: int) -> Optional[int]:
        """Index of *tick* on this clock (0 for the first tick) or ``None``."""
        if not self.contains(tick):
            return None
        return (tick - self.phase) // self.period

    def nth_tick(self, n: int) -> int:
        """Reference index of the n-th tick (n ≥ 0)."""
        if n < 0:
            raise ValueError("tick index must be non-negative")
        return self.phase + n * self.period

    # -- algebraic relations ------------------------------------------------
    def _check_same_reference(self, other: "AffineClock") -> None:
        if self.reference != other.reference:
            raise ValueError(
                f"affine clocks on different references: {self.reference!r} vs {other.reference!r}"
            )

    def equals(self, other: "AffineClock") -> bool:
        """Exact equality of the tick sets (same reference, period and phase)."""
        self._check_same_reference(other)
        return self.period == other.period and self.phase == other.phase

    def is_subclock_of(self, other: "AffineClock") -> bool:
        """True when every tick of ``self`` is a tick of ``other``.

        ``{d1·t + φ1} ⊆ {d2·t + φ2}`` iff ``d2 | d1`` and ``φ1 ≡ φ2 (mod d2)``
        with ``φ1 ≥ φ2``.
        """
        self._check_same_reference(other)
        return (
            self.period % other.period == 0
            and self.phase >= other.phase
            and (self.phase - other.phase) % other.period == 0
        )

    def intersection(self, other: "AffineClock") -> Optional["AffineClock"]:
        """The affine clock of common ticks, or ``None`` when disjoint."""
        self._check_same_reference(other)
        solution = solve_congruences(self.phase, self.period, other.phase, other.period)
        if solution is None:
            return None
        r, m = solution
        start = max(self.phase, other.phase)
        if r < start:
            r += ((start - r) + m - 1) // m * m
        return AffineClock(self.reference, m, r)

    def disjoint_with(self, other: "AffineClock") -> bool:
        """True when the two clocks never tick at the same reference instant.

        Clocks with phases below ``max(phase)`` may still intersect later, so
        the test accounts for the common start.
        """
        return self.intersection(other) is None

    def union_hyperperiod(self, other: "AffineClock") -> int:
        """Length (in reference ticks) after which the joint pattern repeats."""
        self._check_same_reference(other)
        return lcm(self.period, other.period)

    def relative_relation(self, other: "AffineClock") -> Tuple[int, int, int]:
        """The affine relation ``(n, φ, d)`` between *self* and *other*.

        Both clocks being affine samplings of the same reference, *self* and
        *other* are in relation ``(n, φ, d)``: positioning the ticks of *self*
        at multiples of ``n`` and the ticks of *other* at ``φ + k·d`` on a
        common super-clock of step ``gcd(period_self, period_other)``.
        """
        self._check_same_reference(other)
        g = gcd(self.period, other.period)
        n = self.period // g
        d = other.period // g
        phi_ref = other.phase - self.phase
        # Express the phase offset in steps of the common super-clock.
        if phi_ref % g == 0:
            phi = phi_ref // g
        else:
            # Not commensurable at step g: keep the raw offset with a negative
            # marker period so callers can detect the irregular case.
            phi = phi_ref
        return n, phi, d

    def synchronisable_with(self, other: "AffineClock") -> bool:
        """Synchronisability in the sense of the affine clock calculus.

        Two affine samplings of a common reference are synchronisable (their
        synchronisation constraint ``self ^= other`` admits a solution by
        re-phasing on a common super-sample) iff they have the same period.
        They are *synchronous* as-is iff they also share the same phase.
        """
        self._check_same_reference(other)
        return self.period == other.period

    def compose(self, inner: "AffineClock") -> "AffineClock":
        """Affine sampling of an affine clock.

        If ``self`` samples clock ``c`` and ``inner`` samples the reference
        with ``c = inner``, the composition samples the reference directly:
        ``(d1, φ1) ∘ (d2, φ2) = (d1·d2, φ2 + φ1·d2)``.
        """
        if self.reference != "__inner__" and self.reference != inner_name(inner):
            # The composition is positional: `self` is interpreted over the
            # ticks of `inner` regardless of its symbolic reference name.
            pass
        return AffineClock(inner.reference, self.period * inner.period, inner.phase + self.phase * inner.period)

    def __str__(self) -> str:
        return f"{{{self.period}*t + {self.phase} | t in {self.reference}}}"


def inner_name(clock: AffineClock) -> str:
    """Symbolic name used when an affine clock itself serves as a reference."""
    return f"{clock.reference}[{clock.period},{clock.phase}]"


@dataclass(frozen=True)
class AffineRelation:
    """An affine relation ``(n, φ, d)`` between two named clocks.

    ``source`` and ``target`` are clock names; the relation states that there
    exists a common reference on which ``source`` ticks every ``n`` instants
    (phase 0) and ``target`` every ``d`` instants with phase ``φ``.
    """

    source: str
    target: str
    n: int
    phase: int
    d: int

    def __post_init__(self) -> None:
        if self.n <= 0 or self.d <= 0:
            raise ValueError("affine relation periods must be strictly positive")

    def inverse(self) -> "AffineRelation":
        """The relation read from *target* to *source* (phase sign flipped)."""
        return AffineRelation(self.target, self.source, self.d, -self.phase, self.n)

    def compose(self, other: "AffineRelation") -> Optional["AffineRelation"]:
        """Compose ``self: a→b`` with ``other: b→c`` into ``a→c`` when possible.

        Composition is exact when the intermediate clock is sampled with
        commensurable steps; otherwise ``None`` is returned (the calculus then
        falls back to enumeration over the hyper-period).
        """
        if self.target != other.source:
            raise ValueError("relations are not composable: intermediate clocks differ")
        # Normalise both relations on a common reference of step gcd.
        g = gcd(self.d, other.n)
        scale_self = other.n // g
        scale_other = self.d // g
        return AffineRelation(
            self.source,
            other.target,
            self.n * scale_self,
            self.phase * scale_self + other.phase * scale_other,
            other.d * scale_other,
        )

    def is_identity(self) -> bool:
        return self.n == self.d and self.phase == 0

    def __str__(self) -> str:
        return f"{self.source} --({self.n}, {self.phase}, {self.d})--> {self.target}"


def relation_between(a: AffineClock, b: AffineClock) -> AffineRelation:
    """Build the :class:`AffineRelation` between two samplings of one reference."""
    n, phi, d = a.relative_relation(b)
    return AffineRelation(source=f"clk_{a.period}_{a.phase}", target=f"clk_{b.period}_{b.phase}", n=n, phase=phi, d=d)


def mutually_disjoint(clocks: Sequence[AffineClock]) -> bool:
    """True when no two clocks of the collection ever tick simultaneously."""
    for i, a in enumerate(clocks):
        for b in clocks[i + 1:]:
            if not a.disjoint_with(b):
                return False
    return True


def first_conflict(clocks: Sequence[Tuple[str, AffineClock]]) -> Optional[Tuple[str, str, int]]:
    """Return the first pair of named clocks that share a tick, with the tick.

    Used by the scheduler to report which two events collide when a candidate
    static schedule violates mutual exclusion on the processor.
    """
    for i, (name_a, a) in enumerate(clocks):
        for name_b, b in clocks[i + 1:]:
            inter = a.intersection(b)
            if inter is not None:
                return name_a, name_b, inter.phase
    return None


def hyperperiod_of(clocks: Sequence[AffineClock]) -> int:
    """Hyper-period (in reference ticks) of a set of affine clocks."""
    return lcm_many([c.period for c in clocks]) if clocks else 1
