"""Streaming trace sinks: observe a simulation instant by instant.

The legacy simulation API materialises every recorded flow into a
:class:`~repro.sig.simulator.SimulationTrace`, which makes memory grow as
O(signals × instants) — fine for a few hyper-periods, prohibitive for the
million-instant runs the scalability experiments call for.  A
:class:`TraceSink` inverts the flow of data: the engine *pushes* each
resolved instant into one or more sinks and discards it, so a run's memory
stays O(signals) however long the scenario is.

The protocol is three calls, driven by both backends
(:class:`~repro.sig.simulator.Simulator` and
:class:`~repro.sig.engine.plan.ExecutionPlan`):

1. :meth:`TraceSink.on_header` — once per run, before the first instant,
   with a :class:`TraceHeader` describing the run (process name, scenario
   length, recorded signal names in record order, declared signal types);
2. :meth:`TraceSink.on_instant` — once per instant, with the instant index,
   a tuple of presence booleans and a tuple of values (one entry per
   recorded name, ``ABSENT`` where the signal does not occur);
3. :meth:`TraceSink.on_close` — once per run, after the last instant (also
   on abnormal termination, so file-backed sinks always flush).

Five sinks ship with the kernel:

* :class:`MaterializeSink` — rebuilds the legacy
  :class:`~repro.sig.simulator.SimulationTrace`, bit-identical to the
  non-streaming path (the catalog-wide parity tests enforce this); use it
  when a run should stream *and* keep the full trace;
* :class:`StatisticsSink` — constant-memory per-signal aggregates
  (present/absent counts, numeric min/max, first/last occurrence), the
  natural sink for long-horizon runs;
* :class:`WindowSink` — a ring buffer of the last N instants,
  materialisable on demand (CLI ``--window N``), for debugging workflows
  that only need the end of a long run;
* :class:`DeltaSink` — a change log retaining only the instants at which a
  watched signal changed presence or value (CLI ``--deltas SIGNALS``),
  O(changes) memory for sparse long-horizon monitoring;
* :class:`~repro.sig.vcd.StreamingVcdSink` (in :mod:`repro.sig.vcd`) —
  writes the VCD waveform incrementally to disk while the simulation runs.

Sinks plug in everywhere a simulation is launched: ``simulate(...,
sinks=[...])``, ``backend.run(..., sinks=[...])``, ``simulate_batch(...,
sink_factory=...)`` (one fresh sink per scenario, worker-safe, results
merged back in scenario order), ``ToolchainOptions.sinks`` and the CLI
(``repro simulate --stream-vcd out.vcd --stats``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .simulator import SimulationTrace
from .values import ABSENT, Flow, SignalType, is_present


@dataclass
class TraceHeader:
    """Everything a sink may want to know about a run before it starts.

    ``signals`` preserves the record order *including duplicates*: a name
    listed twice is delivered twice per instant, exactly as the legacy
    recording path appends twice into one shared flow.  ``warnings`` is the
    *live* list the running backend appends to; sinks that snapshot it must
    copy it in :meth:`TraceSink.on_close`, when it is complete.
    """

    #: Name of the (flattened) process being simulated.
    process_name: str
    #: Scenario length in instants (the number of ``on_instant`` calls of a
    #: run that completes normally).
    length: int
    #: Recorded signal names, in record order, duplicates preserved.
    signals: Tuple[str, ...]
    #: Declared :class:`~repro.sig.values.SignalType` by signal name.
    #: Undeclared (scenario-only) recorded names are simply missing.
    types: Mapping[str, SignalType] = field(default_factory=dict)
    #: The run's warning list — live, shared with the backend.
    warnings: List[str] = field(default_factory=list)


class TraceSink:
    """Base class of streaming trace sinks (see the module docstring).

    Subclasses override :meth:`on_instant` (required) and usually
    :meth:`on_header` / :meth:`on_close`; :meth:`result` returns whatever
    the sink produced, in a picklable form so batched runs can ship it back
    from worker processes (see ``simulate_batch(sink_factory=...)``).

    :meth:`on_close` may be invoked on a sink whose :meth:`on_header` never
    ran (another sink of the same run failed first); :attr:`header` is
    ``None`` in that case, and overrides should bail out early, as the
    built-in sinks do.
    """

    #: The current run's header (``None`` until :meth:`on_header`).
    header: Optional[TraceHeader] = None

    def on_header(self, header: TraceHeader) -> None:
        """Called once per run before the first instant."""
        self.header = header

    def on_instant(
        self, instant: int, statuses: Tuple[bool, ...], values: Tuple[Any, ...]
    ) -> None:
        """Called once per instant with per-recorded-signal presence/values."""
        raise NotImplementedError

    def on_close(self) -> None:
        """Called once per run after the last instant (even on failure)."""

    def result(self) -> Any:
        """The sink's (picklable) product, available after :meth:`on_close`."""
        return None


#: What callers may pass wherever sinks are accepted: one sink or several.
SinkOrSinks = Union[TraceSink, Sequence[TraceSink]]

#: Per-scenario sink factory of the batched APIs: called with the scenario
#: index, returns the sink(s) that scenario streams into.
SinkFactory = Callable[[int], SinkOrSinks]


def as_sink_list(sinks: Optional[SinkOrSinks]) -> List[TraceSink]:
    """Normalise a ``sinks=`` argument (``None``, one sink, or a sequence)."""
    if sinks is None:
        return []
    if isinstance(sinks, TraceSink):
        return [sinks]
    return list(sinks)


def close_sinks(sinks: Sequence[TraceSink]) -> None:
    """Close every sink, even when one of them raises on close.

    The drivers call this from their ``finally`` blocks: one sink failing
    to write its final bytes (disk full, closed pipe) must not leave the
    remaining sinks' file handles open.  The first close error is re-raised
    after every sink has been given its :meth:`TraceSink.on_close` call.
    """
    first_error: Optional[BaseException] = None
    for sink in sinks:
        try:
            sink.on_close()
        except BaseException as error:  # noqa: BLE001 - every sink must close
            if first_error is None:
                first_error = error
    if first_error is not None:
        raise first_error


class MaterializeSink(TraceSink):
    """Rebuild the legacy :class:`~repro.sig.simulator.SimulationTrace`.

    The produced trace is bit-identical to what the non-streaming path
    returns (flows, shared duplicate-name flows, warnings), which is
    enforced across the whole case-study catalog by
    ``tests/integration/test_sink_parity.py``.  Use it to stream into other
    sinks *and* keep the full trace, or as the oracle when validating a new
    sink.
    """

    def __init__(self) -> None:
        self.trace: Optional[SimulationTrace] = None
        self._lists: Dict[str, List[Any]] = {}
        self._plan: List[List[Any]] = []
        self._instants_seen = 0

    def on_header(self, header: TraceHeader) -> None:
        super().on_header(header)
        # Duplicate names share one list and are appended once per
        # occurrence, mirroring the legacy shared-Flow behaviour.
        self._lists = {}
        self._plan = [self._lists.setdefault(name, []) for name in header.signals]
        self._instants_seen = 0

    def on_instant(
        self, instant: int, statuses: Tuple[bool, ...], values: Tuple[Any, ...]
    ) -> None:
        for out, value in zip(self._plan, values):
            out.append(value)
        self._instants_seen = instant + 1

    def on_close(self) -> None:
        if self.header is None:
            return
        # An aborted run yields a trace of the instants that completed, so
        # the declared length never exceeds the recorded flows.
        self.trace = SimulationTrace(
            process_name=self.header.process_name,
            length=min(self.header.length, self._instants_seen),
            flows={name: Flow(name, values) for name, values in self._lists.items()},
            warnings=list(self.header.warnings),
        )

    def result(self) -> Optional[SimulationTrace]:
        """The materialised trace (``None`` until :meth:`on_close`)."""
        return self.trace


@dataclass
class SignalStatistics:
    """Constant-memory aggregate of one recorded signal."""

    name: str
    #: Instants at which the signal was present / absent.
    present: int = 0
    absent: int = 0
    #: Smallest and largest present value, ``None`` while no present value
    #: has been seen *or* after the range was dropped (see
    #: :attr:`range_dropped`).
    minimum: Any = None
    maximum: Any = None
    #: First and last instants of presence (``None`` when never present).
    first_instant: Optional[int] = None
    last_instant: Optional[int] = None
    #: ``True`` once the signal carried mutually unorderable value types.
    #: The range is then meaningless and is reported as ``None`` — and the
    #: dropped state is *absorbing* under both :meth:`observe` and
    #: :meth:`merge`, which is what makes the aggregate associative: were a
    #: stale range kept instead, the reported min/max would depend on the
    #: order in which values (or partitions) arrived.
    range_dropped: bool = False

    def observe(self, instant: int, value: Any) -> None:
        """Fold one instant into the aggregate."""
        if not is_present(value):
            self.absent += 1
            return
        self.present += 1
        if self.first_instant is None:
            self.first_instant = instant
        self.last_instant = instant
        if self.range_dropped:
            return
        try:
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        except TypeError:
            # Mixed/unorderable value types: keep the counts, drop the
            # range entirely (a partial range would be order-dependent).
            self.minimum = None
            self.maximum = None
            self.range_dropped = True

    def merge(self, other: "SignalStatistics") -> "SignalStatistics":
        """Fold another aggregate of the *same* signal into this one.

        Counts add; the presence window widens to cover both operands; the
        value range combines unless either operand dropped it (or the two
        ranges are mutually unorderable, which drops it here for the same
        reason :meth:`observe` does).  The operation is associative and
        commutative, so per-partition statistics of a sweep compose into
        sweep-level aggregates in any grouping — without re-reading shards.
        Returns ``self`` (mutated in place) for chaining.
        """
        if other.name != self.name:
            raise ValueError(
                f"cannot merge statistics of {other.name!r} into {self.name!r}"
            )
        self.present += other.present
        self.absent += other.absent
        if other.first_instant is not None:
            if self.first_instant is None or other.first_instant < self.first_instant:
                self.first_instant = other.first_instant
        if other.last_instant is not None:
            if self.last_instant is None or other.last_instant > self.last_instant:
                self.last_instant = other.last_instant
        if self.range_dropped or other.range_dropped:
            self.minimum = None
            self.maximum = None
            self.range_dropped = True
            return self
        try:
            if other.minimum is not None and (
                self.minimum is None or other.minimum < self.minimum
            ):
                self.minimum = other.minimum
            if other.maximum is not None and (
                self.maximum is None or other.maximum > self.maximum
            ):
                self.maximum = other.maximum
        except TypeError:
            self.minimum = None
            self.maximum = None
            self.range_dropped = True
        return self


@dataclass
class TraceStatistics:
    """Per-signal aggregates of one streamed run (see :class:`StatisticsSink`).

    The flow-level accessors (:meth:`count_present`, :meth:`clock_length`)
    mirror their :class:`~repro.sig.simulator.SimulationTrace` counterparts
    so sweep reports can switch between materialised and streamed runs, and
    :func:`batch_statistics_summary` aggregates many of these exactly like
    :func:`~repro.sig.engine.batch.batch_flow_summary` aggregates traces.
    """

    process_name: str
    length: int
    per_signal: Dict[str, SignalStatistics] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)

    def signals(self) -> List[str]:
        """The recorded signal names, sorted (as ``SimulationTrace.signals``)."""
        return sorted(self.per_signal)

    def __contains__(self, name: str) -> bool:
        return name in self.per_signal

    def __len__(self) -> int:
        return self.length

    def count_present(self, name: str) -> int:
        """Number of instants at which *name* was present."""
        return self.per_signal[name].present

    def merge(self, other: "TraceStatistics") -> "TraceStatistics":
        """Fold another run's aggregates of the same process into this one.

        The composition the sweep layer builds on: per-partition
        :class:`TraceStatistics` merge into sweep-level aggregates without
        re-reading shards.  ``length`` adds (total instants simulated),
        per-signal entries merge via :meth:`SignalStatistics.merge`
        (signals present in only one operand are copied over), and
        warnings concatenate.  Associative and commutative up to warning
        order, so partitions may be merged in any grouping.  Returns
        ``self`` (mutated in place) for chaining.
        """
        if other.process_name != self.process_name:
            raise ValueError(
                f"cannot merge statistics of process {other.process_name!r} "
                f"into {self.process_name!r}"
            )
        self.length += other.length
        for name, entry in other.per_signal.items():
            mine = self.per_signal.get(name)
            if mine is None:
                self.per_signal[name] = SignalStatistics(
                    name=entry.name,
                    present=entry.present,
                    absent=entry.absent,
                    minimum=entry.minimum,
                    maximum=entry.maximum,
                    first_instant=entry.first_instant,
                    last_instant=entry.last_instant,
                    range_dropped=entry.range_dropped,
                )
            else:
                mine.merge(entry)
        self.warnings.extend(other.warnings)
        return self

    def summary(self, limit: int = 0) -> str:
        """Human-readable table; *limit* > 0 keeps the busiest signals only."""
        stats = sorted(self.per_signal.values(), key=lambda s: (-s.present, s.name))
        shown = stats[:limit] if limit > 0 else stats
        lines = [
            f"streamed statistics of {self.process_name!r}: {self.length} instants, "
            f"{len(self.per_signal)} signals, {len(self.warnings)} warning(s)"
        ]
        for entry in shown:
            window = (
                f" [{entry.first_instant}..{entry.last_instant}]"
                if entry.first_instant is not None
                else ""
            )
            span = (
                f", range {entry.minimum!r}..{entry.maximum!r}"
                if entry.minimum is not None
                else ""
            )
            lines.append(
                f"  {entry.name:<40s} present {entry.present:>8d}{window}{span}"
            )
        if limit > 0 and len(stats) > limit:
            lines.append(f"  ... and {len(stats) - limit} more signal(s)")
        return "\n".join(lines)


class StatisticsSink(TraceSink):
    """Aggregate every instant into per-signal statistics, O(signals) memory.

    This is the sink of choice for long-horizon runs: a million-instant
    simulation leaves behind one :class:`SignalStatistics` per signal
    instead of a million-entry flow per signal.  The product
    (:class:`TraceStatistics`, via :meth:`result`) is picklable, so batched
    sweeps can compute it in worker processes and merge in scenario order.
    """

    def __init__(self) -> None:
        self.statistics: Optional[TraceStatistics] = None
        self._stats: Dict[str, SignalStatistics] = {}
        self._plan: List[SignalStatistics] = []
        self._instants_seen = 0

    def on_header(self, header: TraceHeader) -> None:
        super().on_header(header)
        self._stats = {}
        # A duplicated record name observes twice per instant, matching the
        # double-append of the legacy shared flow.
        self._plan = [
            self._stats.setdefault(name, SignalStatistics(name)) for name in header.signals
        ]
        self._instants_seen = 0

    def on_instant(
        self, instant: int, statuses: Tuple[bool, ...], values: Tuple[Any, ...]
    ) -> None:
        for entry, value in zip(self._plan, values):
            entry.observe(instant, value)
        self._instants_seen = instant + 1

    def on_close(self) -> None:
        if self.header is None:
            return
        # As with MaterializeSink, an aborted run reports the instants that
        # actually completed, keeping present+absent sums equal to length.
        self.statistics = TraceStatistics(
            process_name=self.header.process_name,
            length=min(self.header.length, self._instants_seen),
            per_signal=self._stats,
            warnings=list(self.header.warnings),
        )

    def result(self) -> Optional[TraceStatistics]:
        """The aggregated statistics (``None`` until :meth:`on_close`)."""
        return self.statistics


class WindowSink(TraceSink):
    """Ring buffer of the last *capacity* instants, materialisable on demand.

    Debugging a long-horizon run usually needs the instants *around the
    end* (an alarm, an abort), not the whole trace: a
    :class:`MaterializeSink` would keep O(signals x instants) memory, this
    sink keeps O(signals x capacity) whatever the scenario length.  The CLI
    exposes it as ``repro simulate --window N``.

    :meth:`materialize` (and :meth:`result` after the run closed) rebuilds
    a :class:`~repro.sig.simulator.SimulationTrace` of the retained window;
    its instant 0 is the run's instant :attr:`start_instant`.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"window capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rows: Deque[Tuple[int, Tuple[Any, ...]]] = deque(maxlen=capacity)
        self._closed_trace: Optional[SimulationTrace] = None

    def on_header(self, header: TraceHeader) -> None:
        """Reset the window for a new run."""
        super().on_header(header)
        self._rows.clear()
        self._closed_trace = None

    def on_instant(
        self, instant: int, statuses: Tuple[bool, ...], values: Tuple[Any, ...]
    ) -> None:
        """Push one instant into the ring (evicting the oldest when full)."""
        self._rows.append((instant, values))

    def on_close(self) -> None:
        """Freeze the window into the trace :meth:`result` will return."""
        if self.header is None:
            return
        self._closed_trace = self.materialize()

    @property
    def start_instant(self) -> int:
        """The run instant the window's instant 0 corresponds to."""
        return self._rows[0][0] if self._rows else 0

    def materialize(self) -> SimulationTrace:
        """Rebuild a :class:`~repro.sig.simulator.SimulationTrace` of the
        retained window (callable mid-run as well as after close)."""
        if self.header is None:
            raise RuntimeError("the window sink has not observed a run yet")
        lists: Dict[str, List[Any]] = {}
        plan = [lists.setdefault(name, []) for name in self.header.signals]
        for _, values in self._rows:
            for out, value in zip(plan, values):
                out.append(value)
        return SimulationTrace(
            process_name=self.header.process_name,
            length=len(self._rows),
            flows={name: Flow(name, values) for name, values in lists.items()},
            warnings=list(self.header.warnings),
        )

    def result(self) -> Optional[SimulationTrace]:
        """The window trace frozen at close (``None`` until then)."""
        return self._closed_trace


@dataclass
class DeltaLog:
    """Change log of one streamed run (see :class:`DeltaSink`).

    ``entries`` holds, in instant order, one ``(instant, changes)`` pair
    per instant at which at least one watched signal changed, where
    ``changes`` maps the signal name to its new value (``ABSENT`` when the
    signal just became absent).  ``change_counts`` aggregates the number of
    change instants per watched signal.
    """

    process_name: str
    length: int
    watched: Tuple[str, ...]
    entries: List[Tuple[int, Dict[str, Any]]] = field(default_factory=list)
    change_counts: Dict[str, int] = field(default_factory=dict)
    warnings: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        """Number of change instants retained."""
        return len(self.entries)

    def changes_of(self, name: str) -> List[Tuple[int, Any]]:
        """The ``(instant, new value)`` transitions of one watched signal."""
        return [
            (instant, changes[name])
            for instant, changes in self.entries
            if name in changes
        ]

    def summary(self, limit: int = 0) -> str:
        """One line of totals plus the busiest signals (*limit* > 0 trims)."""
        ranked = sorted(self.change_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        shown = ranked[:limit] if limit > 0 else ranked
        lines = [
            f"change log of {self.process_name!r}: {len(self.entries)} change "
            f"instant(s) across {len(self.watched)} watched signal(s) over "
            f"{self.length} instants"
        ]
        for name, count in shown:
            lines.append(f"  {name:<40s} {count:>8d} change(s)")
        if limit > 0 and len(ranked) > limit:
            lines.append(f"  ... and {len(ranked) - limit} more signal(s)")
        return "\n".join(lines)


class DeltaSink(TraceSink):
    """Record only the instants at which a watched signal *changed*.

    The sparse complement of :class:`MaterializeSink` for long-horizon
    monitoring: a million-instant run whose watched signals change a
    hundred times leaves behind a hundred entries — O(changes), not
    O(instants).  A change is a presence edge (absent→present or
    present→absent) or a value change while present; instant 0 records
    every watched signal that starts out present (the edge from "before
    time", where everything is absent).

    *signals* restricts the watch list (``None`` watches every recorded
    signal); watched names the run does not record are ignored.  The CLI
    exposes this sink as ``repro simulate --deltas SIGNALS``.
    """

    def __init__(self, signals: Optional[Iterable[str]] = None) -> None:
        self.watch_signals = None if signals is None else tuple(signals)
        self.entries: List[Tuple[int, Dict[str, Any]]] = []
        self.change_counts: Dict[str, int] = {}
        self._watch: List[Tuple[int, str]] = []
        self._previous: List[Any] = []
        self._instants_seen = 0
        self._log: Optional[DeltaLog] = None

    def on_header(self, header: TraceHeader) -> None:
        """Resolve the watch list against the run's recorded signals."""
        super().on_header(header)
        wanted = None if self.watch_signals is None else set(self.watch_signals)
        seen: set = set()
        self._watch = []
        for index, name in enumerate(header.signals):
            # A duplicated record name delivers identical values at every
            # occurrence; watch the first occurrence only.
            if name in seen or (wanted is not None and name not in wanted):
                continue
            seen.add(name)
            self._watch.append((index, name))
        self._previous = [ABSENT] * len(self._watch)
        self.entries = []
        self.change_counts = {name: 0 for _, name in self._watch}
        self._instants_seen = 0
        self._log = None

    def on_instant(
        self, instant: int, statuses: Tuple[bool, ...], values: Tuple[Any, ...]
    ) -> None:
        """Fold one instant in, retaining it only when something changed."""
        changes: Optional[Dict[str, Any]] = None
        previous = self._previous
        for position, (index, name) in enumerate(self._watch):
            value = values[index]
            before = previous[position]
            if value is before:
                continue
            if (value is ABSENT) != (before is ABSENT):
                changed = True  # presence edge
            else:
                try:
                    changed = bool(value != before)
                except Exception:
                    # Values that refuse comparison count as changed: the
                    # log must never silently drop a transition.
                    changed = True
            if changed:
                if changes is None:
                    changes = {}
                changes[name] = value
                self.change_counts[name] += 1
                previous[position] = value
        if changes is not None:
            self.entries.append((instant, changes))
        self._instants_seen = instant + 1

    def on_close(self) -> None:
        """Freeze the change log :meth:`result` will return."""
        if self.header is None:
            return
        self._log = DeltaLog(
            process_name=self.header.process_name,
            length=min(self.header.length, self._instants_seen),
            watched=tuple(name for _, name in self._watch),
            entries=self.entries,
            change_counts=self.change_counts,
            warnings=list(self.header.warnings),
        )

    def result(self) -> Optional[DeltaLog]:
        """The frozen :class:`DeltaLog` (``None`` until :meth:`on_close`)."""
        return self._log


def presence_summary(signal: str, counts: List[Optional[int]]) -> Dict[str, Any]:
    """Assemble the shared batch-summary dictionary from presence counts.

    One assembly serves both :func:`batch_statistics_summary` (streamed
    batches) and :func:`repro.sig.engine.batch.batch_flow_summary`
    (materialised batches), so their output stays identical by construction
    rather than by test: per-scenario presence counts (``None`` for failed
    scenarios or unrecorded signals), their total, and the min/max over the
    successful scenarios.
    """
    present = [count for count in counts if count is not None]
    return {
        "signal": signal,
        "per_scenario": counts,
        "total": sum(present),
        "min": min(present) if present else None,
        "max": max(present) if present else None,
    }


def batch_statistics_summary(
    results: Iterable[Optional[TraceStatistics]], signal: str
) -> Dict[str, Any]:
    """Aggregate one signal across a batch of streamed runs.

    The streamed counterpart of
    :func:`repro.sig.engine.batch.batch_flow_summary`: feed it the
    ``sink_results`` of a ``simulate_batch(sink_factory=...)`` run whose
    factory makes :class:`StatisticsSink` objects, and it returns the
    identical summary dictionary (see :func:`presence_summary`).
    """
    counts: List[Optional[int]] = []
    for stats in results:
        if stats is None or signal not in stats:
            counts.append(None)
        else:
            counts.append(stats.count_present(signal))
    return presence_summary(signal, counts)


class _AlwaysAbsent:
    """O(1) stand-in for a flow the trace does not hold: ⊥ at every index."""

    def __getitem__(self, index: int) -> Any:
        return ABSENT


_ALWAYS_ABSENT = _AlwaysAbsent()


def replay_trace(
    trace: SimulationTrace,
    sinks: SinkOrSinks,
    signals: Optional[Iterable[str]] = None,
    types: Optional[Mapping[str, SignalType]] = None,
) -> None:
    """Drive *sinks* from an already-materialised trace.

    This is how the post-hoc exporters reuse the streaming machinery: the
    legacy :func:`repro.sig.vcd.write_vcd` is a replay of the trace through
    a :class:`~repro.sig.vcd.StreamingVcdSink`.  *signals* restricts (and
    orders) the replayed names, defaulting to the trace's sorted signal
    list; names the trace does not hold replay as always-absent.
    """
    sink_list = as_sink_list(sinks)
    names = tuple(signals) if signals is not None else tuple(trace.signals())
    try:
        header = TraceHeader(
            process_name=trace.process_name,
            length=trace.length,
            signals=names,
            types=dict(types) if types is not None else {},
            warnings=trace.warnings,
        )
        for sink in sink_list:
            sink.on_header(header)
        flows = [trace.flows.get(name, _ALWAYS_ABSENT) for name in names]
        for instant in range(trace.length):
            values = tuple(flow[instant] for flow in flows)
            statuses = tuple(value is not ABSENT for value in values)
            for sink in sink_list:
                sink.on_instant(instant, statuses, values)
    finally:
        close_sinks(sink_list)


__all__ = [
    "DeltaLog",
    "DeltaSink",
    "MaterializeSink",
    "SignalStatistics",
    "SinkFactory",
    "SinkOrSinks",
    "StatisticsSink",
    "TraceHeader",
    "TraceSink",
    "TraceStatistics",
    "WindowSink",
    "as_sink_list",
    "batch_statistics_summary",
    "close_sinks",
    "presence_summary",
    "replay_trace",
]
