"""Symbolic scenario programs: constant-memory input flows.

A :class:`Scenario` used to store one Python list entry per instant for
every driven input — the last O(instants) memory wall of the simulation
pipeline (the output side streams through :mod:`repro.sig.sinks`, the
compute side runs in blocks).  This module replaces the eager lists with a
**symbolic input program**: each driven signal is described by a small
:class:`InputRule` — :class:`PeriodicRule`, :class:`SparseRule`,
:class:`ConstantRule`, :class:`ExplicitRule` (the backward-compatible eager
list), or the :class:`GeneratorRule` escape hatch — evaluated lazily per
instant.  A million-instant periodic scenario is now a few dozen bytes,
ships to multiprocessing workers as a few bytes of pickle, and lets the
vectorized backend synthesise whole input columns arithmetically
(:meth:`InputRule.block_columns`) instead of slicing Python lists.

The rule contract is small:

* :meth:`InputRule.value` — the value at one instant (``ABSENT`` when the
  signal does not occur);
* :meth:`InputRule.sampler` — a precompiled closure ``instant -> value``
  for hot per-instant loops (what the execution engines call);
* :meth:`InputRule.column` — an eager Python-list window, for
  materialisation and the explicit-rule fallbacks;
* :meth:`InputRule.block_columns` — an optional numpy fast path producing
  presence/value columns for a whole instant block arithmetically;
  ``None`` (the default) means "no fast path, sample per instant".

Rules compose: :meth:`Scenario.set_at` overlays a :class:`SparseRule` on
whatever rule already drives the signal, so ``set_periodic`` + ``set_at``
builds a periodic flow with pointwise exceptions without materialising
either.

A scenario may be **unbounded** (``Scenario()`` / ``length=None``): the run
horizon is then supplied at simulate time (``simulate(..., length=N)``) or
decided by the consuming sink, and one symbolic scenario can be reused
across many horizons (the CLI ``--scenario-length`` sweep does exactly
that).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from .values import ABSENT, is_absent

#: Precompiled per-signal sampling closure: ``instant -> value-or-ABSENT``.
Sampler = Callable[[int], Any]

#: Internal sentinel distinguishing "no entry" from an explicit ``ABSENT``.
_MISSING = object()


class InputRule:
    """One symbolic rule describing the flow of a driven input signal.

    A rule is conceptually an *unbounded* flow: :meth:`value` must answer
    for any non-negative instant (``ABSENT`` where the signal does not
    occur).  Rules are immutable once built, cheap to pickle (they travel
    to multiprocessing workers in place of the old per-instant lists) and
    composable (see :class:`SparseRule`).
    """

    def value(self, instant: int) -> Any:
        """The value at *instant* (``ABSENT`` when the signal is absent)."""
        raise NotImplementedError

    def sampler(self) -> Sampler:
        """A precompiled ``instant -> value`` closure for hot loops.

        The default binds :meth:`value`; subclasses return tighter closures
        over their own fields so the per-instant engines pay one call and
        no attribute lookups.
        """
        return self.value

    def column(self, start: int, stop: int) -> List[Any]:
        """Materialise the half-open instant window ``[start, stop)``."""
        sample = self.sampler()
        return [sample(instant) for instant in range(start, stop)]

    def block_columns(
        self, start: int, stop: int, np: Any, typed: Optional[type] = None
    ):
        """Synthesise numpy presence/value columns for ``[start, stop)``.

        Returns ``(mask, values, typed_values)`` where ``mask`` is a bool
        array of presence, ``values`` an object array holding the exact
        Python value at present instants (``ABSENT`` elsewhere), and
        ``typed_values`` either ``None`` or a native float64/bool array
        whose entries are meaningful at present instants — produced only
        when *typed* (``float`` or ``bool``) is requested and every present
        value is exactly of that type (NaN floats stay on the object path,
        preserving value identity).  Returning ``None`` (the base default)
        means "no arithmetic fast path": the vectorized backend then falls
        back to sampling this rule instant by instant.
        """
        return None

    def finite_support(self) -> Optional[int]:
        """The first instant after which the rule is always absent.

        ``None`` means the rule has unbounded support (periodic, constant,
        generator).  Used for diagnostics only; engines never rely on it.
        """
        return None


class ConstantRule(InputRule):
    """The signal is present with the same value at every instant."""

    __slots__ = ("fill",)

    def __init__(self, fill: Any = True) -> None:
        self.fill = fill

    def __repr__(self) -> str:
        """Debug form showing the constant fill value."""
        return f"ConstantRule({self.fill!r})"

    def value(self, instant: int) -> Any:
        """The fill value at every non-negative instant."""
        return self.fill if instant >= 0 else ABSENT

    def sampler(self) -> Sampler:
        """Closure returning the fill value unconditionally."""
        fill = self.fill

        def sample(instant: int, _fill=fill) -> Any:
            return _fill

        return sample

    def column(self, start: int, stop: int) -> List[Any]:
        """A window of the constant value."""
        return [self.fill] * max(0, stop - start)

    def block_columns(
        self, start: int, stop: int, np: Any, typed: Optional[type] = None
    ):
        """Full-presence columns of one shared fill value."""
        size = max(0, stop - start)
        fill = self.fill
        if is_absent(fill):
            mask = np.zeros(size, dtype=bool)
            values = np.empty(size, dtype=object)
            values.fill(ABSENT)
            return mask, values, None
        mask = np.ones(size, dtype=bool)
        values = np.empty(size, dtype=object)
        values.fill(fill)
        return mask, values, _typed_fill(np, size, fill, typed)


class PeriodicRule(InputRule):
    """Present every *period* instants starting at *phase*, same value."""

    __slots__ = ("period", "phase", "fill")

    def __init__(self, period: int, phase: int = 0, fill: Any = True) -> None:
        if period <= 0:
            raise ValueError("period must be strictly positive")
        self.period = period
        self.phase = phase
        self.fill = fill

    def __repr__(self) -> str:
        """Debug form showing period, phase and fill."""
        return f"PeriodicRule(period={self.period}, phase={self.phase}, fill={self.fill!r})"

    def value(self, instant: int) -> Any:
        """Present at ``phase + k*period`` (k >= 0), absent elsewhere."""
        if instant >= self.phase and (instant - self.phase) % self.period == 0:
            return self.fill
        return ABSENT

    def sampler(self) -> Sampler:
        """Closure over the modular presence test."""
        period, phase, fill = self.period, self.phase, self.fill

        def sample(instant: int) -> Any:
            if instant >= phase and (instant - phase) % period == 0:
                return fill
            return ABSENT

        return sample

    def block_columns(
        self, start: int, stop: int, np: Any, typed: Optional[type] = None
    ):
        """Arithmetic presence mask: ``(arange - phase) % period == 0``."""
        size = max(0, stop - start)
        index = np.arange(start, start + size)
        mask = (index >= self.phase) & ((index - self.phase) % self.period == 0)
        values = np.empty(size, dtype=object)
        values.fill(ABSENT)
        # Assign the fill through a 0-d object array: a bare sequence fill
        # would otherwise be *broadcast* element-wise across the masked
        # slots instead of stored as one object per instant.
        boxed = np.empty((), dtype=object)
        boxed[()] = self.fill
        values[mask] = boxed
        return mask, values, _typed_fill(np, size, self.fill, typed)


class SparseRule(InputRule):
    """Pointwise values at selected instants, overlaid on an optional base.

    Where the mapping has an entry, it wins (an explicit ``ABSENT`` entry
    *masks* the base); everywhere else the base rule answers (absent when
    there is no base).  This is the composition node ``Scenario.set_at``
    builds, so periodic-with-exceptions flows stay symbolic.
    """

    __slots__ = ("entries", "base", "_sorted_instants")

    def __init__(self, entries: Mapping[int, Any], base: Optional[InputRule] = None) -> None:
        bad = sorted(instant for instant in entries if instant < 0)
        if bad:
            raise ValueError(f"sparse rule instants must be non-negative, got {bad}")
        self.entries: Dict[int, Any] = dict(entries)
        # Flatten sparse-on-sparse composition (the overlay entries win over
        # the base's, which is exactly what nesting would compute): repeated
        # ``set_at`` calls therefore stay O(1) deep instead of building an
        # unbounded rule chain whose sampler recurses per level.
        while isinstance(base, SparseRule):
            merged = dict(base.entries)
            merged.update(self.entries)
            self.entries = merged
            base = base.base
        self.base = base
        self._sorted_instants: Optional[List[int]] = None

    def __repr__(self) -> str:
        """Debug form showing entry count and base rule."""
        return f"SparseRule({len(self.entries)} entries, base={self.base!r})"

    def __getstate__(self) -> Tuple[Dict[int, Any], Optional[InputRule]]:
        """Pickle without the lazily built instant index."""
        return (self.entries, self.base)

    def __setstate__(self, state: Tuple[Dict[int, Any], Optional[InputRule]]) -> None:
        """Restore entries/base; the instant index rebuilds on demand."""
        self.entries, self.base = state
        self._sorted_instants = None

    def value(self, instant: int) -> Any:
        """The overlay entry when present, else the base rule's value."""
        hit = self.entries.get(instant, _MISSING)
        if hit is not _MISSING:
            return hit
        if self.base is not None:
            return self.base.value(instant)
        return ABSENT

    def sampler(self) -> Sampler:
        """Closure over the overlay dict and the base sampler."""
        entries = self.entries
        if self.base is None:

            def sample(instant: int) -> Any:
                return entries.get(instant, ABSENT)

            return sample
        base_sample = self.base.sampler()

        def sample_over(instant: int) -> Any:
            hit = entries.get(instant, _MISSING)
            if hit is not _MISSING:
                return hit
            return base_sample(instant)

        return sample_over

    def _instants_in(self, start: int, stop: int) -> List[int]:
        """The overlay instants falling in ``[start, stop)`` (sorted)."""
        index = self._sorted_instants
        if index is None:
            index = self._sorted_instants = sorted(self.entries)
        return index[bisect_left(index, start):bisect_right(index, stop - 1)]

    def block_columns(
        self, start: int, stop: int, np: Any, typed: Optional[type] = None
    ):
        """The base's columns with the overlay entries patched in."""
        size = max(0, stop - start)
        if self.base is None:
            mask = np.zeros(size, dtype=bool)
            values = np.empty(size, dtype=object)
            values.fill(ABSENT)
            typed_values = (
                np.zeros(size, dtype=float if typed is float else bool)
                if typed in (float, bool)
                else None
            )
        else:
            base_columns = self.base.block_columns(start, stop, np, typed)
            if base_columns is None:
                return None
            mask, values, typed_values = base_columns
        for instant in self._instants_in(start, stop):
            offset = instant - start
            entry = self.entries[instant]
            if is_absent(entry):
                mask[offset] = False
                values[offset] = ABSENT
                continue
            mask[offset] = True
            values[offset] = entry
            if typed_values is not None:
                if typed is float and type(entry) is float and entry == entry:
                    typed_values[offset] = entry
                elif typed is bool and (entry is True or entry is False):
                    typed_values[offset] = entry
                else:
                    typed_values = None
        return mask, values, typed_values

    def finite_support(self) -> Optional[int]:
        """Bounded when the base is bounded (or missing)."""
        own = max(self.entries) + 1 if self.entries else 0
        if self.base is None:
            return own
        base_support = self.base.finite_support()
        return None if base_support is None else max(own, base_support)


class ExplicitRule(InputRule):
    """Backward-compatible eager rule: one stored value per instant.

    This is what assigning a plain list into ``scenario.inputs`` (or
    calling :meth:`Scenario.set_flow`) builds; instants beyond the stored
    list are absent.  It has no arithmetic fast path — the vectorized
    backend falls back to slicing, exactly as it did before the symbolic
    representation existed.
    """

    __slots__ = ("values",)

    def __init__(self, values: Sequence[Any]) -> None:
        self.values: List[Any] = list(values)

    def __repr__(self) -> str:
        """Debug form showing the stored length."""
        return f"ExplicitRule({len(self.values)} values)"

    def __len__(self) -> int:
        """Number of stored instants (legacy list-compatibility)."""
        return len(self.values)

    def __getitem__(self, index: int) -> Any:
        """Indexed access into the stored window (legacy list-compatibility)."""
        return self.values[index]

    def __iter__(self) -> Iterator[Any]:
        """Iterate the stored window (legacy list-compatibility)."""
        return iter(self.values)

    def value(self, instant: int) -> Any:
        """The stored value, absent outside the stored window."""
        if 0 <= instant < len(self.values):
            return self.values[instant]
        return ABSENT

    def sampler(self) -> Sampler:
        """Closure over the stored list with a bounds check."""
        values = self.values
        limit = len(values)

        def sample(instant: int) -> Any:
            if 0 <= instant < limit:
                return values[instant]
            return ABSENT

        return sample

    def column(self, start: int, stop: int) -> List[Any]:
        """Slice of the stored window, absent-padded past its end."""
        values = self.values
        limit = len(values)
        if stop <= limit and start >= 0:
            return values[start:stop]
        return [
            values[instant] if 0 <= instant < limit else ABSENT
            for instant in range(start, stop)
        ]

    def finite_support(self) -> Optional[int]:
        """The stored length."""
        return len(self.values)


class GeneratorRule(InputRule):
    """Escape hatch: an arbitrary ``instant -> value`` function.

    The function must be pure per instant (engines may evaluate instants
    in blocks, replay them on fallback, or re-evaluate them in worker
    processes) and return ``ABSENT`` where the signal does not occur.  For
    ``workers=N`` batches it must be picklable — a top-level function, not
    a lambda.  There is no arithmetic fast path: the vectorized backend
    samples it instant by instant.
    """

    __slots__ = ("function",)

    def __init__(self, function: Callable[[int], Any]) -> None:
        self.function = function

    def __repr__(self) -> str:
        """Debug form naming the wrapped function."""
        name = getattr(self.function, "__name__", repr(self.function))
        return f"GeneratorRule({name})"

    def value(self, instant: int) -> Any:
        """Whatever the wrapped function answers."""
        return self.function(instant)

    def sampler(self) -> Sampler:
        """The wrapped function itself."""
        return self.function


def as_rule(flow: Any) -> InputRule:
    """Coerce a ``scenario.inputs`` assignment into an :class:`InputRule`.

    Rules pass through; plain sequences (the legacy eager representation)
    wrap into an :class:`ExplicitRule`; callables wrap into a
    :class:`GeneratorRule`.
    """
    if isinstance(flow, InputRule):
        return flow
    if isinstance(flow, (list, tuple)):
        return ExplicitRule(flow)
    if callable(flow):
        return GeneratorRule(flow)
    raise TypeError(
        f"cannot interpret {type(flow).__name__!r} as an input rule; "
        "pass an InputRule, a list/tuple of per-instant values, or a callable"
    )


class InputProgram(dict):
    """``signal name -> InputRule`` mapping with legacy-list coercion.

    Assigning a plain list (the pre-symbolic idiom
    ``scenario.inputs["u"] = [...]``) transparently wraps it into an
    :class:`ExplicitRule`, so existing call sites keep working unchanged.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        """Build the mapping, coercing any initial entries through :func:`as_rule`."""
        super().__init__()
        if args or kwargs:
            self.update(*args, **kwargs)

    def __setitem__(self, name: str, flow: Any) -> None:
        """Store *flow* coerced through :func:`as_rule`."""
        super().__setitem__(name, as_rule(flow))

    def copy(self) -> "InputProgram":
        """A shallow :class:`InputProgram` copy (not a plain ``dict``)."""
        clone = InputProgram()
        for name, rule in self.items():
            dict.__setitem__(clone, name, rule)
        return clone

    def setdefault(self, name: str, flow: Any = None) -> InputRule:
        """Coercing counterpart of ``dict.setdefault``."""
        if name not in self:
            self[name] = flow
        return self[name]

    def update(self, *args: Any, **kwargs: Any) -> None:
        """Coercing counterpart of ``dict.update``."""
        merged: Dict[str, Any] = dict(*args, **kwargs)
        for name, flow in merged.items():
            self[name] = flow


class Scenario:
    """Input scenario: a symbolic program of rules per driven signal.

    ``length`` is the *default* simulation horizon: ``run(scenario)``
    simulates that many instants.  It may be ``None`` (an **unbounded**
    scenario), in which case the horizon must be supplied at simulate time
    (``length=`` on ``simulate``/``run``) — rules are unbounded flows, so
    one symbolic scenario can be reused across any number of horizons.

    The builder methods *record rules* instead of expanding lists:
    :meth:`set_periodic`, :meth:`set_always` and :meth:`set_at` cost O(1) /
    O(entries) memory whatever the horizon; :meth:`set_flow` keeps the
    explicit eager representation for callers that genuinely have one value
    per instant.
    """

    def __init__(self, length: Optional[int] = None) -> None:
        if length is not None and length < 0:
            raise ValueError("scenario length must be non-negative")
        self.length = length
        self.inputs: InputProgram = InputProgram()

    def __repr__(self) -> str:
        """Debug form showing horizon and driven signals."""
        horizon = "unbounded" if self.length is None else f"{self.length} instants"
        return f"Scenario({horizon}, {len(self.inputs)} driven signal(s))"

    # ------------------------------------------------------------------
    # builders (each records a rule and returns self for chaining)
    # ------------------------------------------------------------------
    def set_flow(self, name: str, values: Sequence[Any]) -> "Scenario":
        """Provide an explicit per-instant flow (padded with ``ABSENT``).

        Raises :class:`ValueError` when *values* is longer than a bounded
        scenario — the old behaviour silently truncated, hiding the
        mismatch from the caller.
        """
        values = list(values)
        if self.length is not None and len(values) > self.length:
            raise ValueError(
                f"flow for {name!r} has {len(values)} values but the scenario "
                f"is {self.length} instants long; pass a longer scenario (or "
                f"length=None for an unbounded one) instead of relying on "
                f"silent truncation"
            )
        self.inputs[name] = ExplicitRule(values)
        return self

    def set_periodic(self, name: str, period: int, phase: int = 0, value: Any = True) -> "Scenario":
        """Make *name* present every *period* instants starting at *phase*."""
        self.inputs[name] = PeriodicRule(period, phase, value)
        return self

    def set_at(self, name: str, instants: Mapping[int, Any]) -> "Scenario":
        """Overlay pointwise values at selected instants.

        Composes with whatever rule already drives *name* (the pointwise
        entries win).  Raises :class:`ValueError` when an instant falls
        outside a bounded scenario — the old behaviour silently dropped it.
        """
        if self.length is not None:
            bad = sorted(
                instant for instant in instants if not 0 <= instant < self.length
            )
            if bad:
                raise ValueError(
                    f"instants {bad} for {name!r} fall outside the scenario "
                    f"horizon [0, {self.length}); they were previously dropped "
                    f"silently — extend the scenario (or build it with "
                    f"length=None) instead"
                )
        self.inputs[name] = SparseRule(instants, base=self.inputs.get(name))
        return self

    def set_always(self, name: str, value: Any = True) -> "Scenario":
        """Make *name* present with *value* at every instant."""
        self.inputs[name] = ConstantRule(value)
        return self

    def set_rule(self, name: str, rule: InputRule) -> "Scenario":
        """Drive *name* with an explicit :class:`InputRule` (or coercible)."""
        self.inputs[name] = rule
        return self

    def set_generator(self, name: str, function: Callable[[int], Any]) -> "Scenario":
        """Drive *name* with an ``instant -> value`` function (escape hatch)."""
        self.inputs[name] = GeneratorRule(function)
        return self

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def value(self, name: str, instant: int) -> Any:
        """The value of *name* at *instant* (``ABSENT`` when undriven/absent)."""
        rule = self.inputs.get(name)
        if rule is None or instant < 0:
            return ABSENT
        return rule.value(instant)

    def column(self, name: str, start: int, stop: int) -> List[Any]:
        """Materialise one signal over the window ``[start, stop)``."""
        rule = self.inputs.get(name)
        if rule is None:
            return [ABSENT] * max(0, stop - start)
        return rule.column(start, stop)

    def materialize(self, name: str, length: Optional[int] = None) -> List[Any]:
        """Materialise one signal over the full horizon as a plain list."""
        return self.column(name, 0, self.run_length(length))

    def materialized(self, length: Optional[int] = None) -> "Scenario":
        """An eager :class:`ExplicitRule`-only copy of this scenario.

        Every driven signal is expanded over the horizon — O(signals ×
        instants) memory, exactly the representation the symbolic program
        replaces.  Used by the parity tests and the E15 benchmark as the
        "force-materialised" baseline.
        """
        horizon = self.run_length(length)
        eager = Scenario(horizon)
        for name in self.inputs:
            eager.inputs[name] = ExplicitRule(self.column(name, 0, horizon))
        return eager

    def run_length(self, length: Optional[int] = None) -> int:
        """Resolve the effective simulation horizon.

        *length* (the simulate-time override) wins when given; otherwise
        the scenario's own default horizon applies.  An unbounded scenario
        with no override is an error — some consumer has to choose when to
        stop.
        """
        if length is None:
            length = self.length
        if length is None:
            raise ValueError(
                "this scenario is unbounded (length=None); pass length= at "
                "simulate time to choose the run horizon"
            )
        if length < 0:
            raise ValueError("simulation length must be non-negative")
        return length


__all__ = [
    "ConstantRule",
    "ExplicitRule",
    "GeneratorRule",
    "InputProgram",
    "InputRule",
    "PeriodicRule",
    "Sampler",
    "Scenario",
    "SparseRule",
    "as_rule",
]


def _typed_fill(np: Any, size: int, fill: Any, typed: Optional[type]):
    """A native column of one fill value, when exactly representable.

    NaN floats stay on the object path: the typed round-trip would
    re-materialise the caller's NaN object through ``.tolist()``, and NaN
    compares equal only by identity, breaking flow ``==`` against the
    per-instant backends' passed-through object.
    """
    if typed is float and type(fill) is float and fill == fill:
        return np.full(size, fill)
    if typed is bool and (fill is True or fill is False):
        return np.full(size, fill, dtype=bool)
    return None
