"""Conditional dependency graph of a polychronous process.

Polychrony compiles SIGNAL programs through a *graph of conditional
dependencies* (GCD): a directed graph whose nodes are signals and whose edges
record that the value of one signal is needed, at the same instant, to compute
another one.  Delays (``$``) do **not** create instantaneous dependencies —
they are precisely the operator that breaks causality cycles.

The static deadlock detection of the paper (Section I, item 1 of the analysis
list) is a cycle search on this graph; the profiling analysis reuses the graph
to count operations per signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .expressions import (
    Cell,
    ClockDifference,
    ClockIntersection,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Expression,
    FunctionApp,
    SignalRef,
    Var,
    When,
    WhenClock,
)
from .process import Equation, ProcessModel


@dataclass(frozen=True)
class DependencyEdge:
    """An instantaneous dependency: *target* needs *source* at the same instant."""

    source: str
    target: str
    kind: str  # "value" (data dependency) or "clock" (presence dependency)
    label: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.source} --[{self.kind}]--> {self.target}"


@dataclass
class DependencyGraph:
    """Instantaneous (conditional) dependency graph of a flat process."""

    process_name: str
    nodes: Set[str] = field(default_factory=set)
    edges: List[DependencyEdge] = field(default_factory=list)

    def successors(self, node: str) -> List[str]:
        return [e.target for e in self.edges if e.source == node]

    def predecessors(self, node: str) -> List[str]:
        return [e.source for e in self.edges if e.target == node]

    def adjacency(self) -> Dict[str, Set[str]]:
        adj: Dict[str, Set[str]] = {node: set() for node in self.nodes}
        for edge in self.edges:
            adj.setdefault(edge.source, set()).add(edge.target)
            adj.setdefault(edge.target, set())
        return adj

    def cycles(self) -> List[List[str]]:
        """All elementary strongly-connected components with more than one node
        (or a self loop), each returned as a list of node names."""
        return [scc for scc in self.strongly_connected_components() if self._is_cycle(scc)]

    def _is_cycle(self, scc: List[str]) -> bool:
        if len(scc) > 1:
            return True
        node = scc[0]
        return any(e.source == node and e.target == node for e in self.edges)

    def strongly_connected_components(self) -> List[List[str]]:
        """Tarjan's algorithm (iterative) over the adjacency structure."""
        adj = self.adjacency()
        index_counter = [0]
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        result: List[List[str]] = []

        for root in sorted(adj):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            call_stack: List[str] = []
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index[node] = index_counter[0]
                    lowlink[node] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                    call_stack.append(node)
                recurse = False
                successors = sorted(adj.get(node, ()))
                for i in range(child_index, len(successors)):
                    succ = successors[i]
                    if succ not in index:
                        work.append((node, i + 1))
                        work.append((succ, 0))
                        recurse = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    result.append(sorted(component))
                call_stack.pop()
                if call_stack:
                    parent = call_stack[-1]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        return result

    def topological_order(self) -> Optional[List[str]]:
        """A topological order of the nodes, or ``None`` when a cycle exists."""
        adj = self.adjacency()
        in_degree: Dict[str, int] = {node: 0 for node in adj}
        for source, targets in adj.items():
            for target in targets:
                in_degree[target] = in_degree.get(target, 0) + 1
        ready = sorted(node for node, degree in in_degree.items() if degree == 0)
        order: List[str] = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            for target in sorted(adj.get(node, ())):
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    ready.append(target)
            ready.sort()
        if len(order) != len(adj):
            return None
        return order


def _instantaneous_reads(expr: Expression) -> List[Tuple[str, str]]:
    """Signals read *at the current instant* by an expression.

    Returns ``(name, kind)`` pairs; reads below a delay are excluded, reads
    used only for their presence (clock operators, sampling conditions) are
    tagged ``clock``.
    """
    out: List[Tuple[str, str]] = []

    def visit(node: Expression, kind: str) -> None:
        if isinstance(node, (SignalRef, Var)):
            out.append((node.name, kind))
        elif isinstance(node, Const):
            return
        elif isinstance(node, FunctionApp):
            for arg in node.args:
                visit(arg, kind)
        elif isinstance(node, Delay):
            # The delayed value is the previous one: no instantaneous
            # dependency on the operand value, only on its presence.
            for name in node.operand.signals():
                out.append((name, "clock"))
        elif isinstance(node, When):
            visit(node.operand, kind)
            visit(node.condition, "value")
        elif isinstance(node, WhenClock):
            visit(node.condition, "value")
        elif isinstance(node, Default):
            visit(node.left, kind)
            visit(node.right, kind)
        elif isinstance(node, Cell):
            visit(node.operand, kind)
            visit(node.condition, "value")
        elif isinstance(node, ClockOf):
            for name in node.operand.signals():
                out.append((name, "clock"))
        elif isinstance(node, (ClockUnion, ClockIntersection, ClockDifference)):
            for name in node.left.signals():
                out.append((name, "clock"))
            for name in node.right.signals():
                out.append((name, "clock"))
        else:
            raise TypeError(f"unsupported expression node {type(node).__name__}")

    visit(expr, "value")
    return out


def build_dependency_graph(process: ProcessModel, include_clock_edges: bool = False) -> DependencyGraph:
    """Build the instantaneous dependency graph of a (possibly hierarchical) process.

    ``include_clock_edges`` controls whether presence-only dependencies (clock
    reads) are added as edges; value dependencies are always included.  Clock
    reads cannot create computation deadlocks on their own in the reference
    simulator, so the default matches the deadlock analysis of the paper.
    """
    if process.instances or process.submodels:
        process = process.flatten()
    graph = DependencyGraph(process_name=process.name)
    graph.nodes.update(process.signals.keys())
    for eq in process.equations:
        graph.nodes.add(eq.target)
        for name, kind in _instantaneous_reads(eq.expr):
            if kind == "clock" and not include_clock_edges:
                continue
            graph.nodes.add(name)
            graph.edges.append(DependencyEdge(source=name, target=eq.target, kind=kind, label=eq.label))
    return graph
