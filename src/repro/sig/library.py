"""AADL2SIGNAL library: reusable polychronous processes for the translation.

The paper's tool chain ships an *AADL2SIGNAL library* of common SIGNAL
processes that "reduces significantly the transformation complexity and
cost".  This module is that library: each function builds a parametric
:class:`~repro.sig.process.ProcessModel` implementing one of the timing
idioms of Section IV of the paper:

* :func:`memory_process` — the ``o = fm(i, b)`` memory process (Section IV-C);
* :func:`input_freezing` — ``z = x ◮ t`` input freezing at *Input_Time*;
* :func:`output_sending` — ``w = y ⊲ t`` output sending at *Output_Time*;
* :func:`in_event_port` — queued in event port with ``in_fifo``/``frozen_fifo``
  behaviour (Fig. 5);
* :func:`out_event_port` — out event port buffering values until *Output_Time*;
* :func:`data_port` — (event-)data port keeping the last received value;
* :func:`fifo_reset` — the shared-data FIFO with read/write/reset access
  clocks (Fig. 6);
* :func:`thread_property_observer` — the deadline-miss observer producing the
  ``Alarm`` output of a translated thread (Fig. 4);
* :func:`periodic_clock_divider` — derivation of a periodic sub-clock from a
  base tick, the executable counterpart of an affine sampling relation.

All processes follow the same conventions: event inputs carry the value
``True`` when present; stateful signals are anchored on an explicit ``tick``
clock (the union of the relevant event clocks) through a ``^=`` constraint so
that both the clock calculus and the reference simulator resolve them.
"""

from __future__ import annotations

from typing import Any, Optional

from .expressions import (
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Cell,
    FunctionApp,
    SignalRef,
    When,
    WhenClock,
)
from .process import Direction, ProcessModel
from .values import BOOLEAN, EVENT, INTEGER, SignalType


def _clock(name: str) -> ClockOf:
    return ClockOf(SignalRef(name))


def memory_process(
    value_type: SignalType = INTEGER,
    name: str = "fm",
    init: Any = None,
) -> ProcessModel:
    """The memory process ``o = fm(i, b)`` of Section IV-C.

    ``o`` is present at the instants where ``b`` is present and true; it then
    carries the current value of ``i`` when ``i`` is present, and the last
    previous value of ``i`` otherwise.
    """
    model = ProcessModel(name, comment="memory process o = fm(i, b)")
    model.input("i", value_type)
    model.input("b", BOOLEAN)
    model.output("o", value_type)
    model.define("o", When(Cell(SignalRef("i"), SignalRef("b"), init=init), SignalRef("b")))
    return model


def input_freezing(
    value_type: SignalType = INTEGER,
    name: str = "input_freeze",
    init: Any = None,
) -> ProcessModel:
    """Input freezing ``z = x ◮ t``: the value of ``x`` frozen at event ``t``.

    ``z`` is present exactly at the instants of the freeze event ``t`` and
    carries the last value received on ``x`` (``init`` before the first one).
    """
    model = ProcessModel(name, comment="input freezing z = x |> t (fm over the frozen-time event)")
    model.input("x", value_type)
    model.input("t", EVENT)
    model.output("z", value_type)
    model.define("z", When(Cell(SignalRef("x"), _clock("t"), init=init), _clock("t")))
    return model


def output_sending(
    value_type: SignalType = INTEGER,
    name: str = "output_send",
    init: Any = None,
) -> ProcessModel:
    """Output sending ``w = y ⊲ t``: the output of the computation held and
    made available to the connected components at *Output_Time* ``t``."""
    model = ProcessModel(name, comment="output sending w = y <| t")
    model.input("y", value_type)
    model.input("t", EVENT)
    model.output("w", value_type)
    model.define("w", When(Cell(SignalRef("y"), _clock("t"), init=init), _clock("t")))
    return model


def in_event_port(
    name: str = "in_event_port",
    queue_size: int = 1,
    value_type: SignalType = INTEGER,
) -> ProcessModel:
    """Queued in event (data) port: ``in_fifo`` + ``frozen_fifo`` (Fig. 5).

    Interface:

    * input ``arrival`` — the incoming event (with its data when the port is
      an event data port; pure events carry ``True``);
    * input ``frozen_time`` — the *Input_Time* event at which the pending
      items are frozen (moved from ``in_fifo`` to ``frozen_fifo``);
    * output ``frozen_count`` — number of items made available to the thread
      at this freeze (``in_fifo`` content, bounded by ``Queue_Size``);
    * output ``frozen_value`` — the most recent frozen item (present only when
      ``frozen_count`` > 0);
    * output ``dropped`` — event raised when an arrival overflows the queue.

    Items arriving at the same instant as the freeze are *not* included in the
    current freeze (they arrived "after Input_Time" in the sense of Fig. 2 and
    will be processed at the next dispatch).
    """
    if queue_size < 1:
        raise ValueError("Queue_Size must be at least 1")
    model = ProcessModel(
        name,
        parameters={"queue_size": queue_size},
        comment=f"in event port, Queue_Size = {queue_size}, FIFO queue processing protocol",
    )
    arrival = model.input("arrival", value_type)
    model.input("frozen_time", EVENT, comment="Frozen_time_event (Input_Time)")
    model.output("frozen_count", INTEGER)
    model.output("frozen_value", value_type)
    model.output("dropped", EVENT)
    model.local("tick", EVENT)
    model.local("pending", INTEGER, comment="in_fifo occupancy")
    model.local("zpending", INTEGER)
    model.local("after_freeze", INTEGER)
    model.local("stored", value_type, comment="most recent queued item")
    model.local("have_data", BOOLEAN)
    model.local("overflow_flag", BOOLEAN)

    freeze_clk = _clock("frozen_time")
    arrival_clk = _clock("arrival")

    model.define("tick", ClockUnion(SignalRef("arrival"), SignalRef("frozen_time")))
    model.define("zpending", Delay(SignalRef("pending"), init=0))
    model.define(
        "after_freeze",
        Default(When(Const(0), freeze_clk), SignalRef("zpending")),
        label="in_fifo content after serving the freeze",
    )
    model.define(
        "pending",
        Default(
            When(
                FunctionApp("min", (FunctionApp("+", (SignalRef("after_freeze"), Const(1))), Const(queue_size))),
                arrival_clk,
            ),
            SignalRef("after_freeze"),
        ),
        label="in_fifo content after a possible arrival",
    )
    model.synchronise("pending", "tick", label="in_fifo state lives on the port tick")
    model.define(
        "overflow_flag",
        When(
            FunctionApp(">", (FunctionApp("+", (SignalRef("after_freeze"), Const(1))), Const(queue_size))),
            arrival_clk,
        ),
    )
    model.define("dropped", WhenClock(SignalRef("overflow_flag")))
    model.define("frozen_count", When(SignalRef("zpending"), freeze_clk))
    model.define("stored", Cell(arrival, freeze_clk))
    model.define(
        "have_data",
        When(FunctionApp(">", (SignalRef("zpending"), Const(0))), freeze_clk),
    )
    model.define("frozen_value", When(SignalRef("stored"), SignalRef("have_data")))
    return model


def out_event_port(
    name: str = "out_event_port",
    value_type: SignalType = INTEGER,
) -> ProcessModel:
    """Out event (data) port: values produced by the thread are buffered and
    sent out at *Output_Time* (``send_time``).

    Interface: input ``produced`` (the value computed by the thread), input
    ``send_time`` (the Output_Time event), outputs ``sent`` (the value made
    available to the connection at Output_Time, present only when something
    was produced since the previous send) and ``sent_count``.
    """
    model = ProcessModel(name, comment="out event port: hold values until Output_Time")
    model.input("produced", value_type)
    model.input("send_time", EVENT, comment="Output_Time event")
    model.output("sent", value_type)
    model.output("sent_count", INTEGER)
    model.local("tick", EVENT)
    model.local("count", INTEGER)
    model.local("zcount", INTEGER)
    model.local("after_send", INTEGER)
    model.local("have_data", BOOLEAN)

    send_clk = _clock("send_time")
    produced_clk = _clock("produced")

    model.define("tick", ClockUnion(SignalRef("produced"), SignalRef("send_time")))
    model.define("zcount", Delay(SignalRef("count"), init=0))
    model.define("after_send", Default(When(Const(0), send_clk), SignalRef("zcount")))
    model.define(
        "count",
        Default(
            When(FunctionApp("+", (SignalRef("after_send"), Const(1))), produced_clk),
            SignalRef("after_send"),
        ),
    )
    model.synchronise("count", "tick")
    model.define("have_data", When(FunctionApp(">", (SignalRef("zcount"), Const(0))), send_clk))
    model.define("sent_count", When(SignalRef("zcount"), send_clk))
    model.define("sent", When(Cell(SignalRef("produced"), send_clk), SignalRef("have_data")))
    return model


def data_port(
    name: str = "data_port",
    value_type: SignalType = INTEGER,
    init: Any = None,
) -> ProcessModel:
    """In data port: the most recent received value, frozen at *Input_Time*.

    AADL data ports have no queue (the newest value overwrites the previous
    one); the frozen value is simply the last received value at the freeze
    event, i.e. the ``fm`` memory process applied to the connection.
    """
    model = ProcessModel(name, comment="in data port (no queue, last value wins)")
    model.input("incoming", value_type)
    model.input("frozen_time", EVENT)
    model.output("frozen_value", value_type)
    model.define(
        "frozen_value",
        When(Cell(SignalRef("incoming"), _clock("frozen_time"), init=init), _clock("frozen_time")),
    )
    return model


def fifo_reset(
    name: str = "fifo_reset",
    value_type: SignalType = INTEGER,
    init: Any = 0,
    capacity: Optional[int] = None,
) -> ProcessModel:
    """Shared data component as a single FIFO instance (Fig. 6).

    The data component is represented by *one* process instance whose content
    can be written, read and reset by different components at different time
    instants:

    * input ``write`` — a value written by a producer (its clock is the
      producer's write clock);
    * input ``reset`` — event resetting the FIFO to its initial value;
    * input ``read`` — event marking a consumer read access;
    * output ``read_value`` — the content observed at each read instant;
    * output ``count`` — the FIFO occupancy (writes push, reads pop), clamped
      to ``capacity`` when given;
    * output ``empty`` — boolean, sampled at read instants.

    Mutual-exclusion of accesses is the responsibility of the scheduler (the
    paper's mutual exclusion access clocks); when a write and a read do occur
    at the same instant the write is served first.
    """
    model = ProcessModel(
        name,
        parameters={"capacity": capacity if capacity is not None else -1},
        comment="shared data as a FIFO with read/write/reset access clocks",
    )
    model.input("write", value_type)
    model.input("reset", EVENT)
    model.input("read", EVENT)
    model.output("read_value", value_type)
    model.output("count", INTEGER)
    model.output("empty", BOOLEAN)
    model.local("tick", EVENT)
    model.local("current", value_type)
    model.local("zcurrent", value_type)
    model.local("zcount", INTEGER)
    model.local("occupancy", INTEGER)

    write_clk = _clock("write")
    reset_clk = _clock("reset")
    read_clk = _clock("read")

    model.define(
        "tick",
        ClockUnion(SignalRef("write"), ClockUnion(SignalRef("reset"), SignalRef("read"))),
    )
    model.define("zcurrent", Delay(SignalRef("current"), init=init))
    model.define(
        "current",
        Default(
            SignalRef("write"),
            Default(When(Const(init), reset_clk), SignalRef("zcurrent")),
        ),
        label="eq1: value held by the shared FIFO",
    )
    model.synchronise("current", "tick")
    model.define("zcount", Delay(SignalRef("occupancy"), init=0))
    push = FunctionApp("+", (SignalRef("zcount"), Const(1)))
    if capacity is not None:
        push = FunctionApp("min", (push, Const(capacity)))
    model.define(
        "occupancy",
        Default(
            When(Const(0), reset_clk),
            Default(
                When(push, write_clk),
                Default(
                    When(FunctionApp("max", (FunctionApp("-", (SignalRef("zcount"), Const(1))), Const(0))), read_clk),
                    SignalRef("zcount"),
                ),
            ),
        ),
        label="eq2: FIFO occupancy",
    )
    model.synchronise("occupancy", "tick")
    model.define("count", SignalRef("occupancy"))
    model.define("read_value", When(SignalRef("current"), read_clk), label="eq3: consumer read access")
    model.define("empty", When(FunctionApp("=", (SignalRef("zcount"), Const(0))), read_clk))
    return model


def thread_property_observer(name: str = "thread_property_observer") -> ProcessModel:
    """Deadline observer producing the ``Alarm`` output of a translated thread.

    A dispatch opens an execution window; the window closes at the matching
    ``complete`` event.  If the window is still open when the ``deadline``
    event occurs, the timing property is violated and ``alarm`` is emitted.
    When the deadline instant coincides with the next dispatch (the common
    ``Deadline => Period`` case) the observer checks the *previous* window.
    """
    model = ProcessModel(name, comment="timing property observer: alarm on deadline miss")
    model.input("dispatch", EVENT)
    model.input("complete", EVENT)
    model.input("deadline", EVENT)
    model.output("alarm", EVENT)
    model.output("violated", BOOLEAN)
    model.local("tick", EVENT)
    model.local("pending", BOOLEAN)
    model.local("zpending", BOOLEAN)

    model.define(
        "tick",
        ClockUnion(SignalRef("dispatch"), ClockUnion(SignalRef("complete"), SignalRef("deadline"))),
    )
    model.define("zpending", Delay(SignalRef("pending"), init=False))
    model.define(
        "pending",
        Default(
            When(Const(False), _clock("complete")),
            Default(When(Const(True), _clock("dispatch")), SignalRef("zpending")),
        ),
    )
    model.synchronise("pending", "tick")
    model.define("violated", When(SignalRef("zpending"), _clock("deadline")))
    model.define("alarm", WhenClock(SignalRef("violated")))
    return model


def periodic_clock_divider(
    name: str = "periodic_clock",
    period: int = 1,
    phase: int = 0,
) -> ProcessModel:
    """Derive a periodic sub-clock ``out = {period·t + phase | t ∈ tick}``.

    This is the executable form of an affine sampling relation: the output
    event is present at the instants of the input ``tick`` whose index is
    ``phase``, ``phase + period``, ``phase + 2·period``, …  The scheduler
    synthesis exports each scheduled event as one such divider instance.
    """
    if period <= 0:
        raise ValueError("period must be strictly positive")
    if phase < 0:
        raise ValueError("phase must be non-negative")
    model = ProcessModel(
        name,
        parameters={"period": period, "phase": phase},
        comment=f"affine sampling {{{period}*t + {phase}}} of the base tick",
    )
    model.input("tick", EVENT)
    model.output("out", EVENT)
    model.local("index", INTEGER)
    model.local("zindex", INTEGER)
    model.local("hit", BOOLEAN)

    model.define("zindex", Delay(SignalRef("index"), init=-1))
    model.define(
        "index",
        When(FunctionApp("+", (SignalRef("zindex"), Const(1))), _clock("tick")),
    )
    model.synchronise("index", "tick")
    model.define(
        "hit",
        FunctionApp(
            "and",
            (
                FunctionApp(">=", (SignalRef("index"), Const(phase))),
                FunctionApp(
                    "=",
                    (
                        FunctionApp("%", (FunctionApp("-", (SignalRef("index"), Const(phase))), Const(period))),
                        Const(0),
                    ),
                ),
            ),
        ),
    )
    model.define("out", WhenClock(SignalRef("hit")))
    return model


def event_counter(name: str = "event_counter") -> ProcessModel:
    """Count occurrences of an event signal (used by profiling and tests)."""
    model = ProcessModel(name, comment="count the occurrences of an event")
    model.input("e", EVENT)
    model.output("count", INTEGER)
    model.local("zcount", INTEGER)
    model.define("zcount", Delay(SignalRef("count"), init=0))
    model.define("count", When(FunctionApp("+", (SignalRef("zcount"), Const(1))), _clock("e")))
    model.synchronise("count", "e")
    return model
