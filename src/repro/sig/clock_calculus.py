"""Clock calculus: constraint extraction, resolution and clock hierarchy.

The clock calculus is the central static analysis of the polychronous model.
Given a (flattened) process it:

1. extracts the clock constraints implied by every equation and by the
   explicit ``^=`` / ``^<`` / ``^#`` constraints;
2. partitions signals into **synchronisation classes** (signals provably
   present at exactly the same instants);
3. resolves, for every class, a symbolic clock expression in terms of *free*
   clocks (typically the clocks of input signals) and boolean sampling
   conditions;
4. builds the **clock hierarchy**: a forest whose roots are the free clocks
   and where a clock is placed below the clock it is a boolean down-sampling
   of.  A process whose hierarchy is a single tree rooted at one master clock
   is *endochronous*: it can be executed deterministically without additional
   synchronisation — this is the property Polychrony checks before generating
   sequential code, and the property our simulator relies on.

The implementation is intentionally syntactic (union-of-products clock
algebra, see :mod:`repro.sig.clocks`): it is sound — it never claims two
clocks equal when they are not — but incomplete, exactly like the role it
plays in the paper where remaining constraints are reported to the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .clocks import Clock, ClockAtom, false_clock, signal_clock, true_clock
from .expressions import (
    Cell,
    ClockDifference,
    ClockIntersection,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Expression,
    FunctionApp,
    SignalRef,
    Var,
    When,
    WhenClock,
)
from .process import ClockConstraint, ConstraintKind, Direction, Equation, ProcessModel, SignalDecl


class ClockCalculusError(Exception):
    """Raised when the clock system is inconsistent (e.g. a null output clock)."""


@dataclass
class SynchronisationClass:
    """A set of signals that provably share the same clock."""

    representative: str
    members: Set[str] = field(default_factory=set)
    clock: Optional[Clock] = None
    parent: Optional[str] = None  # representative of the parent class in the hierarchy
    condition: Optional[str] = None  # textual condition refining the parent clock

    def __contains__(self, name: str) -> bool:
        return name in self.members


@dataclass
class ClockHierarchyNode:
    """A node of the clock hierarchy (one per synchronisation class)."""

    representative: str
    members: Tuple[str, ...]
    parent: Optional[str]
    depth: int
    clock: Optional[Clock]


@dataclass
class ClockCalculusResult:
    """Outcome of the clock calculus on one process."""

    process_name: str
    classes: List[SynchronisationClass]
    clock_of: Dict[str, Clock]
    hierarchy: List[ClockHierarchyNode]
    roots: List[str]
    free_signals: List[str]
    null_clock_signals: List[str]
    unresolved_constraints: List[str]
    endochronous: bool
    #: How the clock system was resolved: ``"iterative"`` (the flat solver's
    #: pairwise fixpoint), ``"directed"`` (dependency-directed expansion) or
    #: ``"iterative-fallback"`` (a cyclic clock cluster forced the directed
    #: resolution back to the iterative fixpoint).  Purely informative: all
    #: strategies produce the same classes, hierarchy and verdicts.
    resolution: str = "iterative"

    def same_analysis(self, other: "ClockCalculusResult") -> bool:
        """Semantic equality, ignoring how the resolution was computed."""
        return (
            self.process_name == other.process_name
            and self.classes == other.classes
            and self.clock_of == other.clock_of
            and self.hierarchy == other.hierarchy
            and self.roots == other.roots
            and self.free_signals == other.free_signals
            and self.null_clock_signals == other.null_clock_signals
            and self.unresolved_constraints == other.unresolved_constraints
            and self.endochronous == other.endochronous
        )

    def class_of(self, signal: str) -> Optional[SynchronisationClass]:
        for cls in self.classes:
            if signal in cls.members:
                return cls
        return None

    def synchronous(self, a: str, b: str) -> bool:
        """True when *a* and *b* were proven to share the same clock."""
        cls = self.class_of(a)
        return cls is not None and b in cls.members

    def master_clock(self) -> Optional[str]:
        """The unique root of the hierarchy when the process is endochronous."""
        if len(self.roots) == 1:
            return self.roots[0]
        return None

    def clock_count(self) -> int:
        """Number of distinct synchronisation classes (the paper's 'clocks')."""
        return len(self.classes)

    def report(self) -> str:
        """A human-readable report of the clock hierarchy (Polychrony-style)."""
        lines = [f"Clock calculus report for process {self.process_name}"]
        lines.append(f"  synchronisation classes : {len(self.classes)}")
        lines.append(f"  hierarchy roots         : {', '.join(self.roots) or '(none)'}")
        lines.append(f"  endochronous            : {'yes' if self.endochronous else 'no'}")
        if self.null_clock_signals:
            lines.append(f"  null clocks             : {', '.join(self.null_clock_signals)}")
        if self.unresolved_constraints:
            lines.append("  unresolved constraints  :")
            for constraint in self.unresolved_constraints:
                lines.append(f"    - {constraint}")
        by_rep = {node.representative: node for node in self.hierarchy}

        def emit(rep: str, indent: int) -> None:
            node = by_rep[rep]
            members = ", ".join(sorted(node.members))
            lines.append("  " + "  " * indent + f"+ {rep} [{members}]")
            for child in sorted(n.representative for n in self.hierarchy if n.parent == rep):
                emit(child, indent + 1)

        for root in sorted(self.roots):
            if root in by_rep:
                emit(root, 1)
        return "\n".join(lines)


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[str, str] = {}

    def add(self, item: str) -> None:
        self.parent.setdefault(item, item)

    def find(self, item: str) -> str:
        self.add(item)
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        # Keep the lexicographically smallest name as representative for
        # reproducible reports.
        if rb < ra:
            ra, rb = rb, ra
        self.parent[rb] = ra

    def classes(self) -> Dict[str, Set[str]]:
        out: Dict[str, Set[str]] = {}
        for item in list(self.parent):
            out.setdefault(self.find(item), set()).add(item)
        return out


@dataclass
class _ExtractedConstraints:
    synchronous_pairs: List[Tuple[str, str]]
    defined_clock: Dict[str, List[Clock]]
    exclusive_pairs: List[Tuple[str, str]]
    subclock_pairs: List[Tuple[str, str]]
    unresolved: List[str]


class ClockCalculus:
    """Run the clock calculus over a flat :class:`ProcessModel`."""

    def __init__(self, process: ProcessModel) -> None:
        self.process = process

    # ------------------------------------------------------------------
    # expression clocks
    # ------------------------------------------------------------------
    def expression_clock(self, expr: Expression) -> Optional[Clock]:
        """Symbolic clock of an expression.

        Returns ``None`` for context-clocked expressions (bare constants),
        whose clock is imposed by the equation they appear in.
        """
        if isinstance(expr, (SignalRef, Var)):
            return signal_clock(expr.name)
        if isinstance(expr, Const):
            return None
        if isinstance(expr, Delay):
            return self.expression_clock(expr.operand)
        if isinstance(expr, FunctionApp):
            clocks = [self.expression_clock(a) for a in expr.args]
            clocks = [c for c in clocks if c is not None]
            if not clocks:
                return None
            # operands are synchronous: any operand clock is the result clock
            return clocks[0]
        if isinstance(expr, When):
            cond = self._condition_clock(expr.condition, positive=True)
            operand = self.expression_clock(expr.operand)
            if operand is None:
                return cond
            return operand.intersection(cond)
        if isinstance(expr, WhenClock):
            return self._condition_clock(expr.condition, positive=True)
        if isinstance(expr, Default):
            left = self.expression_clock(expr.left)
            right = self.expression_clock(expr.right)
            if left is None:
                return right
            if right is None:
                return left
            return left.union(right)
        if isinstance(expr, Cell):
            operand = self.expression_clock(expr.operand)
            cond = self._condition_clock(expr.condition, positive=True)
            if operand is None:
                return cond
            return operand.union(cond)
        if isinstance(expr, ClockOf):
            return self.expression_clock(expr.operand)
        if isinstance(expr, ClockUnion):
            return self._binary_clock(expr.left, expr.right, "union")
        if isinstance(expr, ClockIntersection):
            return self._binary_clock(expr.left, expr.right, "intersection")
        if isinstance(expr, ClockDifference):
            return self._binary_clock(expr.left, expr.right, "difference")
        raise TypeError(f"cannot compute the clock of {type(expr).__name__}")

    def _binary_clock(self, left: Expression, right: Expression, op: str) -> Optional[Clock]:
        lc = self.expression_clock(left)
        rc = self.expression_clock(right)
        if lc is None or rc is None:
            return lc if rc is None else rc
        return getattr(lc, op)(rc)

    def _condition_clock(self, condition: Expression, positive: bool) -> Clock:
        """Clock of the instants at which a boolean expression is true/false."""
        if isinstance(condition, SignalRef):
            return true_clock(condition.name) if positive else false_clock(condition.name)
        if isinstance(condition, FunctionApp) and condition.op == "not" and len(condition.args) == 1:
            return self._condition_clock(condition.args[0], not positive)
        if isinstance(condition, Const):
            # `when true` over an unknown context: neutral (never restricts);
            # `when false` yields the null clock.
            if bool(condition.value) == positive:
                return Clock.from_product(())
            return Clock.null()
        # General boolean expression: approximate by the clock of the
        # expression itself (sound upper bound); record no polarity split.
        base = self.expression_clock(condition)
        return base if base is not None else Clock.from_product(())

    # ------------------------------------------------------------------
    # constraint extraction
    # ------------------------------------------------------------------
    def _extract(self) -> _ExtractedConstraints:
        sync: List[Tuple[str, str]] = []
        defined: Dict[str, List[Clock]] = {}
        exclusive: List[Tuple[str, str]] = []
        subclocks: List[Tuple[str, str]] = []
        unresolved: List[str] = []

        for eq in self.process.equations:
            clock = self.expression_clock(eq.expr)
            self._collect_function_synchrony(eq.expr, sync)
            if clock is None:
                continue
            if eq.partial:
                defined.setdefault(eq.target, []).append(clock)
            else:
                defined.setdefault(eq.target, [])
                defined[eq.target].append(clock)
                # A full definition forces clock equality; when the clock is a
                # single signal atom, that is a synchronisation.
                if len(clock.products) == 1:
                    product = clock.products[0]
                    if len(product) == 1:
                        atom = next(iter(product))
                        if atom.kind == "sig":
                            sync.append((eq.target, atom.name))

        for constraint in self.process.constraints:
            names = [op.name for op in constraint.operands if isinstance(op, (SignalRef, Var))]
            if len(names) != len(constraint.operands):
                unresolved.append(str(constraint))
                continue
            if constraint.kind is ConstraintKind.SYNCHRONOUS:
                for a, b in zip(names, names[1:]):
                    sync.append((a, b))
            elif constraint.kind is ConstraintKind.EXCLUSIVE:
                for i, a in enumerate(names):
                    for b in names[i + 1:]:
                        exclusive.append((a, b))
            elif constraint.kind is ConstraintKind.SUBCLOCK:
                if len(names) == 2:
                    subclocks.append((names[0], names[1]))
                else:
                    unresolved.append(str(constraint))
        return _ExtractedConstraints(sync, defined, exclusive, subclocks, unresolved)

    def _collect_function_synchrony(self, expr: Expression, sync: List[Tuple[str, str]]) -> None:
        """Record that the direct signal operands of a stepwise function are synchronous."""
        if isinstance(expr, FunctionApp):
            direct = [a.name for a in expr.args if isinstance(a, (SignalRef, Var))]
            for a, b in zip(direct, direct[1:]):
                sync.append((a, b))
            for arg in expr.args:
                self._collect_function_synchrony(arg, sync)
        elif isinstance(expr, (When, Cell)):
            self._collect_function_synchrony(expr.operand, sync)
            self._collect_function_synchrony(expr.condition, sync)
        elif isinstance(expr, Default):
            self._collect_function_synchrony(expr.left, sync)
            self._collect_function_synchrony(expr.right, sync)
        elif isinstance(expr, Delay):
            self._collect_function_synchrony(expr.operand, sync)
        elif isinstance(expr, (ClockUnion, ClockIntersection, ClockDifference)):
            self._collect_function_synchrony(expr.left, sync)
            self._collect_function_synchrony(expr.right, sync)
        elif isinstance(expr, (ClockOf, WhenClock)):
            inner = expr.operand if isinstance(expr, ClockOf) else expr.condition
            self._collect_function_synchrony(inner, sync)

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def run(self, resolution: str = "iterative") -> ClockCalculusResult:
        """Extract the clock constraints and solve them.

        ``resolution`` selects the fixpoint strategy (see
        :func:`solve_constraint_system`); the default is the original
        pairwise-substitution loop.
        """
        return solve_constraint_system(
            self.process.name, self.process.signals, self._extract(), resolution=resolution
        )


def _resolve_iterative(defined_clocks: Dict[str, Clock], rep_count: int) -> Dict[str, Clock]:
    """The flat solver's fixpoint: pairwise substitution over all defined
    representatives until nothing changes (bounded by the class count).

    This is the reference trajectory: cyclic clock definitions are skipped
    pair-by-pair against the *current* state of the other definition, so the
    outcome on cyclic clusters depends on this exact visit order.
    """
    resolved: Dict[str, Clock] = dict(defined_clocks)
    for _ in range(rep_count + 1):
        changed = False
        for rep, clock in list(resolved.items()):
            new_clock = clock
            for other, other_clock in resolved.items():
                if other == rep:
                    continue
                if other in new_clock.base_signals():
                    # Avoid substituting definitions that mention `rep`
                    # (cycle); such clocks stay expressed over the cycle.
                    if rep in other_clock.base_signals():
                        continue
                    candidate = new_clock.substitute_signal(other, other_clock)
                    if candidate != new_clock:
                        new_clock = candidate
            if new_clock != resolved[rep]:
                resolved[rep] = new_clock
                changed = True
        if not changed:
            break
    return resolved


def _strongly_connected_components(deps: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC (iterative), emitting components dependencies-first."""
    index: Dict[str, int] = {}
    low: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = 0

    for root in deps:
        if root in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(deps[root]))]
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(deps[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


def _resolve_directed(defined_clocks: Dict[str, Clock]) -> Optional[Dict[str, Clock]]:
    """Dependency-directed resolution: expand each defined representative in
    topological order of the clock-definition dependency graph.

    On an acyclic dependency graph the pairwise fixpoint of
    :func:`_resolve_iterative` is confluent — every visit order converges to
    the unique full expansion over free clocks — so expanding each definition
    once, dependencies first, produces the *same* resolved clocks in near
    linear time instead of a quadratic number of ``base_signals`` scans.

    Cyclic clock clusters (mutually recursive clock definitions) make the
    iterative trajectory order-dependent; there this function gives up and
    returns ``None`` so the caller can fall back to the reference loop and
    stay bit-identical with the flat solver.
    """
    deps: Dict[str, Set[str]] = {}
    for rep, clock in defined_clocks.items():
        deps[rep] = {
            name for name in clock.base_signals() if name != rep and name in defined_clocks
        }
    components = _strongly_connected_components(deps)
    if any(len(component) > 1 for component in components):
        return None

    expanded: Dict[str, Clock] = {}
    for component in components:
        rep = component[0]
        clock = defined_clocks[rep]
        # Substitute fully expanded dependencies until a fixpoint; repeated
        # substitution matters only for self-referential definitions, which
        # the iterative loop also re-substitutes until stable.
        while True:
            changed = False
            for name in clock.base_signals():
                if name == rep:
                    continue
                replacement = expanded.get(name)
                if replacement is None:
                    continue
                candidate = clock.substitute_signal(name, replacement)
                if candidate != clock:
                    clock = candidate
                    changed = True
            if not changed:
                break
        expanded[rep] = clock
    return expanded


def solve_constraint_system(
    process_name: str,
    signals: Mapping[str, SignalDecl],
    extracted: _ExtractedConstraints,
    resolution: str = "iterative",
) -> ClockCalculusResult:
    """Solve an extracted clock-constraint system and build the result.

    This is the composition half of the clock calculus, shared by the flat
    solver (:class:`ClockCalculus`) and the modular solver
    (:mod:`repro.sig.calculus_modular`): synchronisation classes by
    union-find, clock resolution, hierarchy construction, verdicts.

    ``resolution`` is ``"iterative"`` (the original pairwise fixpoint) or
    ``"directed"`` (dependency-directed expansion, falling back to the
    iterative loop when a cyclic clock cluster makes the trajectory
    order-dependent).  Both produce identical results; ``"directed"`` is
    asymptotically faster on large systems.
    """
    if resolution not in ("iterative", "directed"):
        raise ValueError(f"unknown resolution strategy {resolution!r}")

    uf = _UnionFind()
    for decl in signals:
        uf.add(decl)
    for a, b in extracted.synchronous_pairs:
        uf.union(a, b)

    # Map every signal atom to its class representative so that clock
    # expressions are stated over representatives only.
    def normalise_clock(clock: Clock) -> Clock:
        products = []
        for product in clock.products:
            atoms = []
            for atom in product:
                atoms.append(ClockAtom(atom.kind, uf.find(atom.name)))
            products.append(frozenset(atoms))
        return Clock(products=tuple(products)) if products else Clock.null()

    defined_clocks: Dict[str, Clock] = {}
    for target, clocks in extracted.defined_clock.items():
        rep = uf.find(target)
        combined: Optional[Clock] = None
        for clock in clocks:
            nclock = normalise_clock(clock)
            combined = nclock if combined is None else combined.union(nclock)
        if combined is None:
            continue
        if rep in defined_clocks:
            defined_clocks[rep] = defined_clocks[rep].union(combined)
        else:
            defined_clocks[rep] = combined

    # Substitute defined representatives inside the clock expressions until a
    # fixpoint, either by the original pairwise loop or by the
    # dependency-directed expansion (identical results, see the resolvers).
    applied_resolution = resolution
    resolved: Optional[Dict[str, Clock]] = None
    if resolution == "directed":
        resolved = _resolve_directed(defined_clocks)
        if resolved is None:
            applied_resolution = "iterative-fallback"
    if resolved is None:
        resolved = _resolve_iterative(defined_clocks, len(uf.classes()))

    classes_map = uf.classes()
    classes: List[SynchronisationClass] = []
    clock_of: Dict[str, Clock] = {}
    null_signals: List[str] = []
    free: List[str] = []

    for rep, members in sorted(classes_map.items()):
        clock = resolved.get(rep)
        cls = SynchronisationClass(representative=rep, members=set(members), clock=clock)
        classes.append(cls)
        final_clock = clock if clock is not None else signal_clock(rep)
        for member in members:
            clock_of[member] = final_clock
        if clock is None:
            free.append(rep)
        elif clock.is_null:
            null_signals.extend(sorted(members))

    # Hierarchy: the parent of a class is the class of the unique signal
    # atom appearing in its (single-product) resolved clock.
    parent_of: Dict[str, Optional[str]] = {}
    condition_of: Dict[str, Optional[str]] = {}
    for cls in classes:
        rep = cls.representative
        clock = cls.clock
        parent: Optional[str] = None
        condition: Optional[str] = None
        if clock is not None and not clock.is_null and len(clock.products) == 1:
            product = clock.products[0]
            sig_atoms = {a.name for a in product if a.kind == "sig"}
            cond_atoms = [a for a in product if a.kind != "sig"]
            candidates = {uf.find(n) for n in sig_atoms | {a.name for a in cond_atoms}}
            candidates.discard(rep)
            if len(candidates) == 1:
                parent = next(iter(candidates))
                condition = " and ".join(sorted(str(a) for a in cond_atoms)) or None
        parent_of[rep] = parent
        condition_of[rep] = condition
        cls.parent = parent
        cls.condition = condition

    # Depths (roots are classes without parent and with a non-null clock).
    def depth(rep: str, seen: Set[str]) -> int:
        parent = parent_of.get(rep)
        if parent is None or parent in seen or parent not in parent_of:
            return 0
        return 1 + depth(parent, seen | {rep})

    hierarchy = [
        ClockHierarchyNode(
            representative=cls.representative,
            members=tuple(sorted(cls.members)),
            parent=parent_of.get(cls.representative),
            depth=depth(cls.representative, set()),
            clock=cls.clock,
        )
        for cls in classes
    ]
    roots = sorted(
        node.representative
        for node in hierarchy
        if node.parent is None and (node.clock is None or not node.clock.is_null)
    )

    unresolved = list(extracted.unresolved)
    for a, b in extracted.exclusive_pairs:
        ca, cb = clock_of.get(a), clock_of.get(b)
        if ca is None or cb is None or not ca.disjoint_with(cb):
            unresolved.append(f"{a} ^# {b}")
    for small, large in extracted.subclock_pairs:
        cs, cl = clock_of.get(small), clock_of.get(large)
        if cs is None or cl is None or not cs.included_in(cl):
            unresolved.append(f"{small} ^< {large}")

    # Endochrony: one root, and every class is connected to it.
    endo = len(roots) == 1
    if endo:
        root = roots[0]
        for node in hierarchy:
            rep = node.representative
            seen: Set[str] = set()
            while rep is not None and rep not in seen:
                seen.add(rep)
                if rep == root:
                    break
                rep = parent_of.get(rep)
            else:
                if node.clock is not None and node.clock.is_null:
                    continue
                endo = False
                break
            if rep != root and not (node.clock is not None and node.clock.is_null):
                endo = False
                break

    outputs_null = [
        name
        for name in null_signals
        if signals.get(name) is not None
        and signals[name].direction is Direction.OUTPUT
    ]
    if outputs_null:
        unresolved.append(
            "null clock on output signal(s): " + ", ".join(sorted(outputs_null))
        )

    return ClockCalculusResult(
        process_name=process_name,
        classes=classes,
        clock_of=clock_of,
        hierarchy=hierarchy,
        roots=roots,
        free_signals=sorted(free),
        null_clock_signals=sorted(set(null_signals)),
        unresolved_constraints=unresolved,
        endochronous=endo,
        resolution=applied_resolution,
    )


def run_clock_calculus(process: ProcessModel, flatten: bool = True) -> ClockCalculusResult:
    """Convenience entry point: flatten *process* (optionally) and analyse it."""
    model = process.flatten() if flatten and (process.instances or process.submodels) else process
    return ClockCalculus(model).run()
