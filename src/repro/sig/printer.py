"""SIGNAL textual syntax pretty-printer.

The ASME2SSME tool chain of the paper produces SSME models that Polychrony
unparses to the SIGNAL surface language; Figures 3–6 of the paper show such
generated code.  This module renders a :class:`~repro.sig.process.ProcessModel`
in a faithful approximation of that syntax::

    process thProducer =
      ( ? event ctl1_Dispatch, ctl1_Resume, ctl1_Deadline;
          integer pProdOK;
        ! event ctl2_Complete, ctl2_Error;
          boolean Alarm;
      )
      (| pProdOK_frozen := pProdOK cell time1_pProdStart_Frozen_time |
         ...
      |)
      where
        ...
      end;

so that the benchmark harness can regenerate the paper's figures as text.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .process import Direction, ProcessModel, SignalDecl
from .values import SignalKind, SignalType


def _type_keyword(sig_type: SignalType) -> str:
    if sig_type.kind is SignalKind.EVENT:
        return "event"
    if sig_type.kind is SignalKind.BOOLEAN:
        return "boolean"
    if sig_type.kind is SignalKind.INTEGER:
        return "integer"
    if sig_type.kind is SignalKind.REAL:
        return "real"
    if sig_type.kind is SignalKind.STRING:
        return "string"
    if sig_type.kind is SignalKind.OPAQUE:
        return sig_type.name or "any"
    return "any"


def _group_by_type(decls: List[SignalDecl]) -> List[str]:
    """Render declarations grouped by type, preserving declaration order."""
    lines: List[str] = []
    current_type: Optional[str] = None
    current_names: List[str] = []

    def flush() -> None:
        if current_names:
            lines.append(f"{current_type} {', '.join(current_names)};")

    for decl in decls:
        keyword = _type_keyword(decl.type)
        if keyword != current_type:
            flush()
            current_type = keyword
            current_names = [decl.name]
        else:
            current_names.append(decl.name)
    flush()
    return lines


class SignalPrinter:
    """Pretty-print process models in SIGNAL-like concrete syntax."""

    def __init__(self, indent: str = "  ") -> None:
        self.indent = indent

    # ------------------------------------------------------------------
    def print_process(self, model: ProcessModel, depth: int = 0, include_submodels: bool = True) -> str:
        pad = self.indent * depth
        lines: List[str] = []
        if model.comment:
            lines.append(f"{pad}%% {model.comment} %%")
        for key, value in sorted(model.pragmas.items()):
            lines.append(f"{pad}pragma {key} \"{value}\" end pragma")
        lines.append(f"{pad}process {model.name} =")
        lines.extend(self._interface(model, depth + 1))
        lines.extend(self._body(model, depth + 1))
        where = self._where(model, depth + 1, include_submodels)
        if where:
            lines.extend(where)
        lines.append(f"{pad};")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def _interface(self, model: ProcessModel, depth: int) -> List[str]:
        pad = self.indent * depth
        inner = self.indent * (depth + 1)
        lines = [f"{pad}( ? %% inputs %%"]
        input_lines = _group_by_type(model.inputs())
        if not input_lines:
            input_lines = [";"]
        lines.extend(f"{inner}{line}" for line in input_lines)
        lines.append(f"{pad}  ! %% outputs %%")
        output_lines = _group_by_type(model.outputs())
        if not output_lines:
            output_lines = [";"]
        lines.extend(f"{inner}{line}" for line in output_lines)
        lines.append(f"{pad})")
        if model.bundles:
            for bundle in model.bundles.values():
                fields = ", ".join(f"{field}={signal}" for field, signal in bundle.fields.items())
                lines.append(f"{pad}%% bundle {bundle.name}: {fields} %%")
        return lines

    def _body(self, model: ProcessModel, depth: int) -> List[str]:
        pad = self.indent * depth
        inner = self.indent * (depth + 1)
        items: List[str] = []
        for eq in model.equations:
            op = "::=" if eq.partial else ":="
            label = f" %% {eq.label} %%" if eq.label else ""
            items.append(f"{eq.target} {op} {eq.expr}{label}")
        for constraint in model.constraints:
            label = f" %% {constraint.label} %%" if constraint.label else ""
            items.append(f"{constraint}{label}")
        for instance in model.instances:
            bindings = ", ".join(f"{actual}" for actual in instance.bindings.values())
            params = ""
            if instance.parameters:
                params = "{" + ", ".join(f"{k}={v}" for k, v in sorted(instance.parameters.items())) + "}"
            items.append(f"{instance.instance_name} :: {instance.model.name}{params}({bindings})")
        if not items:
            items = ["%% empty body %%"]
        lines = [f"{pad}(| {items[0]}"]
        for item in items[1:]:
            lines.append(f"{pad} | {item}")
        lines.append(f"{pad}|)")
        return lines

    def _where(self, model: ProcessModel, depth: int, include_submodels: bool) -> List[str]:
        pad = self.indent * depth
        locals_ = model.locals() + model.shared_signals()
        has_where = bool(locals_) or (include_submodels and model.submodels)
        if not has_where:
            return []
        lines = [f"{pad}where"]
        inner = self.indent * (depth + 1)
        for line in _group_by_type(locals_):
            lines.append(f"{inner}{line}")
        shared = model.shared_signals()
        if shared:
            names = ", ".join(d.name for d in shared)
            lines.append(f"{inner}%% shared variables: {names} %%")
        if include_submodels:
            for sub in model.submodels.values():
                lines.append(self.print_process(sub, depth + 1))
        lines.append(f"{pad}end")
        return lines


def to_signal_source(model: ProcessModel, include_submodels: bool = True) -> str:
    """Render *model* as SIGNAL-like source text."""
    return SignalPrinter().print_process(model, include_submodels=include_submodels)


def module_source(models: List[ProcessModel], module_name: str = "ASME2SSME_output") -> str:
    """Render several process models as a SIGNAL module (library file)."""
    printer = SignalPrinter()
    parts = [f"module {module_name} ="]
    for model in models:
        parts.append(printer.print_process(model, depth=1))
    parts.append("end %% module %%")
    return "\n".join(parts)


def interface_summary(model: ProcessModel) -> Dict[str, List[str]]:
    """Summary of a process interface, used by tests and the figure benches."""
    return {
        "inputs": [d.name for d in model.inputs()],
        "outputs": [d.name for d in model.outputs()],
        "locals": [d.name for d in model.locals()],
        "shared": [d.name for d in model.shared_signals()],
        "bundles": sorted(model.bundles),
        "instances": [inst.instance_name for inst in model.instances],
        "submodels": sorted(model.submodels),
    }
