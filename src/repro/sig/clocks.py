"""Symbolic clock expressions and the clock algebra.

The clock of a signal is the set of logical instants at which it is present.
The clock calculus manipulates clocks symbolically: clocks of signals are
variables, sampling conditions introduce the *true* and *false* sub-clocks
``[b]`` and ``[¬b]`` of a boolean signal ``b``, and clocks are combined with
union, intersection and difference.

The representation chosen here is a normalised union of products of atoms
(a small, BDD-free boolean algebra), which is sufficient for the analyses in
the paper: building the clock hierarchy, checking synchronisation constraints,
identifying non-determinism (overlapping partial definitions) and detecting
null clocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple


@dataclass(frozen=True, order=True)
class ClockAtom:
    """An atomic clock.

    ``kind`` is one of:

    * ``"sig"``   — the clock of signal *name*;
    * ``"true"``  — the instants of boolean signal *name* carrying ``true``;
    * ``"false"`` — the instants of boolean signal *name* carrying ``false``.
    """

    kind: str
    name: str

    def __str__(self) -> str:
        if self.kind == "sig":
            return f"^{self.name}"
        if self.kind == "true":
            return f"[{self.name}]"
        return f"[not {self.name}]"

    def complement_in(self) -> Optional["ClockAtom"]:
        """For condition atoms, the complementary sub-clock of the same signal."""
        if self.kind == "true":
            return ClockAtom("false", self.name)
        if self.kind == "false":
            return ClockAtom("true", self.name)
        return None

    @property
    def base_signal(self) -> str:
        return self.name


def signal_clock(name: str) -> "Clock":
    """The clock ``^name`` of a signal."""
    return Clock.from_product((ClockAtom("sig", name),))


def true_clock(name: str) -> "Clock":
    """The sub-clock ``[name]`` of the instants where boolean *name* is true."""
    return Clock.from_product((ClockAtom("sig", name), ClockAtom("true", name)))


def false_clock(name: str) -> "Clock":
    """The sub-clock ``[not name]`` of the instants where *name* is false."""
    return Clock.from_product((ClockAtom("sig", name), ClockAtom("false", name)))


Product = FrozenSet[ClockAtom]


def _product_is_contradictory(product: Product) -> bool:
    """A product containing both ``[b]`` and ``[not b]`` denotes the null clock."""
    names_true = {a.name for a in product if a.kind == "true"}
    names_false = {a.name for a in product if a.kind == "false"}
    return bool(names_true & names_false)


def _normalise_products(products: Iterable[Product]) -> Tuple[Product, ...]:
    """Drop contradictory and absorbed products and return a canonical tuple."""
    cleaned = [p for p in set(products) if not _product_is_contradictory(p)]
    # Absorption: a product P is redundant if some other product Q ⊆ P exists
    # (Q denotes a larger clock, so P ∪ Q = Q... careful: more atoms = more
    # constraints = *smaller* clock, hence P with Q ⊆ P is contained in Q).
    kept = []
    for p in cleaned:
        if any(q < p for q in cleaned):
            continue
        kept.append(p)
    return tuple(sorted(kept, key=lambda pr: sorted((a.kind, a.name) for a in pr)))


@dataclass(frozen=True)
class Clock:
    """A clock expression in union-of-products normal form.

    The empty union is the **null clock** (never present).  There is also a
    distinguished symbolic **unknown** used for signals whose clock could not
    be computed (free clocks of input signals are represented by their own
    ``sig`` atom instead).
    """

    products: Tuple[Product, ...]

    # -- constructors -------------------------------------------------
    @staticmethod
    def null() -> "Clock":
        return Clock(products=())

    @staticmethod
    def from_product(atoms: Iterable[ClockAtom]) -> "Clock":
        return Clock(products=_normalise_products([frozenset(atoms)]))

    @staticmethod
    def of_signal(name: str) -> "Clock":
        return signal_clock(name)

    # -- predicates ---------------------------------------------------
    @property
    def is_null(self) -> bool:
        return not self.products

    def atoms(self) -> FrozenSet[ClockAtom]:
        out: set = set()
        for product in self.products:
            out.update(product)
        return frozenset(out)

    def base_signals(self) -> FrozenSet[str]:
        """All signal names mentioned by this clock."""
        return frozenset(a.name for a in self.atoms())

    # -- algebra ------------------------------------------------------
    def union(self, other: "Clock") -> "Clock":
        return Clock(products=_normalise_products(self.products + other.products))

    def intersection(self, other: "Clock") -> "Clock":
        if self.is_null or other.is_null:
            return Clock.null()
        products = []
        for p in self.products:
            for q in other.products:
                products.append(p | q)
        return Clock(products=_normalise_products(products))

    def difference(self, other: "Clock") -> "Clock":
        """Syntactic difference.

        Exact difference is not expressible in the union-of-products form
        without negation of signal-clock atoms; the clock calculus only needs
        the cases where *other* is built from condition atoms over the same
        boolean signals (``c ^- (c when b) = c when not b``).  For other cases
        a conservative result (``self``) is returned and the caller records a
        residual constraint.
        """
        if other.is_null:
            return self
        if self.is_null:
            return Clock.null()
        result_products = list(self.products)
        changed = []
        for p in result_products:
            complements = []
            for q in other.products:
                extra = q - p
                condition_atoms = [a for a in extra if a.kind in ("true", "false")]
                signal_atoms = [a for a in extra if a.kind == "sig"]
                # The subtracted product must differ only by one boolean
                # condition (plus, possibly, the redundant ^b atom of that
                # same boolean) for the complement to be expressible.
                if (
                    len(condition_atoms) == 1
                    and all(a.name == condition_atoms[0].name for a in signal_atoms)
                ):
                    atom = condition_atoms[0]
                    comp = atom.complement_in()
                    if comp is not None:
                        complements.append(comp)
                        complements.append(ClockAtom("sig", atom.name))
                        continue
                complements = None
                break
            if complements is None:
                changed.append(p)
            else:
                changed.append(p | frozenset(complements))
        return Clock(products=_normalise_products(changed))

    # -- ordering -----------------------------------------------------
    def included_in(self, other: "Clock") -> bool:
        """Syntactic inclusion test: every product of *self* refines one of *other*."""
        if self.is_null:
            return True
        if other.is_null:
            return False
        return all(any(q <= p for q in other.products) for p in self.products)

    def equivalent_to(self, other: "Clock") -> bool:
        return self.included_in(other) and other.included_in(self)

    def disjoint_with(self, other: "Clock") -> bool:
        """Syntactic disjointness: the intersection normalises to the null clock."""
        return self.intersection(other).is_null

    # -- substitution ---------------------------------------------------
    def substitute_signal(self, name: str, replacement: "Clock") -> "Clock":
        """Replace the ``sig`` atom of *name* by *replacement* (used when a
        signal's clock gets resolved to an expression over other clocks)."""
        products = []
        for p in self.products:
            sig_atom = ClockAtom("sig", name)
            if sig_atom in p:
                rest = p - {sig_atom}
                if replacement.is_null:
                    continue
                for q in replacement.products:
                    products.append(q | rest)
            else:
                products.append(p)
        return Clock(products=_normalise_products(products))

    # -- display --------------------------------------------------------
    def __str__(self) -> str:
        if self.is_null:
            return "^0"
        parts = []
        for product in self.products:
            atoms = sorted(product, key=lambda a: (a.name, a.kind))
            # Hide the redundant ^b atom when [b] or [not b] is present.
            cond_names = {a.name for a in atoms if a.kind in ("true", "false")}
            shown = [a for a in atoms if not (a.kind == "sig" and a.name in cond_names)]
            parts.append(" ^* ".join(str(a) for a in shown) or "^1")
        return " ^+ ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Clock({self})"
