"""Determinism identification.

A polychronous specification is *deterministic* when every signal has, at
every instant, at most one defined value.  Non-determinism creeps in through:

* several **full definitions** of the same signal (always an error);
* several **partial definitions** (``::=``) whose clocks are not provably
  pairwise disjoint — this is exactly the situation of the paper's case
  study: "without correct priority properties specified on the transitions,
  the automaton [of thProducer] is found to be non-deterministic";
* shared variables written by several components at potentially overlapping
  access clocks.

The check is performed syntactically with the clock algebra of
:mod:`repro.sig.clocks`: two partial definitions are accepted when their
clocks normalise to provably disjoint clock expressions (for instance
``x when b`` and ``y when not b``), and reported otherwise.  The analysis is
therefore conservative (sound for rejection): every reported issue is a
definition pair the clock calculus could not separate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..clock_calculus import ClockCalculus
from ..clocks import Clock
from ..process import Equation, ProcessModel


@dataclass
class DeterminismIssue:
    """One potential source of non-determinism."""

    signal: str
    kind: str  # "multiple-full-definitions" | "overlapping-partial-definitions"
    definitions: Tuple[str, ...]
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.signal}: {self.detail}"


@dataclass
class DeterminismReport:
    """Outcome of the determinism identification on one process."""

    process_name: str
    issues: List[DeterminismIssue] = field(default_factory=list)
    checked_signals: int = 0

    @property
    def deterministic(self) -> bool:
        return not self.issues

    def issues_for(self, signal: str) -> List[DeterminismIssue]:
        return [issue for issue in self.issues if issue.signal == signal]

    def summary(self) -> str:
        status = "deterministic" if self.deterministic else "NON-DETERMINISTIC"
        lines = [f"Determinism report for {self.process_name}: {status} "
                 f"({self.checked_signals} defined signals checked)"]
        for issue in self.issues:
            lines.append(f"  - {issue}")
        return "\n".join(lines)


def _definition_clock(calculus: ClockCalculus, equation: Equation) -> Optional[Clock]:
    return calculus.expression_clock(equation.expr)


def check_determinism(process: ProcessModel) -> DeterminismReport:
    """Identify potential non-determinism in *process* (flattened first)."""
    if process.instances or process.submodels:
        process = process.flatten()
    calculus = ClockCalculus(process)
    report = DeterminismReport(process_name=process.name)

    by_target = {}
    for eq in process.equations:
        by_target.setdefault(eq.target, []).append(eq)
    report.checked_signals = len(by_target)

    for target, equations in sorted(by_target.items()):
        full = [eq for eq in equations if not eq.partial]
        partial = [eq for eq in equations if eq.partial]

        if len(full) > 1:
            report.issues.append(
                DeterminismIssue(
                    signal=target,
                    kind="multiple-full-definitions",
                    definitions=tuple(str(eq) for eq in full),
                    detail=f"{len(full)} full definitions of the same signal",
                )
            )
        if full and partial:
            report.issues.append(
                DeterminismIssue(
                    signal=target,
                    kind="mixed-full-and-partial-definitions",
                    definitions=tuple(str(eq) for eq in equations),
                    detail="signal has both a full definition and partial definitions",
                )
            )

        # Pairwise disjointness of partial definitions.
        for i, eq_a in enumerate(partial):
            clock_a = _definition_clock(calculus, eq_a)
            for eq_b in partial[i + 1:]:
                clock_b = _definition_clock(calculus, eq_b)
                if clock_a is None or clock_b is None:
                    disjoint = False
                else:
                    disjoint = clock_a.disjoint_with(clock_b)
                if not disjoint:
                    label_a = eq_a.label or str(eq_a.expr)
                    label_b = eq_b.label or str(eq_b.expr)
                    report.issues.append(
                        DeterminismIssue(
                            signal=target,
                            kind="overlapping-partial-definitions",
                            definitions=(str(eq_a), str(eq_b)),
                            detail=(
                                f"partial definitions '{label_a}' and '{label_b}' have clocks "
                                f"{clock_a} and {clock_b} that are not provably disjoint"
                            ),
                        )
                    )
    return report
