"""Deadlock (instantaneous causality cycle) detection.

A polychronous program deadlocks when, at some instant, a set of signals each
need another member of the set *at the same instant* to compute their value —
an instantaneous dependency cycle.  Delays break such cycles (their value only
depends on past instants), so a program is deadlock-free when the conditional
dependency graph restricted to same-instant value dependencies is acyclic.

The static analysis reported here is the conservative graph-based check used
by Polychrony's compilation; cycles whose guards are actually exclusive are
reported as *potential* deadlocks, mirroring the tool's behaviour of asking
the designer to refine the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..process import ProcessModel
from ..scheduler_graph import DependencyGraph, build_dependency_graph


@dataclass
class DeadlockReport:
    """Outcome of the deadlock analysis on one process."""

    process_name: str
    cycles: List[List[str]] = field(default_factory=list)
    graph: DependencyGraph = None

    @property
    def deadlock_free(self) -> bool:
        return not self.cycles

    def summary(self) -> str:
        status = "deadlock-free" if self.deadlock_free else "POTENTIAL DEADLOCK"
        lines = [f"Deadlock report for {self.process_name}: {status}"]
        for cycle in self.cycles:
            lines.append("  - cycle: " + " -> ".join(cycle + cycle[:1]))
        return "\n".join(lines)


def detect_deadlocks(process: ProcessModel, include_clock_edges: bool = False) -> DeadlockReport:
    """Detect instantaneous dependency cycles in *process*.

    ``include_clock_edges`` additionally treats presence-only dependencies as
    blocking, which is stricter than necessary but can be useful to understand
    why the clock calculus could not order the computations.
    """
    graph = build_dependency_graph(process, include_clock_edges=include_clock_edges)
    cycles = graph.cycles()
    return DeadlockReport(process_name=graph.process_name, cycles=cycles, graph=graph)
