"""Clock hierarchy and synchronisation reporting.

This module packages the raw result of the clock calculus into the kind of
report Polychrony presents after compilation: the number of clocks, the
hierarchy (which clock is a down-sampling of which), whether the process is
endochronous (has a fastest/master simulation clock — "Polychrony
automatically synthesizes the fastest simulation clock", Section III), and
which synchronisation constraints remain unproven.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..clock_calculus import ClockCalculusResult, run_clock_calculus
from ..process import ProcessModel


@dataclass
class ClockReport:
    """Digest of a clock-calculus run."""

    process_name: str
    clock_count: int
    signal_count: int
    roots: List[str]
    endochronous: bool
    master_clock: Optional[str]
    null_clock_signals: List[str]
    unresolved_constraints: List[str]
    hierarchy_depth: int
    classes: List[Tuple[str, Tuple[str, ...]]] = field(default_factory=list)

    def summary(self) -> str:
        lines = [
            f"Clock report for {self.process_name}",
            f"  signals                : {self.signal_count}",
            f"  synchronisation classes: {self.clock_count}",
            f"  hierarchy roots        : {', '.join(self.roots) or '(none)'}",
            f"  master clock           : {self.master_clock or '(multiple roots)'}",
            f"  endochronous           : {'yes' if self.endochronous else 'no'}",
            f"  hierarchy depth        : {self.hierarchy_depth}",
        ]
        if self.null_clock_signals:
            lines.append(f"  null clocks            : {', '.join(self.null_clock_signals)}")
        if self.unresolved_constraints:
            lines.append("  unresolved constraints :")
            lines.extend(f"    - {c}" for c in self.unresolved_constraints)
        return "\n".join(lines)


def build_clock_report(
    process: ProcessModel,
    result: Optional[ClockCalculusResult] = None,
) -> ClockReport:
    """Run the clock calculus (unless a result is supplied) and digest it."""
    flat = process.flatten() if (process.instances or process.submodels) else process
    if result is None:
        result = run_clock_calculus(flat, flatten=False)
    depth = max((node.depth for node in result.hierarchy), default=0)
    return ClockReport(
        process_name=result.process_name,
        clock_count=result.clock_count(),
        signal_count=flat.signal_count(),
        roots=list(result.roots),
        endochronous=result.endochronous,
        master_clock=result.master_clock(),
        null_clock_signals=list(result.null_clock_signals),
        unresolved_constraints=list(result.unresolved_constraints),
        hierarchy_depth=depth,
        classes=[(cls.representative, tuple(sorted(cls.members))) for cls in result.classes],
    )
