"""Static analyses over polychronous processes.

The paper lists the analyses enabled by the polychronous semantics
(Section I): determinism identification, deadlock detection, clock-relation
analysis and synchronizability checks.  Each analysis lives in its own module:

* :mod:`repro.sig.analysis.determinism` — non-determinism identification
  (overlapping partial definitions, unguarded concurrent writes);
* :mod:`repro.sig.analysis.deadlock` — instantaneous-cycle (deadlock)
  detection on the conditional dependency graph;
* :mod:`repro.sig.analysis.clocks_report` — clock hierarchy and
  synchronisation report built on top of the clock calculus.
"""

from .determinism import DeterminismIssue, DeterminismReport, check_determinism
from .deadlock import DeadlockReport, detect_deadlocks
from .clocks_report import ClockReport, build_clock_report

__all__ = [
    "DeterminismIssue",
    "DeterminismReport",
    "check_determinism",
    "DeadlockReport",
    "detect_deadlocks",
    "ClockReport",
    "build_clock_report",
]
