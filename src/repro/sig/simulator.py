"""Reference simulator for polychronous processes.

The simulator executes a (flattened) :class:`~repro.sig.process.ProcessModel`
instant by instant on a chosen *simulation clock*: at each instant, the
presence and value of every signal is resolved by propagating the equations
until a fixed point, then the delay/cell memories are advanced.

This is the executable counterpart of the paper's "code generation +
simulation in Polychrony": instead of generating C, the model is interpreted,
which is enough to reproduce the case-study simulations, the VCD traces and
the profiling measurements.

Detected at run time (and also statically, see :mod:`repro.sig.analysis`):

* **clock errors** — a stepwise function applied to operands that are not all
  present at an instant;
* **instantaneous dependency cycles** — the fixed point does not resolve all
  signals (deadlock);
* **non-determinism** — two partial definitions of the same signal present at
  the same instant with different values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .expressions import (
    Cell,
    ClockDifference,
    ClockIntersection,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Expression,
    FunctionApp,
    SignalRef,
    Var,
    When,
    WhenClock,
    apply_stepwise,
)
from .process import Direction, Equation, ProcessModel
from .scenario import Sampler, Scenario
from .values import ABSENT, Flow, is_absent, is_present


class SimulationError(Exception):
    """Base class of simulation failures."""


class ClockViolation(SimulationError):
    """A stepwise function saw operands with different presence at one instant."""


class InstantaneousCycle(SimulationError):
    """The equations could not be resolved at an instant (deadlock)."""

    def __init__(self, instant: int, unresolved: Sequence[str]) -> None:
        self.instant = instant
        self.unresolved = list(unresolved)
        super().__init__(
            f"instantaneous dependency cycle at instant {instant}: "
            + ", ".join(sorted(self.unresolved))
        )

    def __reduce__(self):
        # The default exception reduction replays ``args`` (the formatted
        # message) into ``__init__``, which takes two arguments; reconstruct
        # from the structured fields instead so the error survives pickling
        # across multiprocessing workers.
        return (InstantaneousCycle, (self.instant, self.unresolved))


class NonDeterministicDefinition(SimulationError):
    """Two overlapping partial definitions produced different values."""


# Evaluation statuses.
_UNKNOWN = "unknown"
_ABSENT = "absent"
_PRESENT = "present"
_CONST = "const"
# Presence known (through a clock constraint) but value not yet computed.
# This is what lets self-referential state patterns such as
# ``count := zcount + delta`` with ``zcount := count $ 1`` and ``count ^= tick``
# execute: the delay only needs the *presence* of its operand to yield the
# buffered previous value.
_PRESUMED = "presumed"


@dataclass
class SimulationTrace:
    """Recorded flows of a simulation run."""

    process_name: str
    length: int
    flows: Dict[str, Flow]
    warnings: List[str] = field(default_factory=list)

    def flow(self, name: str) -> Flow:
        return self.flows[name]

    def value_at(self, name: str, instant: int) -> Any:
        return self.flows[name][instant]

    def present_values(self, name: str) -> List[Any]:
        return self.flows[name].present_values()

    def clock_of(self, name: str) -> List[int]:
        return self.flows[name].clock

    def count_present(self, name: str) -> int:
        return self.flows[name].count_present()

    def signals(self) -> List[str]:
        return sorted(self.flows)

    def __len__(self) -> int:
        return self.length


class Simulator:
    """Fixed-point interpreter of a polychronous process."""

    def __init__(self, process: ProcessModel, strict: bool = True) -> None:
        if process.instances or process.submodels:
            process = process.flatten()
        self.process = process
        self.strict = strict
        self._equations: List[Tuple[Equation, str]] = []
        for index, eq in enumerate(process.equations):
            self._equations.append((eq, f"eq{index}"))
        self._defined: Dict[str, List[Tuple[Equation, str]]] = {}
        for eq, key in self._equations:
            self._defined.setdefault(eq.target, []).append((eq, key))
        self._sync_groups = self._build_sync_groups(process)
        self._state: Dict[str, List[Any]] = {}
        self._var_memory: Dict[str, Any] = {}

    @staticmethod
    def _build_sync_groups(process: ProcessModel) -> List[List[str]]:
        """Groups of signals declared synchronous through ``^=`` constraints."""
        from .process import ConstraintKind

        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for constraint in process.constraints:
            if constraint.kind is not ConstraintKind.SYNCHRONOUS:
                continue
            names = [op.name for op in constraint.operands if isinstance(op, (SignalRef, Var))]
            for a, b in zip(names, names[1:]):
                union(a, b)
        groups: Dict[str, List[str]] = {}
        for name in parent:
            groups.setdefault(find(name), []).append(name)
        return [members for members in groups.values() if len(members) > 1]

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all delay/cell/shared-variable memories."""
        self._state.clear()
        self._var_memory.clear()

    def run(
        self,
        scenario: Scenario,
        record: Optional[Iterable[str]] = None,
        sinks: Optional[Sequence[Any]] = None,
        length: Optional[int] = None,
    ) -> Optional[SimulationTrace]:
        """Run the process over *scenario* and record the requested signals.

        When *record* is ``None``, every declared signal is recorded.

        With *sinks* (see :mod:`repro.sig.sinks`) each resolved instant is
        pushed to every sink and then discarded — memory stays O(signals)
        instead of O(signals × instants) — and the method returns ``None``;
        include a :class:`~repro.sig.sinks.MaterializeSink` to also keep the
        full trace.  Any non-``None`` *sinks* selects the streaming mode:
        an *empty* list runs the scenario for its effects (errors, warnings)
        without retaining anything.

        *length* overrides the scenario's default horizon (and is required
        when the scenario is unbounded, see
        :meth:`repro.sig.scenario.Scenario.run_length`).
        """
        self.reset()
        length = scenario.run_length(length)
        recorded = list(record) if record is not None else list(self.process.signals)
        warnings: List[str] = []
        # Precompile one sampling closure per driven signal: the symbolic
        # rules are evaluated lazily, O(1) memory per signal whatever the
        # horizon.
        samplers = {name: rule.sampler() for name, rule in scenario.inputs.items()}
        # Imported lazily: the engine package imports this module.
        from .engine.supervisor import current_guard

        guard = current_guard()
        guard_check = guard.check if guard is not None else None

        if sinks is not None:
            # Imported lazily: repro.sig.sinks imports this module.
            from .sinks import TraceHeader, as_sink_list, close_sinks

            sink_list = as_sink_list(sinks)
            try:
                # on_header sits inside the guarded region: a sink raising
                # here must not leave earlier sinks' file handles open.
                header = TraceHeader(
                    process_name=self.process.name,
                    length=length,
                    signals=tuple(recorded),
                    types={name: decl.type for name, decl in self.process.signals.items()},
                    warnings=warnings,
                )
                for sink in sink_list:
                    sink.on_header(header)
                for instant in range(length):
                    if guard_check is not None:
                        guard_check(instant)
                    env = self._step(instant, samplers, warnings)
                    if sink_list:
                        values = tuple(env.get(name, ABSENT) for name in recorded)
                        statuses = tuple(value is not ABSENT for value in values)
                        for sink in sink_list:
                            sink.on_instant(instant, statuses, values)
            finally:
                close_sinks(sink_list)
            return None

        flows = {name: Flow(name) for name in recorded}
        for instant in range(length):
            if guard_check is not None:
                guard_check(instant)
            env = self._step(instant, samplers, warnings)
            for name in recorded:
                flows[name].append(env.get(name, ABSENT))

        return SimulationTrace(
            process_name=self.process.name,
            length=length,
            flows=flows,
            warnings=warnings,
        )

    # ------------------------------------------------------------------
    # one instant
    # ------------------------------------------------------------------
    def _step(
        self, instant: int, samplers: Mapping[str, Sampler], warnings: List[str]
    ) -> Dict[str, Any]:
        status: Dict[str, str] = {}
        values: Dict[str, Any] = {}

        for name, decl in self.process.signals.items():
            if decl.direction is Direction.INPUT:
                sample = samplers.get(name)
                value = sample(instant) if sample is not None else ABSENT
                status[name] = _ABSENT if is_absent(value) else _PRESENT
                values[name] = value
            elif name not in self._defined:
                # Undefined, non-input signal: it never occurs.
                status[name] = _ABSENT
                values[name] = ABSENT
            else:
                status[name] = _UNKNOWN
                values[name] = ABSENT

        # Input programs may mention signals that were not declared.
        for name, sample in samplers.items():
            if name not in status:
                value = sample(instant)
                status[name] = _ABSENT if is_absent(value) else _PRESENT
                values[name] = value

        progress = True
        while progress:
            progress = False
            for target, definitions in self._defined.items():
                if status.get(target) in (_PRESENT, _ABSENT):
                    continue
                resolved, value = self._resolve_target(target, definitions, status, values, instant, warnings)
                if resolved:
                    status[target] = _ABSENT if is_absent(value) else _PRESENT
                    values[target] = value
                    progress = True
            if self._propagate_sync(status, instant, warnings):
                progress = True

        unresolved = [name for name, st in status.items() if st in (_UNKNOWN, _PRESUMED)]
        if unresolved:
            raise InstantaneousCycle(instant, unresolved)

        # Commit memories (delays, cells, shared variables).
        for eq, key in self._equations:
            self._update_state(eq.expr, key, status, values)
        for name, value in values.items():
            if is_present(value):
                self._var_memory[name] = value

        return values

    def _propagate_sync(self, status: Dict[str, str], instant: int, warnings: List[str]) -> bool:
        """Propagate presence/absence across declared ``^=`` groups.

        Returns ``True`` when at least one signal status was refined.
        """
        changed = False
        for group in self._sync_groups:
            statuses = {status.get(name, _ABSENT) for name in group}
            has_present = _PRESENT in statuses or _PRESUMED in statuses
            has_absent = _ABSENT in statuses
            if has_present and has_absent:
                message = (
                    f"clock constraint violation at instant {instant}: signals "
                    f"{', '.join(sorted(group))} are declared synchronous but disagree"
                )
                if self.strict:
                    raise ClockViolation(message)
                warnings.append(message)
                continue
            if has_present:
                for name in group:
                    if status.get(name) == _UNKNOWN:
                        status[name] = _PRESUMED
                        changed = True
            elif has_absent:
                for name in group:
                    if status.get(name) == _UNKNOWN:
                        status[name] = _ABSENT
                        changed = True
        return changed

    def _resolve_target(
        self,
        target: str,
        definitions: List[Tuple[Equation, str]],
        status: Dict[str, str],
        values: Dict[str, Any],
        instant: int,
        warnings: List[str],
    ) -> Tuple[bool, Any]:
        """Try to resolve *target* from its (possibly partial) definitions."""
        results: List[Tuple[str, Any, Equation]] = []
        for eq, key in definitions:
            st, value = self._eval(eq.expr, key, status, values, instant, warnings)
            if st in (_UNKNOWN, _PRESUMED):
                return False, ABSENT
            results.append((st, value, eq))

        present = [(value, eq) for st, value, eq in results if st == _PRESENT]
        consts = [(value, eq) for st, value, eq in results if st == _CONST]
        if not present:
            if consts and len(definitions) == 1:
                # A lone constant definition has no clock of its own; it is
                # absent unless constrained elsewhere — report it once.
                warnings.append(
                    f"signal {target!r} defined by a bare constant has no clock; treated as absent"
                )
            return True, ABSENT
        distinct = {repr(v) for v, _ in present}
        if len(distinct) > 1:
            message = (
                f"non-deterministic definition of {target!r} at instant {instant}: "
                + ", ".join(sorted(distinct))
            )
            if self.strict:
                raise NonDeterministicDefinition(message)
            warnings.append(message)
        return True, present[0][0]

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------
    def _eval(
        self,
        expr: Expression,
        path: str,
        status: Dict[str, str],
        values: Dict[str, Any],
        instant: int,
        warnings: List[str],
    ) -> Tuple[str, Any]:
        if isinstance(expr, SignalRef):
            st = status.get(expr.name, _ABSENT)
            if st in (_UNKNOWN, _PRESUMED):
                return st, ABSENT
            if st == _ABSENT:
                return _ABSENT, ABSENT
            return _PRESENT, values[expr.name]

        if isinstance(expr, Var):
            st = status.get(expr.name, _ABSENT)
            if st in (_UNKNOWN, _PRESUMED):
                return st, ABSENT
            if st == _PRESENT:
                return _PRESENT, values[expr.name]
            # Shared variable read: last written value (absent before the first write).
            if expr.name in self._var_memory:
                return _CONST, self._var_memory[expr.name]
            return _ABSENT, ABSENT

        if isinstance(expr, Const):
            return _CONST, expr.value

        if isinstance(expr, FunctionApp):
            sub = [
                self._eval(arg, f"{path}.{i}", status, values, instant, warnings)
                for i, arg in enumerate(expr.args)
            ]
            if any(st in (_UNKNOWN, _PRESUMED) for st, _ in sub):
                return _UNKNOWN, ABSENT
            statuses = {st for st, _ in sub}
            if _PRESENT in statuses and _ABSENT in statuses:
                message = (
                    f"clock violation at instant {instant}: operator {expr.op!r} "
                    "applied to operands that are not all present"
                )
                if self.strict:
                    raise ClockViolation(message)
                warnings.append(message)
                return _ABSENT, ABSENT
            if _PRESENT in statuses:
                return _PRESENT, apply_stepwise(expr.op, [v for _, v in sub])
            if statuses <= {_CONST}:
                return _CONST, apply_stepwise(expr.op, [v for _, v in sub])
            return _ABSENT, ABSENT

        if isinstance(expr, Delay):
            st, value = self._eval(expr.operand, f"{path}.d", status, values, instant, warnings)
            if st == _UNKNOWN:
                return _UNKNOWN, ABSENT
            if st in (_ABSENT, _CONST):
                return (_ABSENT, ABSENT) if st == _ABSENT else (_CONST, expr.init)
            # Present (or presumed present through a clock constraint): the
            # delay only needs the *presence* of its operand at this instant.
            buffer = self._state.get(path)
            if buffer is None:
                init = expr.init
                buffer = [init] * max(1, expr.depth)
                self._state[path] = buffer
            return _PRESENT, buffer[0]

        if isinstance(expr, When):
            cond_st, cond_val = self._eval(expr.condition, f"{path}.c", status, values, instant, warnings)
            if cond_st in (_UNKNOWN, _PRESUMED):
                return _UNKNOWN, ABSENT
            if cond_st == _ABSENT or (cond_st in (_PRESENT, _CONST) and not bool(cond_val)):
                return _ABSENT, ABSENT
            op_st, op_val = self._eval(expr.operand, f"{path}.w", status, values, instant, warnings)
            if op_st in (_UNKNOWN, _PRESUMED):
                return op_st, ABSENT
            if op_st == _ABSENT:
                return _ABSENT, ABSENT
            if op_st == _CONST:
                return _PRESENT, op_val
            return _PRESENT, op_val

        if isinstance(expr, WhenClock):
            cond_st, cond_val = self._eval(expr.condition, f"{path}.c", status, values, instant, warnings)
            if cond_st in (_UNKNOWN, _PRESUMED):
                return _UNKNOWN, ABSENT
            if cond_st in (_PRESENT, _CONST) and bool(cond_val):
                return _PRESENT, True
            return _ABSENT, ABSENT

        if isinstance(expr, Default):
            left_st, left_val = self._eval(expr.left, f"{path}.l", status, values, instant, warnings)
            if left_st == _UNKNOWN:
                return _UNKNOWN, ABSENT
            if left_st == _PRESENT:
                return _PRESENT, left_val
            if left_st == _PRESUMED:
                return _PRESUMED, ABSENT
            right_st, right_val = self._eval(expr.right, f"{path}.r", status, values, instant, warnings)
            if left_st == _CONST:
                # A constant left branch adapts to the clock of the right one.
                if right_st == _UNKNOWN:
                    return _UNKNOWN, ABSENT
                if right_st in (_PRESENT, _CONST):
                    return right_st, left_val
                if right_st == _PRESUMED:
                    return _PRESUMED, ABSENT
                return _CONST, left_val
            return right_st, right_val

        if isinstance(expr, Cell):
            op_st, op_val = self._eval(expr.operand, f"{path}.x", status, values, instant, warnings)
            cond_st, cond_val = self._eval(expr.condition, f"{path}.b", status, values, instant, warnings)
            if op_st == _UNKNOWN or cond_st in (_UNKNOWN, _PRESUMED):
                return _UNKNOWN, ABSENT
            if op_st == _PRESUMED:
                return _PRESUMED, ABSENT
            memory_key = f"{path}.cellmem"
            stored = self._state.get(memory_key, [expr.init])
            if op_st == _PRESENT:
                return _PRESENT, op_val
            if cond_st in (_PRESENT, _CONST) and bool(cond_val):
                return _PRESENT, stored[0]
            return _ABSENT, ABSENT

        if isinstance(expr, ClockOf):
            st, _ = self._eval(expr.operand, f"{path}.k", status, values, instant, warnings)
            if st == _UNKNOWN:
                return _UNKNOWN, ABSENT
            return (_PRESENT, True) if st in (_PRESENT, _PRESUMED) else (_ABSENT, ABSENT)

        if isinstance(expr, ClockUnion):
            l_st, _ = self._eval(expr.left, f"{path}.l", status, values, instant, warnings)
            r_st, _ = self._eval(expr.right, f"{path}.r", status, values, instant, warnings)
            if l_st in (_PRESENT, _PRESUMED) or r_st in (_PRESENT, _PRESUMED):
                return _PRESENT, True
            if _UNKNOWN in (l_st, r_st):
                return _UNKNOWN, ABSENT
            return _ABSENT, ABSENT

        if isinstance(expr, ClockIntersection):
            l_st, _ = self._eval(expr.left, f"{path}.l", status, values, instant, warnings)
            r_st, _ = self._eval(expr.right, f"{path}.r", status, values, instant, warnings)
            if l_st == _ABSENT or r_st == _ABSENT:
                return _ABSENT, ABSENT
            if _UNKNOWN in (l_st, r_st):
                return _UNKNOWN, ABSENT
            if l_st in (_PRESENT, _PRESUMED) and r_st in (_PRESENT, _PRESUMED):
                return _PRESENT, True
            return _ABSENT, ABSENT

        if isinstance(expr, ClockDifference):
            l_st, _ = self._eval(expr.left, f"{path}.l", status, values, instant, warnings)
            r_st, _ = self._eval(expr.right, f"{path}.r", status, values, instant, warnings)
            if l_st == _ABSENT:
                return _ABSENT, ABSENT
            if _UNKNOWN in (l_st, r_st):
                return _UNKNOWN, ABSENT
            if l_st in (_PRESENT, _PRESUMED) and r_st not in (_PRESENT, _PRESUMED):
                return _PRESENT, True
            return _ABSENT, ABSENT

        raise TypeError(f"cannot evaluate expression of type {type(expr).__name__}")

    # ------------------------------------------------------------------
    # state update (after the instant has been fully resolved)
    # ------------------------------------------------------------------
    def _update_state(
        self,
        expr: Expression,
        path: str,
        status: Dict[str, str],
        values: Dict[str, Any],
    ) -> None:
        if isinstance(expr, Delay):
            # Read the operand's value with the *old* state before recursing
            # into nested memories, so that chained delays shift correctly.
            st, value = self._final_value(expr.operand, f"{path}.d", status, values)
            self._update_state(expr.operand, f"{path}.d", status, values)
            if st == _PRESENT:
                buffer = self._state.get(path)
                if buffer is None:
                    buffer = [expr.init] * max(1, expr.depth)
                buffer = buffer[1:] + [value] if expr.depth > 1 else [value]
                self._state[path] = buffer
            return
        if isinstance(expr, Cell):
            st, value = self._final_value(expr.operand, f"{path}.x", status, values)
            self._update_state(expr.operand, f"{path}.x", status, values)
            self._update_state(expr.condition, f"{path}.b", status, values)
            if st == _PRESENT:
                self._state[f"{path}.cellmem"] = [value]
            return
        if isinstance(expr, FunctionApp):
            for i, arg in enumerate(expr.args):
                self._update_state(arg, f"{path}.{i}", status, values)
        elif isinstance(expr, When):
            self._update_state(expr.operand, f"{path}.w", status, values)
            self._update_state(expr.condition, f"{path}.c", status, values)
        elif isinstance(expr, WhenClock):
            self._update_state(expr.condition, f"{path}.c", status, values)
        elif isinstance(expr, Default):
            self._update_state(expr.left, f"{path}.l", status, values)
            self._update_state(expr.right, f"{path}.r", status, values)
        elif isinstance(expr, ClockOf):
            self._update_state(expr.operand, f"{path}.k", status, values)
        elif isinstance(expr, (ClockUnion, ClockIntersection, ClockDifference)):
            self._update_state(expr.left, f"{path}.l", status, values)
            self._update_state(expr.right, f"{path}.r", status, values)

    def _final_value(
        self,
        expr: Expression,
        path: str,
        status: Dict[str, str],
        values: Dict[str, Any],
    ) -> Tuple[str, Any]:
        """Re-evaluate an already-resolved sub-expression (no unknowns remain)."""
        return self._eval(expr, path, status, values, -1, [])


def simulate(
    process: ProcessModel,
    scenario: Scenario,
    record: Optional[Iterable[str]] = None,
    strict: bool = True,
    sinks: Optional[Sequence[Any]] = None,
    length: Optional[int] = None,
) -> Optional[SimulationTrace]:
    """One-shot helper: build a :class:`Simulator` and run *scenario*.

    With *sinks*, the run streams into them and returns ``None``; *length*
    overrides the scenario's default horizon (see :meth:`Simulator.run`).
    """
    return Simulator(process, strict=strict).run(
        scenario, record=record, sinks=sinks, length=length
    )
