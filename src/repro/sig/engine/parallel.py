"""Process-parallel sharded batch execution.

An :class:`~repro.sig.engine.plan.ExecutionPlan` is immutable once compiled
and every scenario of a batch starts from a fresh initial state, so a
many-scenario sweep is embarrassingly parallel: this module fans the
scenarios of one prepared backend out over a pool of worker processes.

Sharding strategy:

* **fork inheritance where available** — on platforms with the ``fork``
  start method the workers inherit the prepared backend (compiled plan
  included) directly from the parent's address space: nothing is pickled
  and nothing is recompiled;
* **plan pickling otherwise** — with ``spawn``/``forkserver`` the backend is
  pickled to each worker once, at pool start-up; an
  :class:`~repro.sig.engine.plan.ExecutionPlan` pickles as its process model
  and recompiles itself on arrival (see ``ExecutionPlan.__getstate__``), and
  the vectorized backend ships the same way — its numpy block kernels are
  rebuilt per worker (or fork-inherited for free);
* **chunked scheduling with worker reuse** — scenarios are dealt out in
  contiguous chunks (several per worker, so stragglers rebalance) through
  one pool that lives for the whole batch;
* **ordered reassembly** — chunk results come back in submission order, so
  traces and collected errors keep the exact scenario indices and ordering
  of a sequential run.

Error semantics mirror the sequential loop of
:func:`~repro.sig.engine.batch.simulate_batch` bit for bit: with
``collect_errors`` every failing scenario contributes ``None`` plus an
``(index, error)`` entry in ascending index order; without it the error of
the *earliest* failing scenario is raised (later scenarios may have run in
other workers, but their results are discarded exactly as a sequential run
would never have produced them).

Streaming batches (``sink_factory``) shard the same way: each worker builds
the scenario's sinks locally with the pickled factory, streams the run into
them with O(signals) memory, and ships only ``sink.result()`` back — so a
128-scenario million-instant sweep never materialises a single flow, in any
process.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..scenario import Scenario
from ..simulator import SimulationError, SimulationTrace
from ..sinks import SinkFactory

#: Per-worker prepared backend, record list, error mode, sink factory and
#: horizon override, installed by the pool initializer (inherited on fork,
#: unpickled once on spawn).
_WORKER_RUNNER: Any = None
_WORKER_RECORD: Optional[List[str]] = None
_WORKER_COLLECT_ERRORS: bool = False
_WORKER_SINK_FACTORY: Optional[SinkFactory] = None
_WORKER_LENGTH: Optional[int] = None


def _init_worker(
    runner: Any,
    record: Optional[List[str]],
    collect_errors: bool,
    sink_factory: Optional[SinkFactory],
    length: Optional[int] = None,
) -> None:
    """Install the per-worker state (pool initializer)."""
    global _WORKER_RUNNER, _WORKER_RECORD, _WORKER_COLLECT_ERRORS
    global _WORKER_SINK_FACTORY, _WORKER_LENGTH
    _WORKER_RUNNER = runner
    _WORKER_RECORD = record
    _WORKER_COLLECT_ERRORS = collect_errors
    _WORKER_SINK_FACTORY = sink_factory
    _WORKER_LENGTH = length


def _run_one(index: int, scenario: Scenario) -> Any:
    """Run one scenario in a worker: a trace, or the sink payload."""
    if _WORKER_SINK_FACTORY is not None:
        from .backends import run_scenario_into_sinks

        return run_scenario_into_sinks(
            _WORKER_RUNNER,
            scenario,
            _WORKER_RECORD,
            _WORKER_SINK_FACTORY,
            index,
            _WORKER_LENGTH,
        )
    return _WORKER_RUNNER.run(scenario, record=_WORKER_RECORD, length=_WORKER_LENGTH)


def _run_chunk(
    chunk: Sequence[Tuple[int, Scenario]]
) -> List[Tuple[int, Any, Optional[SimulationError]]]:
    """Run one chunk of (index, scenario) pairs in a worker process.

    Without ``collect_errors`` the first failure propagates immediately —
    the rest of the chunk would be thrown away by the fail-fast parent
    anyway, so it is never simulated.
    """
    out: List[Tuple[int, Any, Optional[SimulationError]]] = []
    for index, scenario in chunk:
        if _WORKER_COLLECT_ERRORS:
            try:
                out.append((index, _run_one(index, scenario), None))
            except SimulationError as error:
                out.append((index, None, error))
        else:
            out.append((index, _run_one(index, scenario), None))
    return out


def default_worker_count() -> int:
    """Worker count used for ``workers=0``: one per *available* core.

    Respects the CPU affinity mask (``os.sched_getaffinity``) where the
    platform has one, so containerized/cgroup-restricted environments get
    the cores they may actually run on instead of the machine's raw
    ``cpu_count()`` — oversubscribing a 2-core CI container with 64
    workers is strictly slower.
    """
    try:
        affinity = os.sched_getaffinity(0)
    except (AttributeError, OSError):  # non-Linux, or exotic scheduler
        return os.cpu_count() or 1
    return len(affinity) or os.cpu_count() or 1


def _pool_context() -> multiprocessing.context.BaseContext:
    # Prefer fork only where it is the platform default anyway (Linux):
    # macOS advertises "fork" but made spawn the default because forking a
    # process with Objective-C/threading state is unsafe.  Elsewhere the
    # platform default (spawn) is used and the backend travels by pickling.
    if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _shutdown_pool(pool: Any) -> None:
    """Tear a pool down without wedging on a misbehaving worker.

    ``Pool.__exit__`` only calls ``terminate()``, but the subsequent
    implicit ``join`` during garbage collection (and an explicit ``join``
    after a clean ``close()``) can hang on a worker that ignores SIGTERM —
    e.g. one wedged in an uninterruptible user operation.  Terminate, then
    bound the join by running it in a daemon thread and abandoning it
    after a grace period; any straggler is killed hard.
    """
    import threading

    try:
        pool.terminate()
    except Exception:
        pass
    joiner = threading.Thread(target=pool.join, daemon=True)
    joiner.start()
    joiner.join(5.0)
    if joiner.is_alive():
        # join() is wedged on a SIGTERM-ignoring worker: escalate.
        for process in getattr(pool, "_pool", []) or []:
            try:
                process.kill()
            except (OSError, ValueError, AttributeError):
                pass
        joiner.join(5.0)


def run_batch_parallel(
    runner: Any,
    scenarios: Sequence[Scenario],
    record: Optional[Iterable[str]] = None,
    workers: int = 0,
    collect_errors: bool = False,
    chunk_size: Optional[int] = None,
    sink_factory: Optional[SinkFactory] = None,
    length: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff: Optional[float] = None,
    max_failures: Optional[int] = None,
    scenario_budget: Any = None,
    fault_plan: Any = None,
) -> Tuple[
    List[Optional[SimulationTrace]],
    List[Tuple[int, SimulationError]],
    List[Any],
    List[Any],
]:
    """Run *scenarios* through *runner* on a pool of worker processes.

    *runner* is a prepared :class:`~repro.sig.engine.backends.SimulationBackend`
    (its ``strict`` flag travels with it).  Returns ``(traces, errors,
    sink_results, faults)`` with the same contents, order and error
    behaviour as the sequential loop.

    Without *sink_factory*, ``traces`` holds the materialised traces and
    ``sink_results`` is empty.  With it, nothing is materialised: ``traces``
    holds ``None`` per scenario and ``sink_results`` holds what each
    scenario's factory-made sink(s) produced (``None`` for scenarios that
    failed under ``collect_errors``), merged back in scenario order.

    *length* overrides every scenario's horizon (required for unbounded
    symbolic scenarios); a symbolic scenario crosses the process boundary
    as its rule program — a few bytes however long the horizon.

    Setting any supervision knob — *timeout*, *retries*, *backoff*,
    *max_failures*, *scenario_budget* or *fault_plan* — routes the batch
    through the supervised executor
    (:func:`~repro.sig.engine.supervisor.run_batch_supervised`): per-task
    timeouts and budgets, crash detection, retry with exponential backoff
    and structured :class:`~repro.sig.engine.supervisor.ScenarioFault`
    reporting in the fourth returned list.  With none of them set the
    batch takes the plain pool fast path and ``faults`` is always empty.
    """
    supervised = any(
        knob is not None
        for knob in (timeout, retries, backoff, max_failures, scenario_budget, fault_plan)
    )
    if supervised:
        from .supervisor import DEFAULT_BACKOFF, run_batch_supervised

        return run_batch_supervised(
            runner,
            scenarios,
            record=record,
            workers=workers,
            collect_errors=collect_errors,
            chunk_size=chunk_size,
            sink_factory=sink_factory,
            length=length,
            timeout=timeout,
            retries=retries,
            backoff=backoff if backoff is not None else DEFAULT_BACKOFF,
            max_failures=max_failures,
            scenario_budget=scenario_budget,
            fault_plan=fault_plan,
        )

    record = list(record) if record is not None else None
    if workers <= 0:
        workers = default_worker_count()
    count = len(scenarios)
    workers = min(workers, count) or 1

    streaming = sink_factory is not None
    traces: List[Optional[SimulationTrace]] = []
    errors: List[Tuple[int, SimulationError]] = []
    sink_results: List[Any] = []

    def keep(payload: Any, failed: bool) -> None:
        """File one scenario outcome under the right list(s)."""
        if streaming:
            traces.append(None)
            sink_results.append(None if failed else payload)
        else:
            traces.append(None if failed else payload)

    if workers == 1 or count <= 1:
        from .backends import run_scenario_into_sinks

        def run_one(index: int, scenario: Scenario) -> Any:
            if streaming:
                return run_scenario_into_sinks(
                    runner, scenario, record, sink_factory, index, length
                )
            return runner.run(scenario, record=record, length=length)

        for index, scenario in enumerate(scenarios):
            if collect_errors:
                try:
                    keep(run_one(index, scenario), failed=False)
                except SimulationError as error:
                    keep(None, failed=True)
                    errors.append((index, error))
            else:
                keep(run_one(index, scenario), failed=False)
        return traces, errors, sink_results, []

    if chunk_size is None:
        # A few chunks per worker: large enough to amortise dispatch, small
        # enough that an uneven scenario does not serialise the tail.
        chunk_size = max(1, math.ceil(count / (workers * 4)))
    indexed = list(enumerate(scenarios))
    chunks = [indexed[start:start + chunk_size] for start in range(0, count, chunk_size)]

    ctx = _pool_context()
    pool = ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(runner, record, collect_errors, sink_factory, length),
    )
    try:
        # Without collect_errors a failing chunk raises out of imap at its
        # position in submission order; every earlier chunk completed without
        # failure, and workers run their chunk in index order, so the raised
        # error is exactly the earliest failing scenario a sequential run
        # would have hit.
        for chunk_result in pool.imap(_run_chunk, chunks):
            for index, payload, error in chunk_result:
                if error is None:
                    keep(payload, failed=False)
                else:
                    keep(None, failed=True)
                    errors.append((index, error))
    except BaseException:
        # KeyboardInterrupt/abort: never block on a wedged worker — the
        # bounded teardown lets streaming callers reach their sinks'
        # on_close() instead of hanging inside Pool.__exit__.
        _shutdown_pool(pool)
        raise
    else:
        pool.close()
        _shutdown_pool(pool)
    return traces, errors, sink_results, []


__all__ = [
    "default_worker_count",
    "run_batch_parallel",
]
