"""Process-parallel sharded batch execution.

An :class:`~repro.sig.engine.plan.ExecutionPlan` is immutable once compiled
and every scenario of a batch starts from a fresh initial state, so a
many-scenario sweep is embarrassingly parallel: this module fans the
scenarios of one prepared backend out over a pool of worker processes.

Sharding strategy:

* **fork inheritance where available** — on platforms with the ``fork``
  start method the workers inherit the prepared backend (compiled plan
  included) directly from the parent's address space: nothing is pickled
  and nothing is recompiled;
* **plan pickling otherwise** — with ``spawn``/``forkserver`` the backend is
  pickled to each worker once, at pool start-up; an
  :class:`~repro.sig.engine.plan.ExecutionPlan` pickles as its process model
  and recompiles itself on arrival (see ``ExecutionPlan.__getstate__``);
* **chunked scheduling with worker reuse** — scenarios are dealt out in
  contiguous chunks (several per worker, so stragglers rebalance) through
  one pool that lives for the whole batch;
* **ordered reassembly** — chunk results come back in submission order, so
  traces and collected errors keep the exact scenario indices and ordering
  of a sequential run.

Error semantics mirror the sequential loop of
:func:`~repro.sig.engine.batch.simulate_batch` bit for bit: with
``collect_errors`` every failing scenario contributes ``None`` plus an
``(index, error)`` entry in ascending index order; without it the error of
the *earliest* failing scenario is raised (later scenarios may have run in
other workers, but their results are discarded exactly as a sequential run
would never have produced them).
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..simulator import Scenario, SimulationError, SimulationTrace

#: Per-worker prepared backend, record list and error mode, installed by the
#: pool initializer (inherited on fork, unpickled once on spawn).
_WORKER_RUNNER: Any = None
_WORKER_RECORD: Optional[List[str]] = None
_WORKER_COLLECT_ERRORS: bool = False


def _init_worker(runner: Any, record: Optional[List[str]], collect_errors: bool) -> None:
    global _WORKER_RUNNER, _WORKER_RECORD, _WORKER_COLLECT_ERRORS
    _WORKER_RUNNER = runner
    _WORKER_RECORD = record
    _WORKER_COLLECT_ERRORS = collect_errors


def _run_chunk(
    chunk: Sequence[Tuple[int, Scenario]]
) -> List[Tuple[int, Optional[SimulationTrace], Optional[SimulationError]]]:
    """Run one chunk of (index, scenario) pairs in a worker process.

    Without ``collect_errors`` the first failure propagates immediately —
    the rest of the chunk would be thrown away by the fail-fast parent
    anyway, so it is never simulated.
    """
    out: List[Tuple[int, Optional[SimulationTrace], Optional[SimulationError]]] = []
    for index, scenario in chunk:
        if _WORKER_COLLECT_ERRORS:
            try:
                out.append((index, _WORKER_RUNNER.run(scenario, record=_WORKER_RECORD), None))
            except SimulationError as error:
                out.append((index, None, error))
        else:
            out.append((index, _WORKER_RUNNER.run(scenario, record=_WORKER_RECORD), None))
    return out


def default_worker_count() -> int:
    """Worker count used for ``workers=0``: one per available core."""
    return os.cpu_count() or 1


def _pool_context() -> multiprocessing.context.BaseContext:
    # Prefer fork only where it is the platform default anyway (Linux):
    # macOS advertises "fork" but made spawn the default because forking a
    # process with Objective-C/threading state is unsafe.  Elsewhere the
    # platform default (spawn) is used and the backend travels by pickling.
    if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_batch_parallel(
    runner: Any,
    scenarios: Sequence[Scenario],
    record: Optional[Iterable[str]] = None,
    workers: int = 0,
    collect_errors: bool = False,
    chunk_size: Optional[int] = None,
) -> Tuple[List[Optional[SimulationTrace]], List[Tuple[int, SimulationError]]]:
    """Run *scenarios* through *runner* on a pool of worker processes.

    *runner* is a prepared :class:`~repro.sig.engine.backends.SimulationBackend`
    (its ``strict`` flag travels with it).  Returns ``(traces, errors)`` with
    the same contents, order and error behaviour as the sequential loop.
    """
    record = list(record) if record is not None else None
    if workers <= 0:
        workers = default_worker_count()
    count = len(scenarios)
    workers = min(workers, count) or 1

    if workers == 1 or count <= 1:
        traces: List[Optional[SimulationTrace]] = []
        errors: List[Tuple[int, SimulationError]] = []
        for index, scenario in enumerate(scenarios):
            if collect_errors:
                try:
                    traces.append(runner.run(scenario, record=record))
                except SimulationError as error:
                    traces.append(None)
                    errors.append((index, error))
            else:
                traces.append(runner.run(scenario, record=record))
        return traces, errors

    if chunk_size is None:
        # A few chunks per worker: large enough to amortise dispatch, small
        # enough that an uneven scenario does not serialise the tail.
        chunk_size = max(1, math.ceil(count / (workers * 4)))
    indexed = list(enumerate(scenarios))
    chunks = [indexed[start:start + chunk_size] for start in range(0, count, chunk_size)]

    traces = []
    errors = []
    ctx = _pool_context()
    with ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(runner, record, collect_errors),
    ) as pool:
        # Without collect_errors a failing chunk raises out of imap at its
        # position in submission order; every earlier chunk completed without
        # failure, and workers run their chunk in index order, so the raised
        # error is exactly the earliest failing scenario a sequential run
        # would have hit.
        for chunk_result in pool.imap(_run_chunk, chunks):
            for index, trace, error in chunk_result:
                if error is None:
                    traces.append(trace)
                else:
                    traces.append(None)
                    errors.append((index, error))
    return traces, errors
