"""Batched multi-scenario simulation.

Many-scenario workloads (design-space sweeps, scenario fuzzing, the
scalability experiment E10) run the same model over many input scenarios.
With the reference interpreter each run pays the full model bookkeeping
again; with the execution-plan engine the model is compiled once and every
scenario reuses the plan.  :func:`simulate_batch` is the front door of that
workflow, and :func:`default_scenario` reproduces the scenario the tool
chain builds for a scheduled system (base processor ticks always present,
optional periodic environment stimuli).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..process import ProcessModel
from ..scenario import Scenario
from ..simulator import SimulationError, SimulationTrace
from ..sinks import SinkFactory, presence_summary
from .backends import DEFAULT_BACKEND, create_backend
from .parallel import default_worker_count, run_batch_parallel


def default_scenario(
    process: ProcessModel,
    length: Optional[int],
    stimuli_periods: Optional[Mapping[str, int]] = None,
) -> Scenario:
    """The tool chain's standard scenario for a scheduled system model.

    Every input named ``tick`` or ``*_tick`` (the base clock of a translated
    processor) is present at every instant; each entry of *stimuli_periods*
    adds a periodic environment stimulus.  The scenario is symbolic —
    O(inputs) memory whatever the horizon — and *length* may be ``None``
    for an unbounded scenario whose horizon is chosen at simulate time.
    """
    scenario = Scenario(length)
    for decl in process.inputs():
        if decl.name == "tick" or decl.name.endswith("_tick"):
            scenario.set_always(decl.name)
    for signal, period in (stimuli_periods or {}).items():
        scenario.set_periodic(signal, period)
    return scenario


@dataclass
class BatchResult:
    """Outcome of one :func:`simulate_batch` call.

    In the default (materialising) mode, :attr:`traces` holds one
    :class:`~repro.sig.simulator.SimulationTrace` per scenario.  In
    streaming mode (``sink_factory=``) no trace is materialised:
    :attr:`traces` holds ``None`` per scenario and :attr:`sink_results`
    holds, in scenario order, what each scenario's sink(s) produced.
    Failed scenarios (under ``collect_errors``) contribute ``None`` in
    either list plus an entry in :attr:`errors`.

    Under supervised execution (any of ``timeout=``, ``retries=``,
    ``scenario_budget=``, ``max_failures=`` or ``fault_plan=``) scenarios
    the supervisor could not recover — worker crashes, timeouts, budget
    violations, unexpected exceptions — appear in :attr:`faults` as
    structured :class:`~repro.sig.engine.supervisor.ScenarioFault` entries
    (in scenario order) and contribute ``None`` traces/sink results;
    :attr:`errors` stays reserved for deterministic
    :class:`~repro.sig.simulator.SimulationError` model errors.
    """

    backend: str
    traces: List[Optional[SimulationTrace]]
    errors: List[Tuple[int, SimulationError]] = field(default_factory=list)
    compile_seconds: float = 0.0
    run_seconds: float = 0.0
    workers: int = 1
    #: Per-scenario sink products of a streaming batch (empty otherwise).
    sink_results: List[Any] = field(default_factory=list)
    #: Unrecoverable scenarios of a supervised batch, in scenario order
    #: (empty on the unsupervised fast path and for fault-free batches).
    faults: List[Any] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.traces)

    @property
    def ok(self) -> bool:
        """``True`` when no scenario failed or faulted."""
        return not self.errors and not self.faults

    @property
    def streamed(self) -> bool:
        """``True`` when the batch ran in streaming (sink) mode."""
        return bool(self.sink_results)

    def successful_traces(self) -> List[SimulationTrace]:
        """The materialised traces of the scenarios that succeeded."""
        return [trace for trace in self.traces if trace is not None]

    def summary(self) -> str:
        """One paragraph of batch outcome, including per-scenario errors."""
        sharding = f", {self.workers} workers" if self.workers > 1 else ""
        if self.streamed:
            # Failures are exactly the collected errors — a sink whose
            # result() is None (e.g. one streaming to a caller's handle)
            # still succeeded.
            succeeded = len(self.traces) - len(self.errors) - len(self.faults)
            streamed = ", streamed"
        else:
            succeeded = len(self.successful_traces())
            streamed = ""
        faulted = f", {len(self.faults)} faulted" if self.faults else ""
        lines = [
            f"batch of {len(self.traces)} scenario(s) on backend {self.backend!r}: "
            f"{succeeded} succeeded, {len(self.errors)} failed{faulted} "
            f"(prepare {self.compile_seconds * 1000.0:.1f} ms, "
            f"run {self.run_seconds * 1000.0:.1f} ms{sharding}{streamed})"
        ]
        for index, error in self.errors:
            lines.append(f"  scenario {index}: {type(error).__name__}: {error}")
        for fault in self.faults:
            lines.append(f"  {fault.summary()}")
        return "\n".join(lines)


def simulate_batch(
    process: ProcessModel,
    scenarios: Sequence[Scenario],
    record: Optional[Iterable[str]] = None,
    strict: bool = True,
    backend: str = DEFAULT_BACKEND,
    collect_errors: bool = False,
    workers: int = 1,
    sink_factory: Optional[SinkFactory] = None,
    backend_options: Optional[Mapping[str, Any]] = None,
    length: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff: Optional[float] = None,
    max_failures: Optional[int] = None,
    scenario_budget: Any = None,
    fault_plan: Any = None,
    runner: Any = None,
) -> BatchResult:
    """Run every scenario through one prepared backend instance.

    The model is prepared (flattened, and compiled when the backend is
    ``"compiled"``) exactly once.  With ``collect_errors=True`` a failing
    scenario contributes ``None`` to :attr:`BatchResult.traces` plus an entry
    in :attr:`BatchResult.errors` instead of aborting the whole batch.

    ``workers`` shards the scenarios over that many worker processes
    (``0`` = one per core, see :mod:`repro.sig.engine.parallel`); traces and
    errors are bit-identical to the sequential ``workers=1`` run, including
    their ordering.

    ``sink_factory`` switches the batch to streaming mode: it is called
    with each scenario index and returns the fresh
    :class:`~repro.sig.sinks.TraceSink` (or sinks) that scenario streams
    into.  No trace is materialised in any process — memory stays
    O(signals) per worker however long the scenarios are — and
    :attr:`BatchResult.sink_results` collects each scenario's
    ``sink.result()`` in scenario order (``None`` for failed scenarios).
    Under ``workers > 1`` the factory must be picklable (e.g. a top-level
    function returning a fresh :class:`~repro.sig.sinks.StatisticsSink`);
    sinks are created, driven and harvested inside the workers, and only
    their results travel back.

    ``backend_options`` are forwarded to the backend constructor (e.g.
    ``{"block_size": 512}`` for the ``vectorized`` backend); unknown options
    are ignored by the other backends.

    ``length`` overrides every scenario's horizon — one *unbounded*
    symbolic scenario (``Scenario(None)``) can therefore be reused across
    sweeps of different lengths, and ships to workers as a few bytes of
    rules instead of per-instant lists.

    Setting any of ``timeout`` (wall-clock seconds per scenario attempt),
    ``retries`` (attempts after the first failure, default 2 when
    supervised), ``backoff`` (base of the exponential retry delay),
    ``max_failures`` (batch-wide circuit breaker), ``scenario_budget``
    (a :class:`~repro.sig.engine.supervisor.ScenarioBudget`, or an ``int``
    shorthand for its ``max_instants``) or ``fault_plan`` (a
    :class:`~repro.sig.engine.faults.FaultPlan`, for tests/chaos runs)
    switches the batch to the supervised executor: crashed or hung workers
    are detected and replaced, failed attempts retried, and unrecoverable
    scenarios surface in :attr:`BatchResult.faults` instead of taking the
    batch down.  Surviving scenarios stay bit-identical to an unsupervised
    run.

    ``runner`` short-circuits backend preparation with an already prepared
    :class:`~repro.sig.engine.backends.SimulationBackend` — the serving
    layer's warm path, where the plan-cache entry holds the backend
    resident across requests and ``compile_seconds`` reports ~0.  When
    given, ``process``/``backend``/``strict``/``backend_options`` are
    ignored (the runner already embodies them).
    """
    record = list(record) if record is not None else None
    start = time.perf_counter()
    if runner is None:
        runner = create_backend(
            process, backend=backend, strict=strict, **dict(backend_options or {})
        )
    compiled_at = time.perf_counter()

    count = len(scenarios)
    if workers <= 0:
        workers = default_worker_count()
    effective_workers = max(1, min(workers, count))
    traces, errors, sink_results, faults = run_batch_parallel(
        runner,
        scenarios,
        record=record,
        workers=effective_workers,
        collect_errors=collect_errors,
        sink_factory=sink_factory,
        length=length,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        max_failures=max_failures,
        scenario_budget=scenario_budget,
        fault_plan=fault_plan,
    )
    done = time.perf_counter()

    return BatchResult(
        backend=runner.name,
        traces=traces,
        errors=errors,
        compile_seconds=compiled_at - start,
        run_seconds=done - compiled_at,
        workers=effective_workers,
        sink_results=sink_results,
        faults=faults,
    )


def batch_flow_summary(result: BatchResult, signal: str) -> Dict[str, Any]:
    """Aggregate one signal across a batch: per-scenario presence counts.

    A small convenience for sweep reports (used by the examples); scenarios
    that failed contribute ``None``.  When *no* scenario produced the signal
    (the whole batch failed, or the signal was never recorded) ``min`` and
    ``max`` are ``None`` — distinguishable from a signal that genuinely
    stayed absent in every successful trace, whose ``min``/``max`` are ``0``.
    The dictionary shape is shared with
    :func:`repro.sig.sinks.batch_statistics_summary` (streamed batches) via
    :func:`repro.sig.sinks.presence_summary`.
    """
    counts: List[Optional[int]] = []
    for trace in result.traces:
        if trace is None or signal not in trace.flows:
            counts.append(None)
        else:
            counts.append(trace.count_present(signal))
    return presence_summary(signal, counts)


__all__ = [
    "BatchResult",
    "batch_flow_summary",
    "default_scenario",
    "simulate_batch",
]
