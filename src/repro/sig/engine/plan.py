"""Lowering of a polychronous process into an executable plan.

The reference simulator (:mod:`repro.sig.simulator`) interprets the equation
set from scratch at every instant: statuses and values live in dictionaries
keyed by signal name, every expression node is re-dispatched through
``isinstance`` chains, and delay/cell memories are addressed by f-string
paths rebuilt at each evaluation.  That is fine as an executable semantics,
but it wastes most of its time in bookkeeping.

:func:`compile_plan` performs, once per process, the work the interpreter
redoes at every instant:

* every signal name is mapped to an **integer slot**; per-instant statuses
  and values are plain Python lists indexed by slot;
* every equation is compiled into a closure tree mirroring the reference
  evaluation rules exactly (same statuses, same warning/exception messages),
  with stepwise operators resolved and constant sub-expressions **folded**
  at compile time;
* static clock tests (``when`` over a constant, ``^`` of a constant) are
  **precomputed** into constant-presence closures;
* delay and cell memories are allocated **integer state slots** instead of
  path-keyed dictionary entries, and the post-instant memory commit is
  compiled down to the equations that actually own memory (the reference
  walks every expression of every equation at every instant);
* the per-instant sweep keeps a **worklist** of still-unresolved targets,
  visited in the reference interpreter's declaration order with clock
  propagation after each sweep — the exact same fixed-point trajectory, so
  traces, warnings and errors are bit-identical by construction (resolution
  order interacts observably with ``^=`` constraint propagation, which is
  why a reordering "optimisation" is not semantics-preserving).  The static
  dependency graph (:mod:`repro.sig.scheduler_graph`, the same graph the
  paper uses for code generation) is analysed at compile time to record
  whether the instantaneous dependencies are acyclic.

The resulting :class:`ExecutionPlan` is immutable with respect to the model:
one plan can run many scenarios (see :meth:`ExecutionPlan.run_batch`), which
is what the batched multi-scenario APIs build on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..expressions import (
    Cell,
    ClockDifference,
    ClockIntersection,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Expression,
    FunctionApp,
    SignalRef,
    STEPWISE_OPERATIONS,
    Var,
    When,
    WhenClock,
    apply_stepwise,
)
from ..process import ConstraintKind, Direction, ProcessModel
from ..scenario import InputRule, Sampler, Scenario
from ..scheduler_graph import build_dependency_graph
from ..simulator import (
    ClockViolation,
    InstantaneousCycle,
    NonDeterministicDefinition,
    SimulationTrace,
)
from ..values import ABSENT, Flow

# Status codes of the compiled executor.  They correspond one-to-one to the
# string statuses of the reference interpreter; integers compare faster.
UNKNOWN = 0
PRESENT = 1
_ABSENT_ST = 2
CONST = 3
PRESUMED = 4

#: Sentinel marking a shared-variable memory slot that was never written.
_NOWRITE = object()

#: Evaluation closure: ``(status, values, state, varmem, instant, warnings,
#: strict) -> (status_code, value)``.
EvalFn = Callable[..., Tuple[int, Any]]
#: Memory-commit closure: ``(status, values, state, varmem, strict) -> None``.
CommitFn = Callable[..., None]


class _Compiler:
    """Per-process compilation context: slot and state allocation."""

    def __init__(self, process: ProcessModel) -> None:
        self.process = process
        self.slot_of: Dict[str, int] = {}
        self.names: List[str] = []
        self.state_init: List[List[Any]] = []
        #: Set when any compiled expression reads a shared variable; a run
        #: without :class:`~repro.sig.expressions.Var` readers can skip the
        #: per-instant shared-memory commit entirely.
        self.uses_varmem = False

    def slot(self, name: str) -> int:
        index = self.slot_of.get(name)
        if index is None:
            index = len(self.names)
            self.slot_of[name] = index
            self.names.append(name)
        return index

    def state_slot(self, initial: List[Any]) -> int:
        self.state_init.append(initial)
        return len(self.state_init) - 1

    # ------------------------------------------------------------------
    # expression compilation
    # ------------------------------------------------------------------
    def compile(self, expr: Expression) -> Tuple[EvalFn, Optional[CommitFn]]:
        """Compile *expr* into an evaluation closure plus an optional memory
        commit closure (``None`` when the subtree owns no delay/cell state)."""
        if isinstance(expr, SignalRef):
            s = self.slot(expr.name)

            def ev(st, vals, state, varmem, instant, warnings, strict, _s=s):
                code = st[_s]
                if code == PRESENT:
                    return PRESENT, vals[_s]
                return code, ABSENT

            return ev, None

        if isinstance(expr, Var):
            s = self.slot(expr.name)
            self.uses_varmem = True

            def ev(st, vals, state, varmem, instant, warnings, strict, _s=s):
                code = st[_s]
                if code == PRESENT:
                    return PRESENT, vals[_s]
                if code == UNKNOWN or code == PRESUMED:
                    return code, ABSENT
                stored = varmem[_s]
                if stored is not _NOWRITE:
                    return CONST, stored
                return _ABSENT_ST, ABSENT

            return ev, None

        if isinstance(expr, Const):
            value = expr.value

            def ev(st, vals, state, varmem, instant, warnings, strict, _v=value):
                return CONST, _v

            return ev, None

        if isinstance(expr, FunctionApp):
            return self._compile_function(expr)

        if isinstance(expr, Delay):
            return self._compile_delay(expr)

        if isinstance(expr, When):
            return self._compile_when(expr)

        if isinstance(expr, WhenClock):
            return self._compile_when_clock(expr)

        if isinstance(expr, Default):
            return self._compile_default(expr)

        if isinstance(expr, Cell):
            return self._compile_cell(expr)

        if isinstance(expr, ClockOf):
            return self._compile_clock_of(expr)

        if isinstance(expr, (ClockUnion, ClockIntersection, ClockDifference)):
            return self._compile_clock_binop(expr)

        raise TypeError(f"cannot compile expression of type {type(expr).__name__}")

    #: Built-in operators known to be pure, and therefore safe to fold over
    #: constant operands at compile time.  User functions registered through
    #: :func:`repro.sig.expressions.register_stepwise_operation` may be
    #: stateful, so they are always applied at run time like the interpreter
    #: does.
    PURE_OPERATORS = frozenset(
        ["+", "-", "*", "/", "%", "neg", "=", "/=", "<", "<=", ">", ">=",
         "and", "or", "xor", "not", "min", "max", "abs"]
    )

    def _compile_function(self, expr: FunctionApp) -> Tuple[EvalFn, Optional[CommitFn]]:
        # Constant folding: a *pure* stepwise application of constants is a
        # constant.
        if (
            expr.op in self.PURE_OPERATORS
            and expr.args
            and all(isinstance(a, Const) for a in expr.args)
        ):
            try:
                folded = apply_stepwise(expr.op, [a.value for a in expr.args])
            except Exception:
                pass  # fold failed: fall through and fail at run time, like the interpreter
            else:
                return self.compile(Const(folded))

        compiled = [self.compile(a) for a in expr.args]
        subs = tuple(ev for ev, _ in compiled)
        op = expr.op
        if op in self.PURE_OPERATORS:
            func = STEPWISE_OPERATIONS[op]
        else:
            # User-registered (or unknown) operator: resolve at application
            # time so late registration and re-registration behave exactly
            # like the reference interpreter.
            def func(*args, _op=op):
                return apply_stepwise(_op, list(args))

        if len(subs) == 1:
            sub = subs[0]

            def ev(st, vals, state, varmem, instant, warnings, strict):
                code, value = sub(st, vals, state, varmem, instant, warnings, strict)
                if code == PRESENT:
                    return PRESENT, func(value)
                if code == _ABSENT_ST:
                    return _ABSENT_ST, ABSENT
                if code == CONST:
                    return CONST, func(value)
                return UNKNOWN, ABSENT

        elif len(subs) == 2:
            left, right = subs

            def ev(st, vals, state, varmem, instant, warnings, strict):
                lc, lv = left(st, vals, state, varmem, instant, warnings, strict)
                rc, rv = right(st, vals, state, varmem, instant, warnings, strict)
                if lc == UNKNOWN or lc == PRESUMED or rc == UNKNOWN or rc == PRESUMED:
                    return UNKNOWN, ABSENT
                if lc == PRESENT or rc == PRESENT:
                    if lc == _ABSENT_ST or rc == _ABSENT_ST:
                        message = (
                            f"clock violation at instant {instant}: operator {op!r} "
                            "applied to operands that are not all present"
                        )
                        if strict:
                            raise ClockViolation(message)
                        warnings.append(message)
                        return _ABSENT_ST, ABSENT
                    return PRESENT, func(lv, rv)
                if lc == _ABSENT_ST or rc == _ABSENT_ST:
                    return _ABSENT_ST, ABSENT
                return CONST, func(lv, rv)

        else:

            def ev(st, vals, state, varmem, instant, warnings, strict):
                results = [sub(st, vals, state, varmem, instant, warnings, strict) for sub in subs]
                has_unknown = has_present = has_absent = False
                for code, _ in results:
                    if code == UNKNOWN or code == PRESUMED:
                        has_unknown = True
                    elif code == PRESENT:
                        has_present = True
                    elif code == _ABSENT_ST:
                        has_absent = True
                if has_unknown:
                    return UNKNOWN, ABSENT
                if has_present and has_absent:
                    message = (
                        f"clock violation at instant {instant}: operator {op!r} "
                        "applied to operands that are not all present"
                    )
                    if strict:
                        raise ClockViolation(message)
                    warnings.append(message)
                    return _ABSENT_ST, ABSENT
                if has_present:
                    return PRESENT, func(*[v for _, v in results])
                if not has_absent:  # every operand is a constant
                    return CONST, func(*[v for _, v in results])
                return _ABSENT_ST, ABSENT

        return ev, self._merge_commits([c for _, c in compiled])

    def _compile_delay(self, expr: Delay) -> Tuple[EvalFn, Optional[CommitFn]]:
        operand_ev, operand_commit = self.compile(expr.operand)
        init = expr.init
        depth = max(1, expr.depth)
        k = self.state_slot([init] * depth)

        def ev(st, vals, state, varmem, instant, warnings, strict, _k=k, _init=init):
            code, _ = operand_ev(st, vals, state, varmem, instant, warnings, strict)
            if code == UNKNOWN:
                return UNKNOWN, ABSENT
            if code == _ABSENT_ST:
                return _ABSENT_ST, ABSENT
            if code == CONST:
                return CONST, _init
            # Present, or presumed present through a clock constraint: the
            # delay only needs the *presence* of its operand at this instant.
            return PRESENT, state[_k][0]

        shift = depth > 1

        def commit(st, vals, state, varmem, strict, _k=k):
            # Read the operand with the *old* nested state before recursing,
            # so that chained delays shift correctly.
            code, value = operand_ev(st, vals, state, varmem, -1, [], strict)
            if operand_commit is not None:
                operand_commit(st, vals, state, varmem, strict)
            if code == PRESENT:
                buffer = state[_k]
                if shift:
                    buffer.pop(0)
                    buffer.append(value)
                else:
                    buffer[0] = value

        return ev, commit

    def _compile_when(self, expr: When) -> Tuple[EvalFn, Optional[CommitFn]]:
        operand_ev, operand_commit = self.compile(expr.operand)
        cond_ev, cond_commit = self.compile(expr.condition)

        def ev(st, vals, state, varmem, instant, warnings, strict):
            cond_code, cond_val = cond_ev(st, vals, state, varmem, instant, warnings, strict)
            if cond_code == UNKNOWN or cond_code == PRESUMED:
                return UNKNOWN, ABSENT
            if cond_code == _ABSENT_ST or not cond_val:
                return _ABSENT_ST, ABSENT
            op_code, op_val = operand_ev(st, vals, state, varmem, instant, warnings, strict)
            if op_code == UNKNOWN or op_code == PRESUMED:
                return op_code, ABSENT
            if op_code == _ABSENT_ST:
                return _ABSENT_ST, ABSENT
            return PRESENT, op_val

        # The reference walks the operand before the condition when it
        # advances memories; keep the same order.
        return ev, self._merge_commits([operand_commit, cond_commit])

    def _compile_when_clock(self, expr: WhenClock) -> Tuple[EvalFn, Optional[CommitFn]]:
        if isinstance(expr.condition, Const):
            # Static clock test: precomputed at compile time.
            if bool(expr.condition.value):
                def ev_true(st, vals, state, varmem, instant, warnings, strict):
                    return PRESENT, True

                return ev_true, None

            def ev_false(st, vals, state, varmem, instant, warnings, strict):
                return _ABSENT_ST, ABSENT

            return ev_false, None

        cond_ev, cond_commit = self.compile(expr.condition)

        def ev(st, vals, state, varmem, instant, warnings, strict):
            cond_code, cond_val = cond_ev(st, vals, state, varmem, instant, warnings, strict)
            if cond_code == UNKNOWN or cond_code == PRESUMED:
                return UNKNOWN, ABSENT
            if (cond_code == PRESENT or cond_code == CONST) and cond_val:
                return PRESENT, True
            return _ABSENT_ST, ABSENT

        return ev, cond_commit

    def _compile_default(self, expr: Default) -> Tuple[EvalFn, Optional[CommitFn]]:
        left_ev, left_commit = self.compile(expr.left)
        right_ev, right_commit = self.compile(expr.right)

        def ev(st, vals, state, varmem, instant, warnings, strict):
            left_code, left_val = left_ev(st, vals, state, varmem, instant, warnings, strict)
            if left_code == UNKNOWN:
                return UNKNOWN, ABSENT
            if left_code == PRESENT:
                return PRESENT, left_val
            if left_code == PRESUMED:
                return PRESUMED, ABSENT
            right_code, right_val = right_ev(st, vals, state, varmem, instant, warnings, strict)
            if left_code == CONST:
                # A constant left branch adapts to the clock of the right one.
                if right_code == UNKNOWN:
                    return UNKNOWN, ABSENT
                if right_code == PRESENT or right_code == CONST:
                    return right_code, left_val
                if right_code == PRESUMED:
                    return PRESUMED, ABSENT
                return CONST, left_val
            return right_code, right_val

        return ev, self._merge_commits([left_commit, right_commit])

    def _compile_cell(self, expr: Cell) -> Tuple[EvalFn, Optional[CommitFn]]:
        operand_ev, operand_commit = self.compile(expr.operand)
        cond_ev, cond_commit = self.compile(expr.condition)
        k = self.state_slot([expr.init])

        def ev(st, vals, state, varmem, instant, warnings, strict, _k=k):
            op_code, op_val = operand_ev(st, vals, state, varmem, instant, warnings, strict)
            cond_code, cond_val = cond_ev(st, vals, state, varmem, instant, warnings, strict)
            if op_code == UNKNOWN or cond_code == UNKNOWN or cond_code == PRESUMED:
                return UNKNOWN, ABSENT
            if op_code == PRESUMED:
                return PRESUMED, ABSENT
            if op_code == PRESENT:
                return PRESENT, op_val
            if (cond_code == PRESENT or cond_code == CONST) and cond_val:
                return PRESENT, state[_k][0]
            return _ABSENT_ST, ABSENT

        def commit(st, vals, state, varmem, strict, _k=k):
            code, value = operand_ev(st, vals, state, varmem, -1, [], strict)
            if operand_commit is not None:
                operand_commit(st, vals, state, varmem, strict)
            if cond_commit is not None:
                cond_commit(st, vals, state, varmem, strict)
            if code == PRESENT:
                state[_k][0] = value

        return ev, commit

    def _compile_clock_of(self, expr: ClockOf) -> Tuple[EvalFn, Optional[CommitFn]]:
        if isinstance(expr.operand, Const):
            # The clock of a constant is empty in the reference interpreter.
            def ev_const(st, vals, state, varmem, instant, warnings, strict):
                return _ABSENT_ST, ABSENT

            return ev_const, None

        operand_ev, operand_commit = self.compile(expr.operand)

        def ev(st, vals, state, varmem, instant, warnings, strict):
            code, _ = operand_ev(st, vals, state, varmem, instant, warnings, strict)
            if code == UNKNOWN:
                return UNKNOWN, ABSENT
            if code == PRESENT or code == PRESUMED:
                return PRESENT, True
            return _ABSENT_ST, ABSENT

        return ev, operand_commit

    def _compile_clock_binop(self, expr: Expression) -> Tuple[EvalFn, Optional[CommitFn]]:
        left_ev, left_commit = self.compile(expr.left)
        right_ev, right_commit = self.compile(expr.right)

        if isinstance(expr, ClockUnion):
            def ev(st, vals, state, varmem, instant, warnings, strict):
                left_code, _ = left_ev(st, vals, state, varmem, instant, warnings, strict)
                right_code, _ = right_ev(st, vals, state, varmem, instant, warnings, strict)
                if (
                    left_code == PRESENT
                    or left_code == PRESUMED
                    or right_code == PRESENT
                    or right_code == PRESUMED
                ):
                    return PRESENT, True
                if left_code == UNKNOWN or right_code == UNKNOWN:
                    return UNKNOWN, ABSENT
                return _ABSENT_ST, ABSENT

        elif isinstance(expr, ClockIntersection):
            def ev(st, vals, state, varmem, instant, warnings, strict):
                left_code, _ = left_ev(st, vals, state, varmem, instant, warnings, strict)
                right_code, _ = right_ev(st, vals, state, varmem, instant, warnings, strict)
                if left_code == _ABSENT_ST or right_code == _ABSENT_ST:
                    return _ABSENT_ST, ABSENT
                if left_code == UNKNOWN or right_code == UNKNOWN:
                    return UNKNOWN, ABSENT
                if (left_code == PRESENT or left_code == PRESUMED) and (
                    right_code == PRESENT or right_code == PRESUMED
                ):
                    return PRESENT, True
                return _ABSENT_ST, ABSENT

        else:  # ClockDifference
            def ev(st, vals, state, varmem, instant, warnings, strict):
                left_code, _ = left_ev(st, vals, state, varmem, instant, warnings, strict)
                right_code, _ = right_ev(st, vals, state, varmem, instant, warnings, strict)
                if left_code == _ABSENT_ST:
                    return _ABSENT_ST, ABSENT
                if left_code == UNKNOWN or right_code == UNKNOWN:
                    return UNKNOWN, ABSENT
                if (left_code == PRESENT or left_code == PRESUMED) and not (
                    right_code == PRESENT or right_code == PRESUMED
                ):
                    return PRESENT, True
                return _ABSENT_ST, ABSENT

        return ev, self._merge_commits([left_commit, right_commit])

    @staticmethod
    def _merge_commits(commits: Sequence[Optional[CommitFn]]) -> Optional[CommitFn]:
        active = [c for c in commits if c is not None]
        if not active:
            return None
        if len(active) == 1:
            return active[0]

        def merged(st, vals, state, varmem, strict, _active=tuple(active)):
            for commit in _active:
                commit(st, vals, state, varmem, strict)

        return merged


#: Built-in pure stepwise operators (safe to fold at compile time and to
#: vectorise over instant blocks); re-exported for the vectorized backend.
PURE_OPERATORS = _Compiler.PURE_OPERATORS


class TargetPlan:
    """Pre-resolved definition set of one equation target."""

    __slots__ = ("name", "slot", "declared", "evaluators")

    def __init__(self, name: str, slot: int, declared: bool, evaluators: List[EvalFn]) -> None:
        self.name = name
        self.slot = slot
        self.declared = declared
        self.evaluators = evaluators

    def resolve(self, st, vals, state, varmem, instant, warnings, strict) -> Tuple[bool, Any]:
        """Resolve a multiply-defined target (partial definitions).

        Single-definition targets — the overwhelmingly common case — are
        inlined in :meth:`ExecutionPlan.run` and never reach this method.
        """
        results: List[Tuple[int, Any]] = []
        for evaluator in self.evaluators:
            code, value = evaluator(st, vals, state, varmem, instant, warnings, strict)
            if code == UNKNOWN or code == PRESUMED:
                return False, ABSENT
            results.append((code, value))
        present = [value for code, value in results if code == PRESENT]
        if not present:
            return True, ABSENT
        distinct = {repr(value) for value in present}
        if len(distinct) > 1:
            message = (
                f"non-deterministic definition of {self.name!r} at instant {instant}: "
                + ", ".join(sorted(distinct))
            )
            if strict:
                raise NonDeterministicDefinition(message)
            warnings.append(message)
        return True, present[0]


@dataclass
class PlanStatistics:
    """Compile-time shape of an execution plan (for reports and tests)."""

    signals: int
    targets: int
    equations: int
    state_slots: int
    sync_groups: int
    acyclic_dependencies: bool

    def summary(self) -> str:
        """One line describing the compiled plan's shape."""
        graph = "acyclic" if self.acyclic_dependencies else "cyclic"
        return (
            f"execution plan: {self.signals} signal slots, {self.targets} targets "
            f"({self.equations} equations, {graph} dependency graph), "
            f"{self.state_slots} memory slots, {self.sync_groups} synchronisation groups"
        )


class ExecutionPlan:
    """A process lowered to slot-indexed, topologically ordered instructions.

    Build one with :func:`compile_plan`; run scenarios with :meth:`run` or
    :meth:`run_batch`.  A plan holds no mutable per-run state: every run
    allocates its own status/value/memory arrays, so one plan can be shared
    freely across scenarios (and, in future PRs, across worker processes).
    """

    def __init__(self, process: ProcessModel) -> None:
        if process.instances or process.submodels:
            process = process.flatten()
        self.process = process

        compiler = _Compiler(process)
        declared = process.signals

        # Declared signals claim the first slots, in declaration order, so
        # slot indices are stable and readable in debug dumps.
        for name in declared:
            compiler.slot(name)

        # Group equations by target in first-appearance order (the reference
        # interpreter's resolution units), compiling each definition once.
        grouped: Dict[str, List[EvalFn]] = {}
        commits: List[CommitFn] = []
        delay_candidates: Dict[str, Tuple[int, Any, str]] = {}
        delay_commit_candidates: Dict[str, int] = {}
        for eq in process.equations:
            state_base = len(compiler.state_init)
            evaluator, commit = compiler.compile(eq.expr)
            grouped.setdefault(eq.target, []).append(evaluator)
            compiler.slot(eq.target)
            if commit is not None:
                commits.append(commit)
            expr = eq.expr
            if (
                isinstance(expr, Delay)
                and isinstance(expr.operand, SignalRef)
                and max(1, expr.depth) == 1
            ):
                # A bare unit delay of a plain signal: its state slot is the
                # first one this equation allocated (the operand allocates
                # none), which is what the vectorized backend's recurrence
                # scan kernels need to seed and verify.
                delay_candidates[eq.target] = (state_base, expr.init, expr.operand.name)
                # A bare delay always produces exactly one commit, appended
                # just above: its position lets the recurrence scans replace
                # the per-instant state advance with one block-level write.
                delay_commit_candidates[eq.target] = len(commits) - 1
        self._commits = tuple(commits)
        #: ``target -> (state_slot, init, operand_name)`` for every
        #: single-definition target defined by a bare depth-1 delay of a
        #: plain signal reference.  The vectorized backend uses this map to
        #: detect delay recurrences (accumulators, counters) it can promote
        #: into scan kernels; everything else is opaque delay state.
        self.delay_memories: Dict[str, Tuple[int, Any, str]] = {
            target: info
            for target, info in delay_candidates.items()
            if len(grouped[target]) == 1
        }
        #: ``target -> index into the per-instant commit tuple`` for the
        #: same bare delays: a promoted scan advances the state slot once
        #: per block instead, so the vectorized executor drops the delay's
        #: per-instant commit from its vector path (the fallback path keeps
        #: the full tuple).
        self._delay_commit_index: Dict[str, int] = {
            target: index
            for target, index in delay_commit_candidates.items()
            if target in self.delay_memories
        }

        # Constraint operands may reference otherwise-unknown names.
        self._sync_groups = self._compile_sync_groups(process, compiler)

        # Resolution follows the reference interpreter's order (first
        # appearance of each target) so the fixed-point trajectory — and with
        # it every warning and error — is reproduced exactly.  The dependency
        # graph records whether the instantaneous dependencies are acyclic
        # (they are for well-formed models, making the sweep converge fast).
        graph = build_dependency_graph(process, include_clock_edges=False)
        self.acyclic_dependencies = graph.topological_order() is not None
        self.targets: List[TargetPlan] = [
            TargetPlan(name, compiler.slot(name), name in declared, grouped[name])
            for name in grouped
        ]

        self.names = compiler.names
        self.slot_of = compiler.slot_of
        self._state_init = compiler.state_init
        self._equation_count = len(process.equations)
        #: ``True`` when some expression reads a shared variable; without
        #: readers the per-instant ``varmem`` commit is dead code and skipped.
        self.uses_varmem = compiler.uses_varmem

        self._nowrite_template = [_NOWRITE] * len(self.names)

        # Per-instant status template.  Declared inputs are scenario-driven
        # even when equations define them (the reference interpreter gives
        # the scenario priority and never resolves such targets).
        template = [_ABSENT_ST] * len(self.names)
        self._input_slots: List[Tuple[int, str]] = []
        input_names = set()
        for name, decl in declared.items():
            if decl.direction is Direction.INPUT:
                input_names.add(name)
                self._input_slots.append((self.slot_of[name], name))
        for target in self.targets:
            if target.declared and target.name not in input_names:
                template[target.slot] = UNKNOWN
        self._status_template = template

        # Pre-resolved work items of the per-instant sweep, in resolution
        # order: (slot, declared, single-definition evaluator or None,
        # target).  Declared inputs are never resolved (scenario wins).
        self._work: Tuple[Tuple[int, bool, Optional[EvalFn], TargetPlan], ...] = tuple(
            (
                target.slot,
                target.declared,
                target.evaluators[0] if len(target.evaluators) == 1 else None,
                target,
            )
            for target in self.targets
            if not (target.declared and target.name in input_names)
        )

    # ------------------------------------------------------------------
    # pickling: a plan is a pure function of its (picklable) process model,
    # so it travels as the model and recompiles itself on arrival.  This is
    # what lets spawn-based multiprocessing workers receive a plan even
    # though the compiled closures themselves cannot be pickled.
    def __getstate__(self) -> Dict[str, Any]:
        return {"process": self.process}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(state["process"])

    # ------------------------------------------------------------------
    def statistics(self) -> PlanStatistics:
        """Compile-time shape of this plan (slot/target/memory counts)."""
        return PlanStatistics(
            signals=len(self.names),
            targets=len(self.targets),
            equations=self._equation_count,
            state_slots=len(self._state_init),
            sync_groups=len(self._sync_groups),
            acyclic_dependencies=self.acyclic_dependencies,
        )

    @staticmethod
    def _compile_sync_groups(
        process: ProcessModel, compiler: _Compiler
    ) -> List[Tuple[Tuple[int, ...], str]]:
        """``^=`` groups as slot tuples plus their pre-sorted name list."""
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[rb] = ra

        for constraint in process.constraints:
            if constraint.kind is not ConstraintKind.SYNCHRONOUS:
                continue
            names = [op.name for op in constraint.operands if isinstance(op, (SignalRef, Var))]
            for a, b in zip(names, names[1:]):
                union(a, b)
        groups: Dict[str, List[str]] = {}
        for name in parent:
            groups.setdefault(find(name), []).append(name)
        return [
            (tuple(compiler.slot(name) for name in members), ", ".join(sorted(members)))
            for members in groups.values()
            if len(members) > 1
        ]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        scenario: Scenario,
        record: Optional[Iterable[str]] = None,
        strict: bool = True,
        sinks: Optional[Sequence[Any]] = None,
        length: Optional[int] = None,
    ) -> Optional[SimulationTrace]:
        """Execute *scenario* and record the requested signals.

        Semantics (flows, warnings of record, raised errors) match the
        reference interpreter; see :class:`repro.sig.simulator.Simulator`.

        With *sinks* (see :mod:`repro.sig.sinks`) each resolved instant is
        pushed to every sink instead of being materialised — memory stays
        O(signals) however long the scenario — and the method returns
        ``None``; include a :class:`~repro.sig.sinks.MaterializeSink` to
        also keep the full trace.  Any non-``None`` *sinks* selects the
        streaming mode: an *empty* list runs the scenario for its effects
        (errors, warnings) without retaining anything.

        *length* overrides the scenario's default horizon (required for
        unbounded scenarios).
        """
        length = scenario.run_length(length)
        recorded = list(record) if record is not None else list(self.process.signals)
        warnings: List[str] = []

        streaming = sinks is not None
        sink_list: List[Any] = []
        if streaming:
            from ..sinks import TraceHeader, as_sink_list, close_sinks

            sink_list = as_sink_list(sinks)

        declared = self.process.signals
        driven, driven_slots, scenario_only = self._bind_scenario(scenario)
        # One precompiled sampling closure per driven slot: the symbolic
        # rules are evaluated lazily, never expanded into per-instant lists.
        sampled = [(slot, rule.sampler()) for slot, rule in driven]

        # Scenario-driven undeclared targets are not resolved (scenario wins).
        base_work = [item for item in self._work if item[0] not in driven_slots]

        record_lists, record_plan = self._build_record_plan(
            recorded, streaming, scenario_only
        )

        state = [list(template) for template in self._state_init]
        varmem = list(self._nowrite_template)
        status_template = self._status_template
        n_slots = len(self.names)
        finish_instant = self._finish_instant

        try:
            if streaming:
                # Inside the guarded region: a sink raising in on_header must
                # not leave earlier sinks' file handles open.
                header = TraceHeader(
                    process_name=self.process.name,
                    length=length,
                    signals=tuple(recorded),
                    types={name: decl.type for name, decl in declared.items()},
                    warnings=warnings,
                )
                for sink in sink_list:
                    sink.on_header(header)
            from .supervisor import current_guard

            guard = current_guard()
            guard_check = guard.check if guard is not None else None
            for instant in range(length):
                if guard_check is not None:
                    guard_check(instant)
                st = list(status_template)
                vals: List[Any] = [ABSENT] * n_slots
                for slot, sample in sampled:
                    value = sample(instant)
                    st[slot] = _ABSENT_ST if value is ABSENT else PRESENT
                    vals[slot] = value

                self._resolve_instant(
                    st, vals, state, varmem, instant, warnings, strict, base_work
                )
                finish_instant(st, vals, state, varmem, strict)

                if streaming:
                    if sink_list:
                        row = tuple(
                            vals[slot]
                            if slot is not None
                            else (fallback(instant) if fallback is not None else ABSENT)
                            for _, slot, fallback in record_plan
                        )
                        statuses = tuple(value is not ABSENT for value in row)
                        for sink in sink_list:
                            sink.on_instant(instant, statuses, row)
                else:
                    for out, slot, fallback in record_plan:
                        if slot is not None:
                            out.append(vals[slot])
                        elif fallback is not None:
                            out.append(fallback(instant))
                        else:
                            out.append(ABSENT)
        finally:
            # Sinks close whatever happens, so file-backed sinks flush even
            # when the run aborts on a simulation error.
            if streaming:
                close_sinks(sink_list)

        if streaming:
            return None
        flows = {name: Flow(name, values) for name, values in record_lists.items()}
        return SimulationTrace(
            process_name=self.process.name,
            length=length,
            flows=flows,
            warnings=warnings,
        )

    def run_batch(
        self,
        scenarios: Sequence[Scenario],
        record: Optional[Iterable[str]] = None,
        strict: bool = True,
        length: Optional[int] = None,
    ) -> List[SimulationTrace]:
        """Run every scenario through this (already compiled) plan.

        Delay/cell/shared-variable memories are reset between scenarios, so
        each trace is what a fresh simulator would produce.  *length*
        applies to every scenario (required when they are unbounded).
        """
        record = list(record) if record is not None else None
        return [
            self.run(scenario, record=record, strict=strict, length=length)
            for scenario in scenarios
        ]

    def _bind_scenario(
        self, scenario: Scenario
    ) -> Tuple[List[Tuple[int, InputRule]], set, Dict[str, InputRule]]:
        """Split a scenario's input program into slot-driven rules and
        scenario-only recorded fallbacks.

        Scenario rules drive declared inputs and undeclared-but-referenced
        names; rules for declared non-input signals are ignored, exactly as
        in the reference interpreter.  Shared by :meth:`run` and the
        vectorized executor so input precedence lives in one place.
        Returns ``(driven, driven_slots, scenario_only)``: the
        ``(slot, rule)`` pairs to drive, the *undeclared* driven slots
        (whose work items the sweep must skip — scenario wins), and the
        rules of recorded names that have no slot at all.
        """
        driven: List[Tuple[int, InputRule]] = []
        driven_slots: set = set()
        scenario_only: Dict[str, InputRule] = {}
        declared = self.process.signals
        slot_of = self.slot_of
        for slot, name in self._input_slots:
            rule = scenario.inputs.get(name)
            if rule is not None:
                driven.append((slot, rule))
        for name, rule in scenario.inputs.items():
            if name in declared:
                continue
            slot = slot_of.get(name)
            if slot is None:
                scenario_only[name] = rule
                continue
            driven.append((slot, rule))
            driven_slots.add(slot)
        return driven, driven_slots, scenario_only

    def _build_record_plan(
        self,
        recorded: List[str],
        streaming: bool,
        scenario_only: Dict[str, InputRule],
    ) -> Tuple[
        Dict[str, List[Any]],
        List[Tuple[Optional[List[Any]], Optional[int], Optional[Sampler]]],
    ]:
        """Per-recorded-name output plan: ``(out list, slot, fallback sampler)``.

        Recorded names that are neither slots nor scenario rules stay ⊥;
        they record into plain lists wrapped as flows at the end.  A name
        listed twice shares one list and is appended twice per instant,
        exactly as the reference interpreter's shared Flow behaves.  When
        streaming, no lists are kept at all: each instant's row is handed
        to the sinks and dropped.  Shared by :meth:`run` and the vectorized
        executor.
        """
        record_lists: Dict[str, List[Any]] = {}
        record_plan: List[
            Tuple[Optional[List[Any]], Optional[int], Optional[Sampler]]
        ] = []
        for name in recorded:
            out = None if streaming else record_lists.setdefault(name, [])
            slot = self.slot_of.get(name)
            fallback_rule = scenario_only.get(name) if slot is None else None
            record_plan.append(
                (out, slot, fallback_rule.sampler() if fallback_rule is not None else None)
            )
        return record_lists, record_plan

    def _finish_instant(self, st, vals, state, varmem, strict) -> None:
        """Advance the delay/cell memories and the shared-variable
        write-through after one resolved instant.

        Shared by :meth:`run` and the vectorized executor's hybrid and
        fallback loops, so commit ordering and the ``uses_varmem`` skip live
        in exactly one place.
        """
        for commit in self._commits:
            commit(st, vals, state, varmem, strict)
        if self.uses_varmem:
            for slot, code in enumerate(st):
                if code == PRESENT:
                    varmem[slot] = vals[slot]

    _BARE_CONSTANT = (
        "signal {name!r} defined by a bare constant has no clock; treated as absent"
    )

    def _resolve_instant(
        self, st, vals, state, varmem, instant, warnings, strict, work
    ) -> None:
        """Resolve one instant's statuses and values in place.

        Sweeps the *work* targets in the reference interpreter's order,
        keeping only the unresolved ones for the next sweep, with ``^=``
        clock propagation after each sweep — the same trajectory (and hence
        the same warnings and errors) as the reference fixed point.  Shared
        by :meth:`run` and the vectorized backend's residual sweep
        (:mod:`repro.sig.engine.vectorized`).
        """
        unresolved = self._sweep_worklist(
            st, vals, state, varmem, instant, warnings, strict, work, self._sync_groups
        )
        if unresolved:
            self._raise_blocked(st, unresolved, instant)

    def _sweep_worklist(
        self, st, vals, state, varmem, instant, warnings, strict, work, groups
    ) -> List[Tuple[int, bool, Optional[EvalFn], TargetPlan]]:
        """Run one worklist to its fixed point, propagating only *groups*.

        The body of :meth:`_resolve_instant`, parameterised over the ``^=``
        groups so the vectorized backend's residue *clusters* can sweep an
        independent sub-worklist with propagation confined to the groups
        that touch it.  Returns the targets still unresolved at the fixed
        point (the caller decides whether that is an instantaneous cycle).
        """
        propagate_sync = self._propagate_sync_groups
        bare_constant = self._BARE_CONSTANT
        unresolved = work
        progress = True
        while progress:
            progress = False
            still: List[Tuple[int, bool, Optional[EvalFn], TargetPlan]] = []
            for item in unresolved:
                slot, is_declared, single, target = item
                if is_declared:
                    code = st[slot]
                    if code == PRESENT or code == _ABSENT_ST:
                        # Settled by a synchronisation group: drop the item,
                        # but (like the reference) this is not resolution
                        # progress.
                        continue
                if single is not None:
                    code, value = single(st, vals, state, varmem, instant, warnings, strict)
                    if code == UNKNOWN or code == PRESUMED:
                        still.append(item)
                        continue
                    if code == PRESENT:
                        st[slot] = PRESENT
                        vals[slot] = value
                    else:
                        if code == CONST:
                            # A lone constant definition has no clock of its
                            # own; report it once per instant.
                            warnings.append(bare_constant.format(name=target.name))
                        st[slot] = _ABSENT_ST
                else:
                    resolved, value = target.resolve(
                        st, vals, state, varmem, instant, warnings, strict
                    )
                    if not resolved:
                        still.append(item)
                        continue
                    if value is ABSENT:
                        st[slot] = _ABSENT_ST
                    else:
                        st[slot] = PRESENT
                        vals[slot] = value
                progress = True
            unresolved = still
            if propagate_sync(st, instant, warnings, strict, groups):
                progress = True
        return unresolved

    def _raise_blocked(self, st, unresolved, instant) -> None:
        """Raise :class:`InstantaneousCycle` for still-blocked declared targets.

        Reports unresolved *declared* signals in declaration order, as the
        reference interpreter's status dictionary does.  No-op when every
        leftover is undeclared (those stay absent, like the reference).
        """
        blocked_slots = {
            item[0]
            for item in unresolved
            if item[1] and st[item[0]] in (UNKNOWN, PRESUMED)
        }
        if blocked_slots:
            slot_of = self.slot_of
            blocked = [
                name for name in self.process.signals if slot_of[name] in blocked_slots
            ]
            raise InstantaneousCycle(instant, blocked)

    def _propagate_sync(self, st, instant, warnings, strict) -> bool:
        return self._propagate_sync_groups(st, instant, warnings, strict, self._sync_groups)

    @staticmethod
    def _propagate_sync_groups(st, instant, warnings, strict, groups) -> bool:
        changed = False
        for slots, names in groups:
            has_present = has_absent = False
            for slot in slots:
                code = st[slot]
                if code == PRESENT or code == PRESUMED:
                    has_present = True
                elif code == _ABSENT_ST:
                    has_absent = True
            if has_present and has_absent:
                message = (
                    f"clock constraint violation at instant {instant}: signals "
                    f"{names} are declared synchronous but disagree"
                )
                if strict:
                    raise ClockViolation(message)
                warnings.append(message)
                continue
            if has_present:
                for slot in slots:
                    if st[slot] == UNKNOWN:
                        st[slot] = PRESUMED
                        changed = True
            elif has_absent:
                for slot in slots:
                    if st[slot] == UNKNOWN:
                        st[slot] = _ABSENT_ST
                        changed = True
        return changed


def compile_plan(process: ProcessModel) -> ExecutionPlan:
    """Lower *process* (flattened on the fly if needed) to an :class:`ExecutionPlan`."""
    return ExecutionPlan(process)


__all__ = [
    "CommitFn",
    "EvalFn",
    "ExecutionPlan",
    "PlanStatistics",
    "TargetPlan",
    "compile_plan",
]
