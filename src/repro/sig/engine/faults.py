"""Deterministic fault injection for the supervised batch executor.

Fault tolerance is only trustworthy when it is *tested* against the faults
it claims to survive, and real crashes are not reproducible test inputs.
This module provides a seeded, picklable description of exactly which
scenario attempts misbehave and how — the harness behind
``tests/sig/test_engine_supervisor.py``, the chaos CI job and the E17
benchmark gate (``benchmarks/test_bench_e17_fault_tolerance.py``):

* a :class:`FaultSpec` names one injected misbehaviour: a hard **crash**
  (``os._exit``, exactly what an OOM kill or a segfaulting user op looks
  like from the parent), a **hang** (an uninterruptible busy wait, like an
  infinite loop in a user operation), an **exception** (an unexpected
  non-simulation error escaping a worker) or a **slowdown** (a straggler,
  which must *not* become a fault — only cost wall-clock);
* a :class:`FaultPlan` is a set of specs addressed by ``(scenario index,
  attempt number)``, so tests can express "scenario 7 crashes on its first
  two attempts and then succeeds" as data;
* :meth:`FaultPlan.seeded` derives a random-but-deterministic plan from an
  integer seed, which is what the hypothesis fuzz suite and the chaos job
  sweep over.

Injection happens at one well-defined point: the start of a scenario
attempt, inside the worker (or inside the in-process supervised loop when
``workers=1``), via :func:`fire_fault`.  In-process execution cannot
survive a real ``os._exit``, so there the crash and hang kinds degrade to
marker exceptions (:class:`InjectedCrash`, a cooperative wait for the
guard's deadline) that the supervisor maps onto the same fault taxonomy —
the degraded mode reports the same :class:`~repro.sig.engine.supervisor.ScenarioFault`
kinds as the pooled one.

The module is import-light (stdlib only) and everything in it pickles, so
plans travel to spawn-based workers unchanged.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

#: The injectable misbehaviours, in the order :meth:`FaultPlan.seeded` draws
#: from.  ``crash`` and ``hang`` surface as ``crash``/``timeout`` faults,
#: ``exception`` as an ``error`` fault, ``slowdown`` must not fault at all.
FAULT_KINDS = ("crash", "hang", "exception", "slowdown")

#: Exit code of an injected crash — distinguishable from a Python traceback
#: exit (1) and reminiscent of SIGABRT's 128+6.
CRASH_EXIT_CODE = 134


class FaultInjected(RuntimeError):
    """The injected *exception* fault: an unexpected non-simulation error."""


class InjectedCrash(Exception):
    """In-process stand-in for a worker crash (``os._exit`` would kill the
    test process); the in-process supervisor maps it to a ``crash`` fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected misbehaviour at chosen ``(scenario, attempt)`` points.

    ``attempts`` lists the attempt numbers (0-based) at which the fault
    fires; ``None`` means *every* attempt — a persistent fault the retry
    ladder cannot recover from.  ``delay`` is the slowdown duration (and
    the polling period of an injected hang).
    """

    kind: str
    scenario: int
    attempts: Optional[Tuple[int, ...]] = (0,)
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {', '.join(FAULT_KINDS)}"
            )

    def matches(self, scenario: int, attempt: int) -> bool:
        """``True`` when this spec fires for *scenario* at *attempt*."""
        if scenario != self.scenario:
            return False
        return self.attempts is None or attempt in self.attempts

    @property
    def persistent(self) -> bool:
        """``True`` when the fault fires at every attempt (unrecoverable)."""
        return self.attempts is None


#: Fault kind -> the :class:`~repro.sig.engine.supervisor.ScenarioFault.kind`
#: a *persistent* injection of it must surface as (``slowdown`` never faults).
EXPECTED_FAULT_KIND = {"crash": "crash", "hang": "timeout", "exception": "error"}


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic set of :class:`FaultSpec` injections for one batch.

    Plans are immutable, picklable and addressed by ``(scenario, attempt)``
    through :meth:`lookup`; at most one spec fires per attempt (the first
    matching spec wins, in declaration order).
    """

    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def lookup(self, scenario: int, attempt: int) -> Optional[FaultSpec]:
        """The spec that fires for *scenario* at *attempt*, or ``None``."""
        for spec in self.specs:
            if spec.matches(scenario, attempt):
                return spec
        return None

    def expected_faults(self) -> Dict[int, str]:
        """``scenario -> fault kind`` for every *persistent* injection.

        These are the scenarios no amount of retrying can save; the E17
        gate asserts each one surfaces as a typed
        :class:`~repro.sig.engine.supervisor.ScenarioFault` of exactly this
        kind (slowdowns are stragglers, not faults, and never appear here).
        """
        expected: Dict[int, str] = {}
        for spec in self.specs:
            if spec.persistent and spec.kind in EXPECTED_FAULT_KIND:
                expected.setdefault(spec.scenario, EXPECTED_FAULT_KIND[spec.kind])
        return expected

    def transient_scenarios(self) -> Tuple[int, ...]:
        """Scenarios with only finite-attempt injections: retries must
        recover them bit-identically."""
        persistent = {spec.scenario for spec in self.specs if spec.persistent}
        return tuple(
            sorted(
                {spec.scenario for spec in self.specs if not spec.persistent}
                - persistent
            )
        )

    @classmethod
    def seeded(
        cls,
        seed: int,
        scenario_count: int,
        rate: float = 0.2,
        kinds: Sequence[str] = FAULT_KINDS,
        persistent_rate: float = 0.3,
        max_attempt: int = 2,
        delay: float = 0.01,
    ) -> "FaultPlan":
        """Derive a random-but-deterministic plan from *seed*.

        Each scenario independently misbehaves with probability *rate*; a
        misbehaving scenario draws a kind from *kinds* and is persistent
        (fires at every attempt) with probability *persistent_rate*,
        otherwise it fires on attempts ``0..k`` for a random ``k <
        max_attempt`` and recovers on the next retry.  The same seed always
        yields the same plan, so fuzz failures replay exactly.
        """
        rng = random.Random(seed)
        specs = []
        for scenario in range(scenario_count):
            if rng.random() >= rate:
                continue
            kind = rng.choice(list(kinds))
            if rng.random() < persistent_rate:
                attempts: Optional[Tuple[int, ...]] = None
            else:
                attempts = tuple(range(rng.randint(1, max(1, max_attempt))))
            specs.append(
                FaultSpec(kind=kind, scenario=scenario, attempts=attempts, delay=delay)
            )
        return cls(specs=tuple(specs))


def fire_fault(spec: FaultSpec, in_process: bool = False, guard=None) -> None:
    """Execute *spec* at its injection point (start of a scenario attempt).

    Pooled workers take the real path: ``crash`` is an immediate
    ``os._exit`` (no Python unwinding — exactly what the supervisor's
    sentinel watch must catch), ``hang`` busy-waits forever in small sleeps
    (the supervisor's wall-clock deadline kills the worker), ``exception``
    raises :class:`FaultInjected`, ``slowdown`` sleeps ``spec.delay`` and
    returns.

    With ``in_process=True`` (the ``workers=1`` degraded mode) the process
    must survive: ``crash`` raises :class:`InjectedCrash` and ``hang``
    waits cooperatively on *guard* (the installed
    :class:`~repro.sig.engine.supervisor.ExecutionGuard`) until its
    deadline raises the timeout; an in-process hang with no deadline to
    cancel it degrades to :class:`FaultInjected` so tests cannot wedge.
    """
    if spec.kind == "slowdown":
        time.sleep(spec.delay)
        return
    if spec.kind == "exception":
        raise FaultInjected(
            f"injected exception for scenario {spec.scenario}"
        )
    if spec.kind == "crash":
        if in_process:
            raise InjectedCrash(f"injected crash for scenario {spec.scenario}")
        os._exit(CRASH_EXIT_CODE)
    # hang
    if in_process:
        if guard is None or guard.deadline is None:
            raise FaultInjected(
                f"injected hang for scenario {spec.scenario} "
                "(no timeout installed to cancel it in-process)"
            )
        while True:
            guard.check_time()  # raises ScenarioTimeout at the deadline
            time.sleep(spec.delay)
    while True:  # pooled: wait for the supervisor's kill
        time.sleep(spec.delay)


__all__ = [
    "CRASH_EXIT_CODE",
    "EXPECTED_FAULT_KIND",
    "FAULT_KINDS",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "fire_fault",
]
