"""Execution-plan simulation engine.

This subpackage sits between scheduling and simulation: it lowers a
flattened :class:`~repro.sig.process.ProcessModel` plus its static
dependency order (:mod:`repro.sig.scheduler_graph`) into a pre-resolved
:class:`ExecutionPlan`, and exposes pluggable :class:`SimulationBackend`
implementations:

* ``reference`` — the original fixed-point interpreter, kept as the oracle;
* ``compiled`` — the plan executor (compile once, run many scenarios);
* ``vectorized`` — numpy kernels over instant blocks for the stateless
  strata of the plan plus scan kernels for delay recurrences and clustered
  residual sweeps (:mod:`repro.sig.engine.vectorized`); soft-depends on
  numpy and degrades to ``compiled`` with a warning when it is missing;
* ``lowered`` — per-equation generated flat Python evaluators replacing the
  plan's closure interpreter (:mod:`repro.sig.engine.lowered`); optional
  ``jit=True`` uses numba (object mode) when importable and warns
  otherwise.

Use :func:`simulate` for a single scenario, :func:`simulate_batch` to run a
whole batch through one prepared backend (``workers=N`` shards it over
processes), and :func:`create_backend` when you want to keep a prepared
model around.  All backends are trace- and error-identical by construction
(enforced by the catalog parity tests), so switching them is purely a
performance decision.

Long-horizon runs stream instead of materialising: pass ``sinks=[...]``
(single runs) or ``sink_factory=...`` (batches) with the
:class:`~repro.sig.sinks.TraceSink` implementations from
:mod:`repro.sig.sinks` / :mod:`repro.sig.vcd`, and memory stays O(signals)
however many instants the scenario has.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..process import ProcessModel
from ..scenario import Scenario
from ..simulator import SimulationTrace
from ..sinks import SinkFactory, SinkOrSinks
from .backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    CompiledBackend,
    ReferenceBackend,
    SimulationBackend,
    backend_names,
    create_backend,
)
from .batch import BatchResult, batch_flow_summary, default_scenario, simulate_batch
from .faults import FaultInjected, FaultPlan, FaultSpec, InjectedCrash
from .lowered import (
    LoweredBackend,
    LoweredExecutionPlan,
    compile_lowered,
    lower_plan_evaluators,
    numba_available,
)
from .parallel import default_worker_count, run_batch_parallel
from .plan import ExecutionPlan, PlanStatistics, TargetPlan, compile_plan
from .supervisor import (
    BudgetExceeded,
    ScenarioBudget,
    ScenarioFault,
    ScenarioTimeout,
    run_batch_supervised,
)
from .vectorized import (
    DEFAULT_BLOCK_SIZE,
    VectorExecutionPlan,
    VectorPlanStatistics,
    VectorizedBackend,
    compile_vectorized,
    numpy_available,
)


def simulate(
    process: ProcessModel,
    scenario: Scenario,
    record: Optional[Iterable[str]] = None,
    strict: bool = True,
    backend: str = DEFAULT_BACKEND,
    sinks: Optional[SinkOrSinks] = None,
    backend_options: Optional[Mapping[str, object]] = None,
    length: Optional[int] = None,
) -> Optional[SimulationTrace]:
    """One-shot helper: prepare the chosen backend and run *scenario*.

    Without *sinks* the recorded flows come back as a
    :class:`~repro.sig.simulator.SimulationTrace`.  With *sinks* (one
    :class:`~repro.sig.sinks.TraceSink` or a list) the run streams each
    instant into them and returns ``None`` — O(signals) memory however long
    the scenario; include a :class:`~repro.sig.sinks.MaterializeSink` to
    also keep the full trace.  *backend_options* are forwarded to the
    backend constructor (e.g. ``{"block_size": 512}`` for ``vectorized``).
    *length* overrides the scenario's default horizon (required when the
    scenario is unbounded, see :class:`~repro.sig.scenario.Scenario`).
    """
    runner = create_backend(
        process, backend=backend, strict=strict, **dict(backend_options or {})
    )
    return runner.run(scenario, record=record, sinks=sinks, length=length)


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "DEFAULT_BLOCK_SIZE",
    "BatchResult",
    "BudgetExceeded",
    "CompiledBackend",
    "ExecutionPlan",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "LoweredBackend",
    "LoweredExecutionPlan",
    "PlanStatistics",
    "ReferenceBackend",
    "ScenarioBudget",
    "ScenarioFault",
    "ScenarioTimeout",
    "SimulationBackend",
    "SinkFactory",
    "SinkOrSinks",
    "TargetPlan",
    "VectorExecutionPlan",
    "VectorPlanStatistics",
    "VectorizedBackend",
    "backend_names",
    "batch_flow_summary",
    "compile_lowered",
    "compile_plan",
    "compile_vectorized",
    "create_backend",
    "default_scenario",
    "default_worker_count",
    "lower_plan_evaluators",
    "numba_available",
    "numpy_available",
    "run_batch_parallel",
    "run_batch_supervised",
    "simulate",
    "simulate_batch",
]
