"""Lowered (codegen) backend: straight-line Python source per equation.

The compiled plan (:mod:`repro.sig.engine.plan`) evaluates each equation
through a tree of nested closures — one Python call per expression node per
instant.  This module removes that dispatch: :func:`lower_plan_evaluators`
walks each equation's expression tree once and **emits flat Python source**
mirroring the plan's closures branch for branch (same status codes, same
warning and exception messages, same evaluation order), then
``exec``-compiles it into a single function per equation.  Operator
applications call the exact :data:`~repro.sig.expressions.STEPWISE_OPERATIONS`
callables and constants are bound by object into the generated module's
globals, so every produced value is the very object the closures would have
produced — bit-identical traces by construction.

:class:`LoweredExecutionPlan` swaps the generated evaluators into an
ordinary :class:`~repro.sig.engine.plan.ExecutionPlan`'s work items (memory
commits keep the plan's closures; they run once per instant, not once per
node).  Equations the generator declines — none of the core node types are
declined, but the generator degrades defensively when its state-slot
numbering cannot be proven to match the plan's — keep their interpreted
closures, so a codegen gap can only cost speed, never parity.

:class:`LoweredBackend` registers the plan in :data:`BACKENDS` under
``"lowered"``.  ``numba`` is an **optional, soft dependency**: with
``jit=True`` each generated function is passed through ``numba.jit``
(object mode) when numba is importable, and the backend emits a
:class:`RuntimeWarning` and runs the plain generated Python otherwise — no
module in :mod:`repro` imports numba unconditionally.

The vectorized backend (:mod:`repro.sig.engine.vectorized`) reuses
:func:`lower_plan_evaluators` for its ``lowered_residue`` option, swapping
generated evaluators into the residual sweep only.
"""

from __future__ import annotations

import warnings as _warnings_module
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..expressions import (
    Cell,
    ClockDifference,
    ClockIntersection,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Expression,
    FunctionApp,
    STEPWISE_OPERATIONS,
    SignalRef,
    Var,
    When,
    WhenClock,
    apply_stepwise,
)
from ..process import ProcessModel
from ..scenario import Scenario
from ..simulator import ClockViolation, SimulationTrace
from ..values import ABSENT
from .backends import BACKENDS, CompiledBackend, SinkOrSinks
from .plan import (
    EvalFn,
    ExecutionPlan,
    PURE_OPERATORS,
    TargetPlan,
    _NOWRITE,
)

#: Message of the :class:`RuntimeWarning` raised when ``jit=True`` is
#: requested but numba is not importable.
NUMBA_FALLBACK_MESSAGE = (
    "numba is not available; the 'lowered' backend runs the generated "
    "Python evaluators without jit compilation"
)

#: Message of the :class:`RuntimeWarning` raised when the generator's
#: state-slot numbering does not reproduce the plan's — the whole lowering
#: is then abandoned and the plan keeps its interpreted closures.
STATE_MISMATCH_MESSAGE = (
    "lowered codegen state-slot numbering does not match the compiled plan; "
    "keeping the interpreted evaluators"
)


def numba_available() -> bool:
    """Is the optional numba jit importable in this interpreter?"""
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


def _maybe_jit(fn):
    """Pass *fn* through ``numba.jit`` (object mode) when possible."""
    try:
        import numba
    except ImportError:  # pragma: no cover - exercised by the no-numba CI leg
        return fn
    try:  # pragma: no cover - requires numba
        return numba.jit(forceobj=True)(fn)
    except Exception:  # pragma: no cover - requires numba
        return fn


def _as_const(expr: Expression) -> Optional[Const]:
    """Mirror the plan compiler's constant folding.

    A pure stepwise application whose operands fold to constants folds to a
    constant; a failing fold returns ``None`` and the application is emitted
    for run-time evaluation, exactly like the interpreter falls through.
    """
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, FunctionApp) and expr.op in PURE_OPERATORS and expr.args:
        args = [_as_const(a) for a in expr.args]
        if all(a is not None for a in args):
            try:
                return Const(apply_stepwise(expr.op, [a.value for a in args]))
            except Exception:
                return None
    return None


def _count_state_slots(expr: Expression) -> int:
    """State slots the plan compiler allocates for *expr*'s subtree."""
    if isinstance(expr, Delay):
        return _count_state_slots(expr.operand) + 1
    if isinstance(expr, Cell):
        return (
            _count_state_slots(expr.operand)
            + _count_state_slots(expr.condition)
            + 1
        )
    if isinstance(expr, FunctionApp):
        return sum(_count_state_slots(a) for a in expr.args)
    if isinstance(expr, When):
        return _count_state_slots(expr.operand) + _count_state_slots(expr.condition)
    if isinstance(expr, WhenClock):
        return 0 if isinstance(expr.condition, Const) else _count_state_slots(expr.condition)
    if isinstance(expr, Default):
        return _count_state_slots(expr.left) + _count_state_slots(expr.right)
    if isinstance(expr, ClockOf):
        return 0 if isinstance(expr.operand, Const) else _count_state_slots(expr.operand)
    if isinstance(expr, (ClockUnion, ClockIntersection, ClockDifference)):
        return _count_state_slots(expr.left) + _count_state_slots(expr.right)
    return 0


def _user_op(op: str) -> Callable[..., Any]:
    """Late-bound application of a user-registered operator, like the plan's."""

    def call(*args: Any) -> Any:
        return apply_stepwise(op, list(args))

    return call


class _Emitter:
    """Emit flat Python statements mirroring one equation's closure tree.

    Status codes appear as integer literals (``0`` UNKNOWN, ``1`` PRESENT,
    ``2`` ABSENT, ``3`` CONST, ``4`` PRESUMED — the plan's codes); constants,
    operator callables and exception types are bound into ``env`` (the
    generated function's globals) by object, never re-created per instant.
    State slots are numbered exactly as the plan compiler numbers them:
    allocation happens at the same position of the same recursion.
    """

    def __init__(self, slot_of: Dict[str, int], state_base: int) -> None:
        self.slot_of = slot_of
        self.state_counter = state_base
        self.lines: List[str] = []
        self.env: Dict[str, Any] = {
            "ABSENT": ABSENT,
            "ClockViolation": ClockViolation,
            "_NOWRITE": _NOWRITE,
        }
        self._serial = 0

    # -- small helpers -------------------------------------------------
    def fresh(self) -> Tuple[str, str]:
        """A fresh ``(code, value)`` local-variable pair."""
        n = self._serial
        self._serial += 1
        return f"c{n}", f"v{n}"

    def bind(self, value: Any, prefix: str) -> str:
        """Bind *value* into the generated globals, returning its name."""
        name = f"_{prefix}{self._serial}"
        self._serial += 1
        self.env[name] = value
        return name

    def line(self, indent: int, text: str) -> None:
        """Append one statement at *indent* levels."""
        self.lines.append("    " * indent + text)

    # -- node emission -------------------------------------------------
    def emit(self, expr: Expression, indent: int) -> Tuple[str, str]:
        """Emit statements evaluating *expr*; return its (code, value) vars."""
        folded = _as_const(expr)
        if folded is not None:
            expr = folded
        if isinstance(expr, SignalRef):
            return self._emit_signal_ref(expr, indent)
        if isinstance(expr, Var):
            return self._emit_var(expr, indent)
        if isinstance(expr, Const):
            return self._emit_const(expr, indent)
        if isinstance(expr, FunctionApp):
            return self._emit_function(expr, indent)
        if isinstance(expr, Delay):
            return self._emit_delay(expr, indent)
        if isinstance(expr, When):
            return self._emit_when(expr, indent)
        if isinstance(expr, WhenClock):
            return self._emit_when_clock(expr, indent)
        if isinstance(expr, Default):
            return self._emit_default(expr, indent)
        if isinstance(expr, Cell):
            return self._emit_cell(expr, indent)
        if isinstance(expr, ClockOf):
            return self._emit_clock_of(expr, indent)
        if isinstance(expr, (ClockUnion, ClockIntersection, ClockDifference)):
            return self._emit_clock_binop(expr, indent)
        raise TypeError(f"cannot lower expression of type {type(expr).__name__}")

    def _emit_signal_ref(self, expr: SignalRef, indent: int) -> Tuple[str, str]:
        c, v = self.fresh()
        s = self.slot_of[expr.name]
        self.line(indent, f"{c} = st[{s}]")
        self.line(indent, f"{v} = vals[{s}] if {c} == 1 else ABSENT")
        return c, v

    def _emit_var(self, expr: Var, indent: int) -> Tuple[str, str]:
        c, v = self.fresh()
        s = self.slot_of[expr.name]
        self.line(indent, f"{c} = st[{s}]")
        self.line(indent, f"if {c} == 1:")
        self.line(indent + 1, f"{v} = vals[{s}]")
        self.line(indent, f"elif {c} == 0 or {c} == 4:")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, "else:")
        self.line(indent + 1, f"{v} = varmem[{s}]")
        self.line(indent + 1, f"if {v} is not _NOWRITE:")
        self.line(indent + 2, f"{c} = 3")
        self.line(indent + 1, "else:")
        self.line(indent + 2, f"{c} = 2")
        self.line(indent + 2, f"{v} = ABSENT")
        return c, v

    def _emit_const(self, expr: Const, indent: int) -> Tuple[str, str]:
        c, v = self.fresh()
        k = self.bind(expr.value, "k")
        self.line(indent, f"{c} = 3")
        self.line(indent, f"{v} = {k}")
        return c, v

    def _emit_function(self, expr: FunctionApp, indent: int) -> Tuple[str, str]:
        op = expr.op
        if op in PURE_OPERATORS:
            func = self.bind(STEPWISE_OPERATIONS[op], "f")
        else:
            func = self.bind(_user_op(op), "f")
        args = [self.emit(a, indent) for a in expr.args]
        c, v = self.fresh()
        if len(args) == 1:
            ac, av = args[0]
            self.line(indent, f"if {ac} == 1:")
            self.line(indent + 1, f"{c} = 1")
            self.line(indent + 1, f"{v} = {func}({av})")
            self.line(indent, f"elif {ac} == 2:")
            self.line(indent + 1, f"{c} = 2")
            self.line(indent + 1, f"{v} = ABSENT")
            self.line(indent, f"elif {ac} == 3:")
            self.line(indent + 1, f"{c} = 3")
            self.line(indent + 1, f"{v} = {func}({av})")
            self.line(indent, "else:")
            self.line(indent + 1, f"{c} = 0")
            self.line(indent + 1, f"{v} = ABSENT")
            return c, v
        suffix = self.bind(
            f": operator {op!r} applied to operands that are not all present",
            "m",
        )
        unknown = " or ".join(f"{ac} == 0 or {ac} == 4" for ac, _ in args)
        present = " or ".join(f"{ac} == 1" for ac, _ in args)
        absent = " or ".join(f"{ac} == 2" for ac, _ in args)
        values = ", ".join(av for _, av in args)
        self.line(indent, f"if {unknown}:")
        self.line(indent + 1, f"{c} = 0")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, f"elif ({present}) and ({absent}):")
        self.line(
            indent + 1,
            f'_m = "clock violation at instant " + str(instant) + {suffix}',
        )
        self.line(indent + 1, "if strict:")
        self.line(indent + 2, "raise ClockViolation(_m)")
        self.line(indent + 1, "warnings.append(_m)")
        self.line(indent + 1, f"{c} = 2")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, f"elif {present}:")
        self.line(indent + 1, f"{c} = 1")
        self.line(indent + 1, f"{v} = {func}({values})")
        self.line(indent, f"elif {absent}:")
        self.line(indent + 1, f"{c} = 2")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, "else:")
        self.line(indent + 1, f"{c} = 3")
        self.line(indent + 1, f"{v} = {func}({values})")
        return c, v

    def _emit_delay(self, expr: Delay, indent: int) -> Tuple[str, str]:
        ac, _av = self.emit(expr.operand, indent)
        k = self.state_counter
        self.state_counter += 1
        init = self.bind(expr.init, "k")
        c, v = self.fresh()
        self.line(indent, f"if {ac} == 0:")
        self.line(indent + 1, f"{c} = 0")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, f"elif {ac} == 2:")
        self.line(indent + 1, f"{c} = 2")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, f"elif {ac} == 3:")
        self.line(indent + 1, f"{c} = 3")
        self.line(indent + 1, f"{v} = {init}")
        self.line(indent, "else:")
        self.line(indent + 1, f"{c} = 1")
        self.line(indent + 1, f"{v} = state[{k}][0]")
        return c, v

    def _emit_when(self, expr: When, indent: int) -> Tuple[str, str]:
        cc, cv = self.emit(expr.condition, indent)
        c, v = self.fresh()
        self.line(indent, f"if {cc} == 0 or {cc} == 4:")
        self.line(indent + 1, f"{c} = 0")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, f"elif {cc} == 2 or not {cv}:")
        self.line(indent + 1, f"{c} = 2")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, "else:")
        oc, ov = self.emit(expr.operand, indent + 1)
        self.line(indent + 1, f"if {oc} == 0 or {oc} == 4:")
        self.line(indent + 2, f"{c} = {oc}")
        self.line(indent + 2, f"{v} = ABSENT")
        self.line(indent + 1, f"elif {oc} == 2:")
        self.line(indent + 2, f"{c} = 2")
        self.line(indent + 2, f"{v} = ABSENT")
        self.line(indent + 1, "else:")
        self.line(indent + 2, f"{c} = 1")
        self.line(indent + 2, f"{v} = {ov}")
        return c, v

    def _emit_when_clock(self, expr: WhenClock, indent: int) -> Tuple[str, str]:
        c, v = self.fresh()
        if isinstance(expr.condition, Const):
            if bool(expr.condition.value):
                self.line(indent, f"{c} = 1")
                self.line(indent, f"{v} = True")
            else:
                self.line(indent, f"{c} = 2")
                self.line(indent, f"{v} = ABSENT")
            return c, v
        cc, cv = self.emit(expr.condition, indent)
        self.line(indent, f"if {cc} == 0 or {cc} == 4:")
        self.line(indent + 1, f"{c} = 0")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, f"elif ({cc} == 1 or {cc} == 3) and {cv}:")
        self.line(indent + 1, f"{c} = 1")
        self.line(indent + 1, f"{v} = True")
        self.line(indent, "else:")
        self.line(indent + 1, f"{c} = 2")
        self.line(indent + 1, f"{v} = ABSENT")
        return c, v

    def _emit_default(self, expr: Default, indent: int) -> Tuple[str, str]:
        lc, lv = self.emit(expr.left, indent)
        c, v = self.fresh()
        self.line(indent, f"if {lc} == 0:")
        self.line(indent + 1, f"{c} = 0")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, f"elif {lc} == 1:")
        self.line(indent + 1, f"{c} = 1")
        self.line(indent + 1, f"{v} = {lv}")
        self.line(indent, f"elif {lc} == 4:")
        self.line(indent + 1, f"{c} = 4")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, "else:")
        rc, rv = self.emit(expr.right, indent + 1)
        self.line(indent + 1, f"if {lc} == 3:")
        self.line(indent + 2, f"if {rc} == 0:")
        self.line(indent + 3, f"{c} = 0")
        self.line(indent + 3, f"{v} = ABSENT")
        self.line(indent + 2, f"elif {rc} == 1 or {rc} == 3:")
        self.line(indent + 3, f"{c} = {rc}")
        self.line(indent + 3, f"{v} = {lv}")
        self.line(indent + 2, f"elif {rc} == 4:")
        self.line(indent + 3, f"{c} = 4")
        self.line(indent + 3, f"{v} = ABSENT")
        self.line(indent + 2, "else:")
        self.line(indent + 3, f"{c} = 3")
        self.line(indent + 3, f"{v} = {lv}")
        self.line(indent + 1, "else:")
        self.line(indent + 2, f"{c} = {rc}")
        self.line(indent + 2, f"{v} = {rv}")
        return c, v

    def _emit_cell(self, expr: Cell, indent: int) -> Tuple[str, str]:
        oc, ov = self.emit(expr.operand, indent)
        cc, cv = self.emit(expr.condition, indent)
        k = self.state_counter
        self.state_counter += 1
        c, v = self.fresh()
        self.line(indent, f"if {oc} == 0 or {cc} == 0 or {cc} == 4:")
        self.line(indent + 1, f"{c} = 0")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, f"elif {oc} == 4:")
        self.line(indent + 1, f"{c} = 4")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, f"elif {oc} == 1:")
        self.line(indent + 1, f"{c} = 1")
        self.line(indent + 1, f"{v} = {ov}")
        self.line(indent, f"elif ({cc} == 1 or {cc} == 3) and {cv}:")
        self.line(indent + 1, f"{c} = 1")
        self.line(indent + 1, f"{v} = state[{k}][0]")
        self.line(indent, "else:")
        self.line(indent + 1, f"{c} = 2")
        self.line(indent + 1, f"{v} = ABSENT")
        return c, v

    def _emit_clock_of(self, expr: ClockOf, indent: int) -> Tuple[str, str]:
        c, v = self.fresh()
        if isinstance(expr.operand, Const):
            self.line(indent, f"{c} = 2")
            self.line(indent, f"{v} = ABSENT")
            return c, v
        oc, _ov = self.emit(expr.operand, indent)
        self.line(indent, f"if {oc} == 0:")
        self.line(indent + 1, f"{c} = 0")
        self.line(indent + 1, f"{v} = ABSENT")
        self.line(indent, f"elif {oc} == 1 or {oc} == 4:")
        self.line(indent + 1, f"{c} = 1")
        self.line(indent + 1, f"{v} = True")
        self.line(indent, "else:")
        self.line(indent + 1, f"{c} = 2")
        self.line(indent + 1, f"{v} = ABSENT")
        return c, v

    def _emit_clock_binop(self, expr: Expression, indent: int) -> Tuple[str, str]:
        lc, _lv = self.emit(expr.left, indent)
        rc, _rv = self.emit(expr.right, indent)
        c, v = self.fresh()
        if isinstance(expr, ClockUnion):
            self.line(
                indent,
                f"if {lc} == 1 or {lc} == 4 or {rc} == 1 or {rc} == 4:",
            )
            self.line(indent + 1, f"{c} = 1")
            self.line(indent + 1, f"{v} = True")
            self.line(indent, f"elif {lc} == 0 or {rc} == 0:")
            self.line(indent + 1, f"{c} = 0")
            self.line(indent + 1, f"{v} = ABSENT")
            self.line(indent, "else:")
            self.line(indent + 1, f"{c} = 2")
            self.line(indent + 1, f"{v} = ABSENT")
        elif isinstance(expr, ClockIntersection):
            self.line(indent, f"if {lc} == 2 or {rc} == 2:")
            self.line(indent + 1, f"{c} = 2")
            self.line(indent + 1, f"{v} = ABSENT")
            self.line(indent, f"elif {lc} == 0 or {rc} == 0:")
            self.line(indent + 1, f"{c} = 0")
            self.line(indent + 1, f"{v} = ABSENT")
            self.line(
                indent,
                f"elif ({lc} == 1 or {lc} == 4) and ({rc} == 1 or {rc} == 4):",
            )
            self.line(indent + 1, f"{c} = 1")
            self.line(indent + 1, f"{v} = True")
            self.line(indent, "else:")
            self.line(indent + 1, f"{c} = 2")
            self.line(indent + 1, f"{v} = ABSENT")
        else:  # ClockDifference
            self.line(indent, f"if {lc} == 2:")
            self.line(indent + 1, f"{c} = 2")
            self.line(indent + 1, f"{v} = ABSENT")
            self.line(indent, f"elif {lc} == 0 or {rc} == 0:")
            self.line(indent + 1, f"{c} = 0")
            self.line(indent + 1, f"{v} = ABSENT")
            self.line(
                indent,
                f"elif ({lc} == 1 or {lc} == 4) and not ({rc} == 1 or {rc} == 4):",
            )
            self.line(indent + 1, f"{c} = 1")
            self.line(indent + 1, f"{v} = True")
            self.line(indent, "else:")
            self.line(indent + 1, f"{c} = 2")
            self.line(indent + 1, f"{v} = ABSENT")
        return c, v


def lower_expression(
    expr: Expression, slot_of: Dict[str, int], state_base: int, target: str = "?"
) -> EvalFn:
    """Generate and compile one equation's flat evaluator.

    The returned function has the plan's :data:`~repro.sig.engine.plan.EvalFn`
    signature and carries its source on ``__lowered_source__`` for
    inspection.  *state_base* is the plan's state-slot counter at the point
    this equation was compiled.
    """
    emitter = _Emitter(slot_of, state_base)
    code_var, value_var = emitter.emit(expr, 1)
    emitter.line(1, f"return {code_var}, {value_var}")
    source = (
        "def _lowered(st, vals, state, varmem, instant, warnings, strict):\n"
        + "\n".join(emitter.lines)
        + "\n"
    )
    namespace = dict(emitter.env)
    exec(compile(source, f"<lowered:{target}>", "exec"), namespace)
    fn = namespace["_lowered"]
    fn.__lowered_source__ = source
    fn.__lowered_state_slots__ = emitter.state_counter - state_base
    return fn


def lower_plan_evaluators(
    plan: ExecutionPlan, jit: bool = False
) -> Dict[str, List[EvalFn]]:
    """Generate lowered evaluators for every equation of *plan*.

    Returns ``{target_name: [evaluator, ...]}`` in the plan's per-target
    definition order, covering only targets with at least one successfully
    generated evaluator; a failed equation keeps the plan's interpreted
    closure in its list position.  Returns ``{}`` (with a
    :class:`RuntimeWarning`) if the generator's state-slot numbering cannot
    be proven identical to the plan's — the caller then keeps the plan
    untouched.
    """
    process = plan.process
    generated: Dict[str, List[Optional[EvalFn]]] = {}
    state_counter = 0
    consistent = True
    for eq in process.equations:
        base = state_counter
        expected = _count_state_slots(eq.expr)
        state_counter += expected
        fn: Optional[EvalFn] = None
        try:
            fn = lower_expression(eq.expr, plan.slot_of, base, eq.target)
        except Exception:
            fn = None
        if fn is not None and fn.__lowered_state_slots__ != expected:
            consistent = False
            fn = None
        generated.setdefault(eq.target, []).append(fn)
    if not consistent or state_counter != len(plan._state_init):
        _warnings_module.warn(STATE_MISMATCH_MESSAGE, RuntimeWarning, stacklevel=2)
        return {}
    result: Dict[str, List[EvalFn]] = {}
    for target in plan.targets:
        fns = generated.get(target.name)
        if fns is None or all(fn is None for fn in fns):
            continue
        if len(fns) != len(target.evaluators):
            continue
        result[target.name] = [
            (_maybe_jit(fn) if jit else fn) if fn is not None else original
            for fn, original in zip(fns, target.evaluators)
        ]
    return result


class LoweredExecutionPlan(ExecutionPlan):
    """An execution plan whose evaluators are generated flat functions.

    Compiles the ordinary plan first (memory commits, sync groups, sweep
    order and the pure fallback all come from it), then swaps each target's
    evaluators for the generated ones.  ``lowered_targets`` /
    ``interpreted_targets`` count how the swap went.
    """

    def __init__(self, process: ProcessModel, jit: bool = False) -> None:
        super().__init__(process)
        self.jit = jit
        lowered_map = lower_plan_evaluators(self, jit=jit)
        self.lowered_targets = 0
        self.interpreted_targets = 0
        new_work = []
        for slot, is_declared, _single, target in self._work:
            evaluators = lowered_map.get(target.name)
            if evaluators is None:
                self.interpreted_targets += 1
                new_work.append((slot, is_declared, _single, target))
                continue
            clone = TargetPlan(target.name, target.slot, target.declared, evaluators)
            single = evaluators[0] if len(evaluators) == 1 else None
            new_work.append((slot, is_declared, single, clone))
            self.lowered_targets += 1
        self._work = tuple(new_work)

    # A lowered plan travels as its process model plus the jit flag and
    # regenerates on arrival, like every other plan/backend in the engine.
    def __getstate__(self) -> Dict[str, Any]:
        return {"process": self.process, "jit": self.jit}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__init__(state["process"], jit=state.get("jit", False))


def compile_lowered(process: ProcessModel, jit: bool = False) -> LoweredExecutionPlan:
    """Compile *process* into a plan with generated flat evaluators."""
    return LoweredExecutionPlan(process, jit=jit)


class LoweredBackend(CompiledBackend):
    """Codegen executor: the compiled plan with generated flat evaluators.

    Construction options (ignored by the other backends): ``jit`` — pass
    the generated evaluators through ``numba.jit`` (object mode) when numba
    is importable; without numba the backend warns (``RuntimeWarning``) and
    runs the plain generated Python, which is still measurably faster than
    the closure interpreter.  Traces, warnings and errors are bit-identical
    to the ``compiled``/``reference`` backends by construction.
    """

    name = "lowered"

    def __init__(
        self,
        process: ProcessModel,
        strict: bool = True,
        jit: bool = False,
        **options: Any,
    ) -> None:
        SimulationBackendInit = super(CompiledBackend, self)
        SimulationBackendInit.__init__(process, strict, **options)
        self.jit = jit
        if jit and not numba_available():
            _warnings_module.warn(NUMBA_FALLBACK_MESSAGE, RuntimeWarning, stacklevel=2)
        self._plan = LoweredExecutionPlan(process, jit=jit)

    def run(
        self,
        scenario: Scenario,
        record=None,
        sinks: Optional[SinkOrSinks] = None,
        length: Optional[int] = None,
    ) -> Optional[SimulationTrace]:
        """Execute one scenario over the lowered plan (see
        :meth:`~repro.sig.engine.backends.SimulationBackend.run`)."""
        return self._plan.run(
            scenario, record=record, strict=self.strict, sinks=sinks, length=length
        )

    # Pickling: process + options, regenerate on arrival (the generated
    # functions themselves cannot travel to spawn-based workers).
    def __getstate__(self) -> Dict[str, Any]:
        return {"process": self._plan.process, "strict": self.strict, "jit": self.jit}

    def __setstate__(self, payload: Dict[str, Any]) -> None:
        self.__init__(
            payload["process"], strict=payload["strict"], jit=payload["jit"]
        )


#: Register in the backend registry (imported by ``repro.sig.engine``).
BACKENDS[LoweredBackend.name] = LoweredBackend


__all__ = [
    "LoweredBackend",
    "LoweredExecutionPlan",
    "NUMBA_FALLBACK_MESSAGE",
    "STATE_MISMATCH_MESSAGE",
    "compile_lowered",
    "lower_expression",
    "lower_plan_evaluators",
    "numba_available",
]
