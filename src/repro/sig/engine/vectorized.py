"""Vectorized block-execution backend: numpy kernels over instant blocks.

The compiled execution plan (:mod:`repro.sig.engine.plan`) removed the
per-instant *bookkeeping* of the reference interpreter, but it still pays
one Python closure tree per equation per instant, so simulation cost stays
``O(instants x equations)`` in interpreter dispatch.  This module removes
that dispatch for the part of the model that does not need it.

A :func:`compile_vectorized` pass partitions the plan's equations into
four strata.  *Vectorisable* targets are single-definition *declared*
targets whose expressions are built only from pure stepwise operators,
sampling (``when``), merge (``default``), clock operators, constants and
signal reads; they are compiled to columnar numpy kernels — native
float64/bool ufuncs where the operand columns are runtime-validated to hold
exactly Python ``float``/``bool`` values, ``np.frompyfunc`` over the exact
:data:`~repro.sig.expressions.STEPWISE_OPERATIONS` callables otherwise —
and evaluated for a whole **instant block** at once:

* the **pre-sweep stratum** reads only scenario inputs, non-target signals
  and other pre-stratum targets, and runs before any per-instant work;
* the **recurrence stratum** holds delay/feedback pairs ``z = y $ 1``,
  ``y = f(z, ...)`` whose step is a pure value expression over z and
  block-available operands: they are executed as **scan kernels** over the
  block (an ``np.add.accumulate`` prefix scan for affine steps
  ``y = z ± e``, a tight generated scalar loop otherwise), unblocking the
  pre-sweep targets that read them; promotion requires a synchronisation
  group proving the pair's clock, and any run-time clock disagreement
  falls back to the interpreted sweep for the block;
* the **residual sweep** is everything stateful or order-sensitive —
  delays, cells, shared variables, multi-definition targets, undeclared
  targets, user-registered operators, instantaneous cycles — and runs
  through the plan's ordinary per-instant sweep, reading the pre-filled
  vectorised columns.  With ``cluster_residue=True`` (default) the sweep
  is partitioned into independent **residue clusters** (connected
  components of the read/synchronisation graph), each swept separately
  with its own worklist; a stateless cluster whose external inputs are
  unchanged from the previous instant is **skipped** by copying its
  previous row.  With ``lowered_residue=True`` the residual work items
  run the generated flat evaluators of :mod:`repro.sig.engine.lowered`
  instead of the plan's closure trees;
* the **post-sweep stratum** holds vectorisable targets that nothing in
  the residue observes (no readers outside the stratum, no ``^=``
  membership, no shared-variable reads); it runs block-wise after the
  residual sweep, over the written-back residual columns.

Bit-identity with the ``compiled``/``reference`` backends is guaranteed by
construction on the warning-free path (both compute the same unique fixed
point) and by **fallback** everywhere else: the block executor detects every
situation in which the reference trajectory is observable — a clock
violation inside a vectorised expression, a bare-constant definition, any
warning or simulation error raised by the residual sweep — rewinds the
block to its entry state and replays it through the pure per-instant sweep,
which reproduces warnings, errors and partial sink output in exact
reference order.  Sinks see instants one by one either way
(:meth:`~repro.sig.sinks.TraceSink.on_instant` is replayed per instant
after a block validates), so every :class:`~repro.sig.sinks.TraceSink`
works unchanged.

``numpy`` is a **soft dependency**: when it is not importable the
:class:`VectorizedBackend` degrades to the compiled plan executor with a
:class:`RuntimeWarning` — no module in :mod:`repro` imports numpy at the
top level unconditionally.
"""

from __future__ import annotations

import warnings as _warnings_module
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

try:  # soft dependency: the whole backend degrades gracefully without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

from ..expressions import (
    ClockDifference,
    ClockIntersection,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Expression,
    FunctionApp,
    STEPWISE_OPERATIONS,
    SignalRef,
    Var,
    When,
    WhenClock,
    free_signals,
)
from ..process import ProcessModel
from ..scenario import Scenario
from ..simulator import SimulationTrace
from ..values import ABSENT, Flow, SignalKind
from .backends import BACKENDS, SimulationBackend, SinkOrSinks
from .plan import (
    CONST,
    ExecutionPlan,
    PRESENT,
    PRESUMED,
    PURE_OPERATORS,
    TargetPlan,
    UNKNOWN,
    _ABSENT_ST,
    compile_plan,
)

#: Default number of instants evaluated per block.
DEFAULT_BLOCK_SIZE = 1024

#: Message of the :class:`RuntimeWarning` raised when numpy is unavailable.
NUMPY_FALLBACK_MESSAGE = (
    "numpy is not available; the 'vectorized' backend falls back to the "
    "'compiled' execution plan"
)


def numpy_available() -> bool:
    """``True`` when numpy could be imported (the kernels are usable)."""
    return _np is not None


class _FallbackBlock(Exception):
    """Internal signal: this block must be replayed through the pure sweep."""


_BOOL_KERNEL = None


def _bool_kernel():
    """The cached ``frompyfunc(bool)`` kernel used for sampling conditions."""
    global _BOOL_KERNEL
    if _BOOL_KERNEL is None:
        _BOOL_KERNEL = _np.frompyfunc(bool, 1, 1)
    return _BOOL_KERNEL


#: Runtime *kind* of a value column: generic Python objects, native float64
#: (every present value is exactly a Python ``float``) or native bool (every
#: present value is exactly a Python ``bool`` — or ``True`` for events).
#: Typed columns run native numpy kernels; ``.tolist()`` at the conversion
#: boundary turns their entries back into the exact Python objects the
#: interpreter would have produced, so traces stay bit-identical.
_OBJ, _FLT, _BOOL = 0, 1, 2

_TYPED_OPS: Optional[Dict[str, Tuple[Any, int, int]]] = None


def _np_min(a, b):
    """Python ``min(a, b)`` over float64 columns, NaN ordering included."""
    return _np.where(b < a, b, a)


def _np_max(a, b):
    """Python ``max(a, b)`` over float64 columns, NaN ordering included."""
    return _np.where(b > a, b, a)


def _typed_ops() -> Dict[str, Tuple[Any, int, int]]:
    """``op -> (numpy impl, operand kind, result kind)`` for the native
    kernels whose results are element-for-element identical to the Python
    stepwise operators (``/`` and ``%`` are excluded: they raise on zero
    divisors where numpy would not)."""
    global _TYPED_OPS
    if _TYPED_OPS is None:
        _TYPED_OPS = {
            "+": (_np.add, _FLT, _FLT),
            "-": (_np.subtract, _FLT, _FLT),
            "*": (_np.multiply, _FLT, _FLT),
            "neg": (_np.negative, _FLT, _FLT),
            "abs": (_np.absolute, _FLT, _FLT),
            "min": (_np_min, _FLT, _FLT),
            "max": (_np_max, _FLT, _FLT),
            "<": (_np.less, _FLT, _BOOL),
            "<=": (_np.less_equal, _FLT, _BOOL),
            ">": (_np.greater, _FLT, _BOOL),
            ">=": (_np.greater_equal, _FLT, _BOOL),
            "=": (_np.equal, _FLT, _BOOL),
            "/=": (_np.not_equal, _FLT, _BOOL),
            "and": (_np.logical_and, _BOOL, _BOOL),
            "or": (_np.logical_or, _BOOL, _BOOL),
            "xor": (_np.logical_xor, _BOOL, _BOOL),
            "not": (_np.logical_not, _BOOL, _BOOL),
        }
    return _TYPED_OPS


def _object_column(values, kind):
    """Coerce a typed column to object dtype holding plain Python values."""
    if kind == _OBJ:
        return values
    return _np.array(values.tolist(), dtype=object)


class _BlockContext:
    """Per-block evaluation state shared by all vector kernels.

    ``st``/``vals`` are the ``(block, slots)`` status / value arrays of the
    block being evaluated; statuses are small integers (the plan's codes),
    values are *object*-dtype so every produced value stays the exact Python
    object the interpreter would have produced.  ``typed`` additionally maps
    a slot to its native float64/bool column when one exists (validated
    inputs, typed kernel results) — entries are only meaningful where the
    slot's status is present.
    """

    __slots__ = ("st", "vals", "size", "typed", "_true_bool", "_status_cache")

    def __init__(self, st, vals, size: int) -> None:
        self.st = st
        self.vals = vals
        self.size = size
        self.typed: Dict[int, Any] = {}
        self._true_bool = None
        self._status_cache: Dict[int, Any] = {}

    def true_bool(self):
        """Shared read-only native bool column holding ``True`` everywhere."""
        if self._true_bool is None:
            self._true_bool = _np.ones(self.size, dtype=bool)
        return self._true_bool

    def full_status(self, code: int):
        """Shared read-only status column holding *code* everywhere."""
        cached = self._status_cache.get(code)
        if cached is None:
            cached = _np.full(self.size, code, dtype=_np.int64)
            self._status_cache[code] = cached
        return cached

    def absent_values(self):
        """A fresh object column pre-filled with ``ABSENT``."""
        col = _np.empty(self.size, dtype=object)
        col.fill(ABSENT)
        return col

    def truthy(self, values, kind, mask):
        """Boolean column: ``bool(values[i])`` where *mask*, ``False`` elsewhere."""
        if kind == _BOOL:
            return mask & values
        if kind == _FLT:
            # bool(x) for a float is x != 0; NaN is truthy in both worlds.
            return mask & (values != 0.0)
        out = _np.zeros(self.size, dtype=bool)
        idx = mask.nonzero()[0]
        if idx.size:
            out[idx] = _bool_kernel()(values[idx]).astype(bool)
        return out


#: A compiled vector node: ``(ctx, eval_mask) -> (status_col, value_col,
#: kind)``.  ``eval_mask`` marks the instants at which the reference closure
#: would be *evaluated* (short-circuiting of ``when``/``default`` narrows
#: it); the returned status column is meaningful within that mask, the value
#: column wherever the status is present or constant within it.
VectorFn = Callable[[Any, Any], Tuple[Any, Any, int]]


def _structurally_vectorizable(expr: Expression) -> bool:
    """Shape check: no state, no user operators, no shared variables."""
    if isinstance(expr, (SignalRef, Const)):
        return True
    if isinstance(expr, FunctionApp):
        return (
            bool(expr.args)
            and expr.op in PURE_OPERATORS
            and all(_structurally_vectorizable(a) for a in expr.args)
        )
    if isinstance(expr, When):
        return _structurally_vectorizable(expr.operand) and _structurally_vectorizable(
            expr.condition
        )
    if isinstance(expr, WhenClock):
        return _structurally_vectorizable(expr.condition)
    if isinstance(expr, Default):
        return _structurally_vectorizable(expr.left) and _structurally_vectorizable(
            expr.right
        )
    if isinstance(expr, ClockOf):
        return _structurally_vectorizable(expr.operand)
    if isinstance(expr, (ClockUnion, ClockIntersection, ClockDifference)):
        return _structurally_vectorizable(expr.left) and _structurally_vectorizable(
            expr.right
        )
    # Delay, Cell, Var and anything unknown stay in the residual sweep.
    return False


def _may_be_const(expr: Expression) -> bool:
    """Can this (vectorisable) expression evaluate to a *constant* status?

    A top-level constant status makes the plan emit the bare-constant
    warning at that instant, which would force a fallback on every block
    containing one; such targets are cheaper to keep in the residual sweep
    from the start.  Conservative over-approximation.
    """
    if isinstance(expr, Const):
        return True
    if isinstance(expr, SignalRef):
        return False
    if isinstance(expr, FunctionApp):
        return all(_may_be_const(a) for a in expr.args)
    if isinstance(expr, Default):
        return _may_be_const(expr.left) or _may_be_const(expr.right)
    # When / WhenClock / ClockOf / clock set operators are present-or-absent.
    return False


class _VectorCompiler:
    """Compile vectorisable expressions into columnar numpy kernels.

    Each kernel mirrors the corresponding closure of
    :class:`~repro.sig.engine.plan._Compiler` over a whole instant block,
    including the exact short-circuit structure (the ``eval_mask``), and
    raises :class:`_FallbackBlock` whenever the closure would have emitted a
    warning — the block is then replayed through the pure sweep.

    Kernels dispatch on the runtime *kind* of their operand columns:
    float64/bool columns (validated scenario inputs, earlier typed results)
    run native numpy ufuncs, everything else runs ``frompyfunc`` over the
    exact :data:`~repro.sig.expressions.STEPWISE_OPERATIONS` callables.
    """

    def __init__(self, slot_of: Dict[str, int]) -> None:
        self.slot_of = slot_of

    def compile(self, expr: Expression) -> VectorFn:
        if isinstance(expr, SignalRef):
            s = self.slot_of[expr.name]

            def ev_ref(ctx, em, _s=s):
                typed = ctx.typed.get(_s)
                if typed is None:
                    return ctx.st[:, _s], ctx.vals[:, _s], _OBJ
                return ctx.st[:, _s], typed[0], typed[1]

            return ev_ref

        if isinstance(expr, Const):
            value = expr.value
            # NaN stays on the object path: the closure hands out the *same*
            # object every instant, and a typed column would re-materialise
            # it through ``.tolist()``, breaking ``==``-comparability of the
            # produced flows (NaN compares equal only by identity).
            if type(value) is float and value == value:
                def ev_const_f(ctx, em, _v=value):
                    return ctx.full_status(CONST), _np.full(ctx.size, _v), _FLT

                return ev_const_f
            if type(value) is bool:
                def ev_const_b(ctx, em, _v=value):
                    return (
                        ctx.full_status(CONST),
                        _np.full(ctx.size, _v, dtype=bool),
                        _BOOL,
                    )

                return ev_const_b

            def ev_const(ctx, em, _v=value):
                vals = _np.empty(ctx.size, dtype=object)
                vals.fill(_v)
                return ctx.full_status(CONST), vals, _OBJ

            return ev_const

        if isinstance(expr, FunctionApp):
            return self._compile_function(expr)
        if isinstance(expr, When):
            return self._compile_when(expr)
        if isinstance(expr, WhenClock):
            return self._compile_when_clock(expr)
        if isinstance(expr, Default):
            return self._compile_default(expr)
        if isinstance(expr, ClockOf):
            return self._compile_clock_of(expr)
        if isinstance(expr, (ClockUnion, ClockIntersection, ClockDifference)):
            return self._compile_clock_binop(expr)
        raise TypeError(f"cannot vectorise expression of type {type(expr).__name__}")

    def _compile_function(self, expr: FunctionApp) -> VectorFn:
        # Constant operands travel as Python scalars (ufuncs and frompyfunc
        # broadcast them), so ``x * 0.6``-style stages cost one kernel
        # application and no constant columns.  A constant operand has
        # status CONST at every instant, so it never participates in
        # presence conflicts either.
        func = STEPWISE_OPERATIONS[expr.op]
        kernel = _np.frompyfunc(func, len(expr.args), 1)
        args: List[Tuple[bool, Any]] = [
            (True, a.value) if isinstance(a, Const) else (False, self.compile(a))
            for a in expr.args
        ]
        dynamic = [index for index, (is_const, _) in enumerate(args) if not is_const]

        typed = _typed_ops().get(expr.op)
        if typed is not None and len(expr.args) <= 2:
            typed_impl, operand_kind, result_kind = typed
            const_type = float if operand_kind == _FLT else bool
            if any(
                is_const and type(value) is not const_type for is_const, value in args
            ):
                typed_impl = None  # a constant of the wrong type: object path
        else:
            typed_impl = operand_kind = result_kind = None

        if not dynamic:
            # All-constant application (the plan folds these, the closure
            # applies them anew every instant): constant status, one shared
            # application per block.  A raising application propagates and
            # falls the block back, exactly like the closure would raise.
            values = tuple(value for _, value in args)

            def ev_folded(ctx, em, _values=values):
                if not bool(em.any()):
                    return ctx.full_status(CONST), ctx.absent_values(), _OBJ
                out = _np.empty(ctx.size, dtype=object)
                out.fill(func(*_values))
                return ctx.full_status(CONST), out, _OBJ

            return ev_folded

        if len(dynamic) == 1:
            # One dynamic operand: its status *is* the result status (the
            # constants contribute neither presence nor absence, so no
            # conflict is possible) and the kernel maps over it directly.
            dyn_index = dynamic[0]
            dyn_fn = args[dyn_index][1]
            arg_spec = tuple(value for _, value in args)

            def ev_single(ctx, em, _dyn=dyn_index, _spec=arg_spec):
                status, values, kind = dyn_fn(ctx, em)
                if typed_impl is not None and kind == operand_kind:
                    applied = [
                        values if i == _dyn else _spec[i] for i in range(len(_spec))
                    ]
                    return status, typed_impl(*applied), result_kind
                idx = (em & (status != _ABSENT_ST)).nonzero()[0]
                obj_values = _object_column(values, kind)
                if idx.size == ctx.size:
                    applied = [
                        obj_values if i == _dyn else _spec[i]
                        for i in range(len(_spec))
                    ]
                    return status, kernel(*applied), _OBJ
                out = ctx.absent_values()
                if idx.size:
                    applied = [
                        obj_values[idx] if i == _dyn else _spec[i]
                        for i in range(len(_spec))
                    ]
                    out[idx] = kernel(*applied)
                return status, out, _OBJ

            return ev_single

        dynamic_set = frozenset(dynamic)

        def ev_multi(ctx, em):
            columns: List[Any] = []
            kinds: List[int] = []
            has_present = has_absent = None
            for is_const, value in args:
                if is_const:
                    columns.append(value)
                    kinds.append(-1)
                    continue
                status, values, kind = value(ctx, em)
                columns.append(values)
                kinds.append(kind)
                present = status == PRESENT
                absent = status == _ABSENT_ST
                has_present = present if has_present is None else (has_present | present)
                has_absent = absent if has_absent is None else (has_absent | absent)
            if bool((em & has_present & has_absent).any()):
                # The closure would warn (or raise) about operands that are
                # not all present: replay the block in reference order.
                raise _FallbackBlock("stepwise operands not all present")
            status = _np.where(
                has_present, PRESENT, _np.where(has_absent, _ABSENT_ST, CONST)
            )
            if typed_impl is not None and all(
                kinds[i] == operand_kind for i in dynamic_set
            ):
                return status, typed_impl(*columns), result_kind
            columns = [
                _object_column(column, kinds[i]) if i in dynamic_set else column
                for i, column in enumerate(columns)
            ]
            idx = (em & ~has_absent).nonzero()[0]
            if idx.size == ctx.size:
                return status, kernel(*columns), _OBJ
            out = ctx.absent_values()
            if idx.size:
                out[idx] = kernel(
                    *[
                        column[idx] if i in dynamic_set else column
                        for i, column in enumerate(columns)
                    ]
                )
            return status, out, _OBJ

        return ev_multi

    def _compile_when(self, expr: When) -> VectorFn:
        operand = self.compile(expr.operand)
        condition = self.compile(expr.condition)

        def ev(ctx, em):
            cond_status, cond_vals, cond_kind = condition(ctx, em)
            candidates = em & (cond_status != _ABSENT_ST)
            sampled = ctx.truthy(cond_vals, cond_kind, candidates)
            op_status, op_vals, op_kind = operand(ctx, sampled)
            status = _np.where(
                sampled & (op_status != _ABSENT_ST), PRESENT, _ABSENT_ST
            )
            return status, op_vals, op_kind

        return ev

    def _compile_when_clock(self, expr: WhenClock) -> VectorFn:
        if isinstance(expr.condition, Const):
            if bool(expr.condition.value):
                def ev_true(ctx, em):
                    return ctx.full_status(PRESENT), ctx.true_bool(), _BOOL

                return ev_true

            def ev_false(ctx, em):
                return ctx.full_status(_ABSENT_ST), ctx.true_bool(), _BOOL

            return ev_false

        condition = self.compile(expr.condition)

        def ev(ctx, em):
            cond_status, cond_vals, cond_kind = condition(ctx, em)
            candidates = em & (cond_status != _ABSENT_ST)
            sampled = ctx.truthy(cond_vals, cond_kind, candidates)
            return _np.where(sampled, PRESENT, _ABSENT_ST), ctx.true_bool(), _BOOL

        return ev

    def _compile_default(self, expr: Default) -> VectorFn:
        left = self.compile(expr.left)
        right = self.compile(expr.right)

        def ev(ctx, em):
            left_status, left_vals, left_kind = left(ctx, em)
            left_present = left_status == PRESENT
            right_status, right_vals, right_kind = right(ctx, em & ~left_present)
            left_const = left_status == CONST
            status = _np.where(
                left_present,
                PRESENT,
                _np.where(
                    left_const & (right_status == _ABSENT_ST), CONST, right_status
                ),
            )
            if left_kind != right_kind:
                left_vals = _object_column(left_vals, left_kind)
                right_vals = _object_column(right_vals, right_kind)
                left_kind = _OBJ
            values = _np.where(left_present | left_const, left_vals, right_vals)
            return status, values, left_kind

        return ev

    def _compile_clock_of(self, expr: ClockOf) -> VectorFn:
        if isinstance(expr.operand, Const):
            def ev_const(ctx, em):
                return ctx.full_status(_ABSENT_ST), ctx.true_bool(), _BOOL

            return ev_const

        operand = self.compile(expr.operand)

        def ev(ctx, em):
            status, _values, _kind = operand(ctx, em)
            return (
                _np.where(status == PRESENT, PRESENT, _ABSENT_ST),
                ctx.true_bool(),
                _BOOL,
            )

        return ev

    def _compile_clock_binop(self, expr: Expression) -> VectorFn:
        left = self.compile(expr.left)
        right = self.compile(expr.right)

        if isinstance(expr, ClockUnion):
            def ev(ctx, em):
                left_status, _lv, _lk = left(ctx, em)
                right_status, _rv, _rk = right(ctx, em)
                present = (left_status == PRESENT) | (right_status == PRESENT)
                return _np.where(present, PRESENT, _ABSENT_ST), ctx.true_bool(), _BOOL

        elif isinstance(expr, ClockIntersection):
            def ev(ctx, em):
                left_status, _lv, _lk = left(ctx, em)
                right_status, _rv, _rk = right(ctx, em)
                present = (left_status == PRESENT) & (right_status == PRESENT)
                return _np.where(present, PRESENT, _ABSENT_ST), ctx.true_bool(), _BOOL

        else:  # ClockDifference
            def ev(ctx, em):
                left_status, _lv, _lk = left(ctx, em)
                right_status, _rv, _rk = right(ctx, em)
                present = (left_status == PRESENT) & (right_status != PRESENT)
                return _np.where(present, PRESENT, _ABSENT_ST), ctx.true_bool(), _BOOL

        return ev


def _pure_value_expr(expr: Expression) -> bool:
    """Shape check for recurrence steps: a pure stepwise value tree.

    Only plain signal reads, constants and pure built-in operators — no
    sampling/merge/clock structure, so the step is a total function of its
    operand *values* whenever all operands are present (which the scan
    kernel verifies at run time before trusting it).
    """
    if isinstance(expr, (SignalRef, Const)):
        return True
    if isinstance(expr, FunctionApp):
        return (
            bool(expr.args)
            and expr.op in PURE_OPERATORS
            and all(_pure_value_expr(a) for a in expr.args)
        )
    return False


def _ordered_refs(expr: Expression) -> List[str]:
    """Distinct signal names read by a pure value tree, first-read order."""
    out: List[str] = []

    def walk(node: Expression) -> None:
        if isinstance(node, SignalRef):
            if node.name not in out:
                out.append(node.name)
        elif isinstance(node, FunctionApp):
            for arg in node.args:
                walk(arg)

    walk(expr)
    return out


def _affine_shape(expr, z_name, y_name, operand_names):
    """Detect the plain-accumulator shapes ``y = z + e`` / ``y = z - e``.

    *e* must be a single other signal or a finite float constant; returns
    ``(sign, operand_index, const)`` for :class:`_RecurrenceScan`'s
    ``np.add.accumulate`` fast path, or ``None``.  Subtraction maps to
    adding the negation, which is exact in IEEE-754.
    """
    if not (isinstance(expr, FunctionApp) and len(expr.args) == 2):
        return None
    left, right = expr.args

    def is_z(node):
        return isinstance(node, SignalRef) and node.name == z_name

    if expr.op == "+" and is_z(left):
        sign, other = 1, right
    elif expr.op == "+" and is_z(right):
        sign, other = 1, left
    elif expr.op == "-" and is_z(left):
        sign, other = -1, right
    else:
        return None
    if (
        isinstance(other, SignalRef)
        and other.name not in (z_name, y_name)
        and other.name in operand_names
    ):
        return (sign, operand_names.index(other.name), None)
    if (
        isinstance(other, Const)
        and type(other.value) is float
        and other.value == other.value
        and other.value not in (float("inf"), float("-inf"))
    ):
        return (sign, None, other.value)
    return None


def _compile_value_step(expr: Expression, arg_of: Dict[str, str]):
    """Compile a pure value tree into ``step(<args>) -> value`` source.

    *arg_of* maps each referenced signal name to its parameter name.  Every
    operator application calls the exact
    :data:`~repro.sig.expressions.STEPWISE_OPERATIONS` callable (bound into
    the generated module's globals), and constants are bound as globals too,
    so the produced values are the very objects the plan's closures would
    compute — bit-identical by construction, without per-instant status
    dispatch around them.
    """
    env: Dict[str, Any] = {}

    def emit(node: Expression) -> str:
        if isinstance(node, SignalRef):
            return arg_of[node.name]
        if isinstance(node, Const):
            key = f"_k{len(env)}"
            env[key] = node.value
            return key
        op_key = f"_f{len(env)}"
        env[op_key] = STEPWISE_OPERATIONS[node.op]
        return f"{op_key}({', '.join(emit(a) for a in node.args)})"

    params = ", ".join(arg_of[name] for name in arg_of)
    source = f"def _step({params}):\n    return {emit(expr)}\n"
    namespace: Dict[str, Any] = dict(env)
    exec(compile(source, "<recurrence-step>", "exec"), namespace)
    return namespace["_step"]


class _RecurrenceScan:
    """One promoted delay recurrence: ``z := delay(y); y := f(z, inputs)``.

    Executes the pair for a whole block: the presence mask comes from a
    block-available ``^=`` clock source, every other available sync member
    and every step operand is verified to share that exact mask (any
    mismatch falls the block back to the pure sweep), and the value
    sequence is produced either by ``np.add.accumulate`` (plain ``y = z ± e``
    accumulators over float64 columns — bit-identical to the sequential
    fold) or by a tight generated-scalar loop calling the exact stepwise
    callables.  Delay state is advanced **once per block** (the last
    present ``y`` of the block is exactly what the sequential per-instant
    commits would leave behind); the pair's per-instant commit is dropped
    from the vector path, and the fallback path — which rewinds the state
    snapshot first — still runs the plan's full commit tuple.
    """

    __slots__ = (
        "y_slot",
        "z_slot",
        "state_slot",
        "mask_slot",
        "verify_slots",
        "operand_slots",
        "step",
        "affine",
        "commit_index",
    )

    def __init__(
        self,
        y_slot: int,
        z_slot: int,
        state_slot: int,
        mask_slot: int,
        verify_slots: Tuple[int, ...],
        operand_slots: Tuple[int, ...],
        step,
        affine,
        commit_index: int,
    ) -> None:
        self.y_slot = y_slot
        self.z_slot = z_slot
        self.state_slot = state_slot
        self.mask_slot = mask_slot
        self.verify_slots = verify_slots
        self.operand_slots = operand_slots
        self.step = step
        #: ``(sign, operand_index, const)`` when the step is a plain
        #: ``y = z + e`` / ``y = z - e`` accumulation eligible for the
        #: ``np.add.accumulate`` fast path; ``None`` otherwise.
        self.affine = affine
        #: Index of the pair's delay commit in ``plan._commits`` — dropped
        #: from the vector path's per-instant finish (see class docstring).
        self.commit_index = commit_index

    def execute(self, ctx: "_BlockContext", st_block, val_block, state) -> None:
        """Fill the pair's status/value columns for one block."""
        mask = st_block[:, self.mask_slot] == PRESENT
        for slot in self.verify_slots:
            if not _np.array_equal(st_block[:, slot] == PRESENT, mask):
                raise _FallbackBlock("recurrence clock mismatch")
        for slot in self.operand_slots:
            if not _np.array_equal(st_block[:, slot] == PRESENT, mask):
                raise _FallbackBlock("recurrence operand clock mismatch")
        status = _np.where(mask, PRESENT, _ABSENT_ST)
        st_block[:, self.y_slot] = status
        st_block[:, self.z_slot] = status
        idx = mask.nonzero()[0]
        if not idx.size:
            return
        seed = state[self.state_slot][0]

        typed_cols: List[Optional[Any]] = []
        for slot in self.operand_slots:
            typed = ctx.typed.get(slot)
            typed_cols.append(typed[0] if typed is not None and typed[1] == _FLT else None)

        ys, zs, all_float = self._scan(idx, seed, typed_cols, val_block)

        y_col = _np.empty(idx.size, dtype=object)
        y_col[:] = ys
        z_col = _np.empty(idx.size, dtype=object)
        z_col[:] = zs
        val_block[idx, self.y_slot] = y_col
        val_block[idx, self.z_slot] = z_col
        # Block-level state advance: the sequential commits would store the
        # present y of each instant in turn, leaving the last one.
        state[self.state_slot][0] = ys[-1]
        if all_float is None:
            all_float = all(type(value) is float for value in ys) and all(
                type(value) is float for value in zs
            )
        if all_float:
            y_typed = _np.zeros(ctx.size)
            y_typed[idx] = ys
            z_typed = _np.zeros(ctx.size)
            z_typed[idx] = zs
            ctx.typed[self.y_slot] = (y_typed, _FLT)
            ctx.typed[self.z_slot] = (z_typed, _FLT)

    def _scan(self, idx, seed, typed_cols, val_block):
        """Produce ``(ys, zs, all_float)`` present-instant value sequences.

        ``all_float`` is ``True`` on the accumulate path (``ndarray.tolist``
        of a float64 array yields Python floats by construction) and
        ``None`` on the generated-loop path, where the caller still has to
        type-check the step outputs.
        """
        if self.affine is not None and type(seed) is float and seed == seed:
            sign, operand_index, const = self.affine
            if operand_index is None:
                increment = _np.full(idx.size, const)
            elif typed_cols[operand_index] is not None:
                increment = typed_cols[operand_index][idx]
            else:
                increment = None
            if increment is not None:
                if sign < 0:
                    increment = -increment
                acc = _np.add.accumulate(
                    _np.concatenate((_np.array([seed]), increment))
                )
                return acc[1:].tolist(), acc[:-1].tolist(), True
        columns = [
            typed_cols[i][idx].tolist()
            if typed_cols[i] is not None
            else val_block[idx, slot].tolist()
            for i, slot in enumerate(self.operand_slots)
        ]
        step = self.step
        cur = seed
        ys: List[Any] = []
        zs: List[Any] = []
        if columns:
            for row in zip(*columns):
                zs.append(cur)
                cur = step(cur, *row)
                ys.append(cur)
        else:
            for _ in range(idx.size):
                zs.append(cur)
                cur = step(cur)
                ys.append(cur)
        return ys, zs, None


def _signature_unchanged(slots, st, vals, prev_st, prev_vals) -> bool:
    """Did every watched slot keep its status — and, where present, an
    equal value of the same type — since the previous instant?

    Type identity guards the ``1 == 1.0`` hazard (repr-observable in trace
    output); a raising or non-boolean ``==`` conservatively reports a
    change, which merely costs the skip.
    """
    try:
        for slot in slots:
            code = st[slot]
            if code != prev_st[slot]:
                return False
            if code == PRESENT:
                a, b = vals[slot], prev_vals[slot]
                if a is not b and not (type(a) is type(b) and bool(a == b)):
                    return False
    except Exception:
        return False
    return True


class _ResidueCluster:
    """One independent partition of the residual sweep.

    Holds the cluster's work items (in plan order), the ``^=`` groups that
    touch it, and — when every member is a stateless pure-shape definition —
    the *external* slots whose per-instant ``(status, value)`` signature
    decides whether the previous instant's resolution can be copied
    verbatim (the cluster-level skip).
    """

    __slots__ = ("work", "groups", "target_slots", "skippable", "external_slots")

    def __init__(self, work, groups, target_slots, skippable, external_slots) -> None:
        self.work = work
        self.groups = groups
        self.target_slots = target_slots
        self.skippable = skippable
        self.external_slots = external_slots

    def without(self, driven_slots) -> "_ResidueCluster":
        """A copy with scenario-driven targets removed (scenario wins).

        A driven member's column is scenario-filled, which changes what the
        cluster's sweep observes, so the skip signature is disabled for the
        run rather than recomputed.
        """
        return _ResidueCluster(
            tuple(item for item in self.work if item[0] not in driven_slots),
            self.groups,
            tuple(slot for slot in self.target_slots if slot not in driven_slots),
            False,
            self.external_slots,
        )


@dataclass
class VectorPlanStatistics:
    """Compile-time shape of a vectorized plan (for reports and tests)."""

    signals: int
    targets: int
    vectorized: int
    pre_stratum: int
    post_stratum: int
    residual: int
    block_size: int
    recurrence: int = 0
    clusters: int = 0
    lowered: int = 0

    def summary(self) -> str:
        """One line describing the stratum partition."""
        residue = f"{self.residual} residual"
        if self.clusters:
            residue += f" in {self.clusters} cluster(s)"
        if self.lowered:
            residue += f" ({self.lowered} lowered)"
        return (
            f"vectorized plan: {self.vectorized}/{self.targets} targets in numpy "
            f"strata ({self.pre_stratum} pre-sweep + {self.recurrence} "
            f"recurrence + {self.post_stratum} post-sweep), {residue}, blocks "
            f"of {self.block_size} instants over {self.signals} signal slots"
        )


class VectorExecutionPlan:
    """An :class:`~repro.sig.engine.plan.ExecutionPlan` plus its vector strata.

    Build one with :func:`compile_vectorized`.  :meth:`run` executes a
    scenario in instant blocks: numpy kernels fill the vectorisable columns
    of the block, the residual equations run through the plan's ordinary
    per-instant sweep, and the finished block is delivered to the recorder
    or the sinks instant by instant.  Any warning or error anywhere in a
    block rewinds it and replays it through the pure per-instant sweep, so
    traces, warnings and errors are bit-identical to the compiled backend
    by construction.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        block_size: int = DEFAULT_BLOCK_SIZE,
        scan_recurrences: bool = True,
        cluster_residue: bool = True,
        lowered_residue: bool = False,
    ) -> None:
        if _np is None:  # pragma: no cover - exercised by the no-numpy CI leg
            raise RuntimeError("numpy is required to build a VectorExecutionPlan")
        self.plan = plan
        self.block_size = max(1, int(block_size))
        self.scan_recurrences = scan_recurrences
        self.cluster_residue = cluster_residue
        self.lowered_residue = lowered_residue
        #: Blocks executed through the numpy strata / replayed through the
        #: pure sweep, across every run of this plan (for tests and reports).
        self.vector_blocks = 0
        self.fallback_blocks = 0
        #: Instant-level cluster resolutions answered by copying the
        #: previous instant (the cluster-level skip), across every run.
        self.skipped_clusters = 0
        #: Why blocks fell back, keyed by ``ExceptionType: message`` — the
        #: broad fallback catch is a semantics safety net, so this is how a
        #: coding bug masquerading as a slow path stays diagnosable.
        self.fallback_reasons: Dict[str, int] = {}

        process = plan.process
        grouped: Dict[str, List[Expression]] = {}
        for eq in process.equations:
            grouped.setdefault(eq.target, []).append(eq.expr)

        work_slots = {item[0] for item in plan._work}
        work_by_name = {item[3].name: item for item in plan._work}
        pending: Dict[int, Tuple[Any, Expression]] = {}
        for item in plan._work:
            slot, is_declared, single, target = item
            if single is None or not is_declared:
                # Multi-definition targets need the reference's repr-based
                # arbitration; undeclared targets are read as absent *until*
                # they resolve, which makes their resolution order
                # observable — both stay in the per-instant sweep.
                continue
            expr = grouped[target.name][0]
            if _structurally_vectorizable(expr) and not _may_be_const(expr):
                pending[slot] = (item, expr)

        # Unified stage peel.  Stateless targets whose reads are all inputs,
        # non-target signals or already-promoted targets become columnar
        # kernels; when the peel stalls, one delay recurrence is promoted
        # into a scan stage (its outputs then count as available, which can
        # unblock further kernels — the "mid" stratum of alarms over
        # accumulators).  Stage order is a topological order, which is the
        # block execution order.
        promoted: Dict[int, None] = {}
        stages: List[Tuple[str, Any, Any]] = []
        progress = True
        while progress:
            progress = False
            changed = True
            while changed and pending:
                changed = False
                for slot in list(pending):
                    item, expr = pending[slot]
                    deps = {plan.slot_of[name] for name in free_signals(expr)}
                    if all(d not in work_slots or d in promoted for d in deps):
                        promoted[slot] = None
                        stages.append(("kernel", slot, expr))
                        del pending[slot]
                        changed = True
                        progress = True
            if scan_recurrences:
                scan = self._find_recurrence(
                    plan, grouped, work_by_name, work_slots, promoted
                )
                if scan is not None:
                    promoted[scan.y_slot] = None
                    promoted[scan.z_slot] = None
                    pending.pop(scan.y_slot, None)
                    pending.pop(scan.z_slot, None)
                    stages.append(("scan", scan, None))
                    progress = True

        # Post-stratum: vectorisable targets that *nothing else observes
        # during the sweep* — not read by any equation outside the stratum
        # (delay/cell commits re-evaluate their equations' subtrees, so any
        # reader counts), not members of a ``^=`` group (clock propagation
        # reads their status mid-sweep), not read through a shared variable
        # (the varmem write-through would be skipped).  They evaluate after
        # the block's residual sweep, over the written-back residual
        # columns; an unresolved dependency (a would-be instantaneous
        # cycle) forces the pure replay instead.
        sync_slots = set()
        for slots, _names in plan._sync_groups:
            sync_slots.update(slots)
        readers: Dict[str, set] = {}
        var_read: set = set()

        def collect_reads(target: str, node: Expression) -> None:
            if isinstance(node, Var):
                var_read.add(node.name)
            elif isinstance(node, SignalRef):
                readers.setdefault(node.name, set()).add(target)
            for attr in ("operand", "condition", "left", "right"):
                child = getattr(node, attr, None)
                if isinstance(child, Expression):
                    collect_reads(target, child)
            for child in getattr(node, "args", ()):
                collect_reads(target, child)

        for eq in process.equations:
            collect_reads(eq.target, eq.expr)

        slot_to_name = {plan.slot_of[name]: name for name in plan.slot_of}
        post_names: set = set()
        eligible = {
            slot: (item, expr)
            for slot, (item, expr) in pending.items()
            if slot not in sync_slots and item[3].name not in var_read
        }
        changed = True
        while changed:
            changed = False
            for slot, (item, expr) in eligible.items():
                name = item[3].name
                if name in post_names:
                    continue
                if all(reader in post_names for reader in readers.get(name, ())):
                    post_names.add(name)
                    changed = True
        # Order the post kernels by their dependencies *within* the stratum;
        # demote stratum-internal cycles (and, transitively, whatever reads
        # them) back to the residual sweep.
        post_order: List[Tuple[int, Expression]] = []
        post_done: set = set()
        changed = True
        while changed:
            changed = False
            for slot, (item, expr) in eligible.items():
                name = item[3].name
                if name not in post_names or name in post_done:
                    continue
                deps = set(free_signals(expr))
                if all(d not in post_names or d in post_done for d in deps):
                    post_done.add(name)
                    post_order.append((slot, expr))
                    changed = True
        post_names &= post_done
        changed = True
        while changed:
            changed = False
            for name in list(post_names):
                if not all(reader in post_names for reader in readers.get(name, ())):
                    post_names.discard(name)
                    changed = True
        post_order = [
            (slot, expr) for slot, expr in post_order if slot_to_name[slot] in post_names
        ]
        post_slots = {slot for slot, _ in post_order}

        compiler = _VectorCompiler(plan.slot_of)
        #: Ordered block stages: ``("kernel", slot, VectorFn)`` columnar
        #: evaluations interleaved with ``("scan", _RecurrenceScan, None)``
        #: delay-recurrence scans, in dependency order.
        self._stages: List[Tuple[str, Any, Any]] = []
        for kind, payload, expr in stages:
            if kind == "kernel":
                self._stages.append(("kernel", payload, compiler.compile(expr)))
            else:
                self._stages.append(("scan", payload, None))
        self._post_kernels: List[Tuple[int, VectorFn]] = [
            (slot, compiler.compile(expr)) for slot, expr in post_order
        ]
        # Promoted scans advance their delay state once per block, so their
        # per-instant commits are dead weight on the vector path; the
        # fallback path (which rewinds the state snapshot) keeps the plan's
        # full commit tuple.
        suppressed_commits = {
            payload.commit_index
            for kind, payload, _ in self._stages
            if kind == "scan"
        }
        if suppressed_commits:
            self._vector_commits = tuple(
                commit
                for index, commit in enumerate(plan._commits)
                if index not in suppressed_commits
            )
        else:
            self._vector_commits = plan._commits
        self._vector_slots = set(promoted) | post_slots
        self._residual_work = tuple(
            item for item in plan._work if item[0] not in self._vector_slots
        )
        self._lowered_count = 0
        if lowered_residue and self._residual_work:
            self._residual_work = self._lower_residual_work(self._residual_work)
        residual_slots = {item[0] for item in self._residual_work}
        if cluster_residue:
            self._clusters, self._global_groups = self._build_clusters(
                plan, grouped, self._residual_work
            )
        else:
            self._clusters, self._global_groups = None, []
        # Residual columns the post kernels read, to copy back into the
        # block arrays after the sweep.
        post_deps: set = set()
        for _slot, expr in post_order:
            for name in free_signals(expr):
                post_deps.add(plan.slot_of[name])
        self._post_writeback = tuple(sorted(post_deps & residual_slots))

        # Declared input slots whose scenario columns may ride the native
        # kernels — validated value by value at block-fill time (a REAL
        # input fed Python ints, say, silently keeps the object path).
        self._typed_input_kinds: Dict[int, int] = {}
        for slot, name in plan._input_slots:
            kind = process.signals[name].type.kind
            if kind is SignalKind.REAL:
                self._typed_input_kinds[slot] = _FLT
            elif kind is SignalKind.BOOLEAN or kind is SignalKind.EVENT:
                self._typed_input_kinds[slot] = _BOOL

        self._template_row = _np.array(plan._status_template, dtype=_np.int64)

    # ------------------------------------------------------------------
    def _find_recurrence(self, plan, grouped, work_by_name, work_slots, promoted):
        """Find one promotable delay recurrence ``z := delay(y); y := f(z, ...)``.

        Both halves must be declared, single-definition targets not yet
        promoted; ``f`` must be a pure value expression over ``z`` and
        block-available operands (and must not read ``y`` itself); and some
        ``^=`` group containing ``y`` must have a block-available member to
        serve as the clock mask — without one the reference sweep would
        deadlock on the pair, a trajectory the scan cannot reproduce.
        Returns a :class:`_RecurrenceScan` or ``None``.
        """

        def available(slot: int) -> bool:
            return slot not in work_slots or slot in promoted

        for z_name, (state_slot, _init, y_name) in plan.delay_memories.items():
            z_item = work_by_name.get(z_name)
            y_item = work_by_name.get(y_name)
            if z_item is None or y_item is None:
                continue
            z_slot, y_slot = z_item[0], y_item[0]
            if z_slot in promoted or y_slot in promoted or z_slot == y_slot:
                continue
            if not (z_item[1] and y_item[1]):  # both declared
                continue
            if z_item[2] is None or y_item[2] is None:  # both single-def
                continue
            y_expr = grouped[y_name][0]
            if not _pure_value_expr(y_expr):
                continue
            refs = _ordered_refs(y_expr)
            if y_name in refs or z_name not in refs:
                continue
            operand_names = [name for name in refs if name != z_name]
            operand_slots = [plan.slot_of[name] for name in operand_names]
            if not all(available(slot) for slot in operand_slots):
                continue
            # Clock mask + verification slots from the pair's sync groups.
            mask_slot = None
            verify: List[int] = []
            for slots, _names in plan._sync_groups:
                if y_slot not in slots and z_slot not in slots:
                    continue
                for slot in slots:
                    if slot in (y_slot, z_slot) or not available(slot):
                        continue
                    verify.append(slot)
                    if mask_slot is None and y_slot in slots:
                        mask_slot = slot
            if mask_slot is None:
                continue
            verify_slots = tuple(
                slot for slot in dict.fromkeys(verify) if slot != mask_slot
            )
            affine = _affine_shape(y_expr, z_name, y_name, operand_names)
            arg_of = {z_name: "_p0"}
            for index, name in enumerate(operand_names):
                arg_of[name] = f"_p{index + 1}"
            step = _compile_value_step(y_expr, arg_of)
            return _RecurrenceScan(
                y_slot=y_slot,
                z_slot=z_slot,
                state_slot=state_slot,
                mask_slot=mask_slot,
                verify_slots=verify_slots,
                operand_slots=tuple(operand_slots),
                step=step,
                affine=affine,
                commit_index=plan._delay_commit_index[z_name],
            )
        return None

    # ------------------------------------------------------------------
    def _lower_residual_work(self, residual_work):
        """Swap lowered (codegen) evaluators into the residual work items.

        Uses :func:`repro.sig.engine.lowered.lower_plan_evaluators`; targets
        the generator cannot lower keep their interpreted closures.  The
        pure replay path keeps the *original* plan items, so a codegen bug
        can at worst cost a block fallback, never parity.
        """
        from .lowered import lower_plan_evaluators

        lowered_map = lower_plan_evaluators(self.plan)
        if not lowered_map:
            return residual_work
        new_work = []
        for item in residual_work:
            slot, is_declared, _single, target = item
            evaluators = lowered_map.get(target.name)
            if evaluators is None or len(evaluators) != len(target.evaluators):
                new_work.append(item)
                continue
            clone = TargetPlan(
                target.name, target.slot, target.declared, list(evaluators)
            )
            single = clone.evaluators[0] if len(clone.evaluators) == 1 else None
            new_work.append((slot, is_declared, single, clone))
            self._lowered_count += 1
        return tuple(new_work)

    # ------------------------------------------------------------------
    @staticmethod
    def _build_clusters(plan, grouped, residual_work):
        """Partition the residual work into independent clusters.

        Returns ``(clusters, global_groups)`` where *clusters* is a list of
        :class:`_ResidueCluster` (or ``None`` when clustering is
        pointless — fewer than two clusters) and *global_groups* are the
        ``^=`` groups with no residual member, which still need one
        propagation pass per instant for their disagreement diagnostics.
        """
        residual_slots = {item[0] for item in residual_work}
        if len(residual_slots) < 2:
            return None, []
        parent = {slot: slot for slot in residual_slots}

        def find(slot: int) -> int:
            root = slot
            while parent[root] != root:
                root = parent[root]
            while parent[slot] != root:
                parent[slot], slot = root, parent[slot]
            return root

        def union(a: int, b: int) -> None:
            parent[find(a)] = find(b)

        residual_items = list(residual_work)
        reads_of: Dict[int, set] = {}
        for item in residual_items:
            slot, name = item[0], item[3].name
            reads = set()
            for expr in grouped[name]:
                reads.update(plan.slot_of[ref] for ref in free_signals(expr))
            reads_of.setdefault(slot, set()).update(reads)
            for dep in reads:
                if dep in residual_slots:
                    union(slot, dep)
        for slots, _names in plan._sync_groups:
            members = [slot for slot in slots if slot in residual_slots]
            for a, b in zip(members, members[1:]):
                union(a, b)

        ordered_roots: List[int] = []
        members_of: Dict[int, List[Any]] = {}
        for item in residual_items:
            root = find(item[0])
            if root not in members_of:
                members_of[root] = []
                ordered_roots.append(root)
            members_of[root].append(item)
        global_groups = []
        groups_of: Dict[int, List[Any]] = {}
        for group in plan._sync_groups:
            members = [slot for slot in group[0] if slot in residual_slots]
            if members:
                groups_of.setdefault(find(members[0]), []).append(group)
            else:
                global_groups.append(group)
        if len(ordered_roots) < 2:
            return None, []

        clusters = []
        for root in ordered_roots:
            items = members_of[root]
            cluster_slots = {item[0] for item in items}
            groups = groups_of.get(root, [])
            skippable = all(
                item[1]
                and item[2] is not None
                and all(
                    _structurally_vectorizable(expr)
                    for expr in grouped[item[3].name]
                )
                for item in items
            )
            external: set = set()
            for item in items:
                external.update(reads_of[item[0]])
            for slots, _names in groups:
                external.update(slots)
            external -= cluster_slots
            clusters.append(
                _ResidueCluster(
                    work=tuple(items),
                    groups=tuple(groups),
                    target_slots=tuple(sorted(cluster_slots)),
                    skippable=skippable,
                    external_slots=tuple(sorted(external)),
                )
            )
        return clusters, global_groups

    # ------------------------------------------------------------------
    def statistics(self) -> VectorPlanStatistics:
        """Compile-time shape of the stratum partition."""
        pre = sum(1 for kind, _a, _b in self._stages if kind == "kernel")
        recurrence = 2 * sum(1 for kind, _a, _b in self._stages if kind == "scan")
        return VectorPlanStatistics(
            signals=len(self.plan.names),
            targets=len(self.plan._work),
            vectorized=pre + recurrence + len(self._post_kernels),
            pre_stratum=pre,
            post_stratum=len(self._post_kernels),
            residual=len(self._residual_work),
            block_size=self.block_size,
            recurrence=recurrence,
            clusters=len(self._clusters) if self._clusters else 0,
            lowered=self._lowered_count,
        )

    # ------------------------------------------------------------------
    def _new_block(self, size: int) -> Tuple[Any, Any]:
        """Allocate a reset ``(status, value)`` block pair."""
        st_block = _np.empty((size, len(self.plan.names)), dtype=_np.int64)
        st_block[:] = self._template_row
        val_block = _np.empty((size, len(self.plan.names)), dtype=object)
        val_block.fill(ABSENT)
        return st_block, val_block

    # ------------------------------------------------------------------
    def run(
        self,
        scenario: Scenario,
        record=None,
        strict: bool = True,
        sinks: Optional[SinkOrSinks] = None,
        length: Optional[int] = None,
    ) -> Optional[SimulationTrace]:
        """Execute *scenario* in instant blocks.

        Semantics, arguments and the streaming (``sinks=``) contract are
        exactly those of :meth:`repro.sig.engine.plan.ExecutionPlan.run`.
        Periodic/constant/sparse input rules are synthesised into numpy
        columns arithmetically (:meth:`~repro.sig.scenario.InputRule.block_columns`);
        explicit and generator rules are sampled instant by instant.
        """
        plan = self.plan
        length = scenario.run_length(length)
        recorded = list(record) if record is not None else list(plan.process.signals)
        warnings: List[str] = []

        streaming = sinks is not None
        sink_list: List[Any] = []
        if streaming:
            from ..sinks import TraceHeader, as_sink_list, close_sinks

            sink_list = as_sink_list(sinks)

        declared = plan.process.signals
        bound, driven_slots, scenario_only = plan._bind_scenario(scenario)
        # Each driven slot carries its rule (for the block-level column
        # synthesis) plus one precompiled sampler (for the per-instant
        # fallback paths).
        driven = [(slot, rule, rule.sampler()) for slot, rule in bound]

        pure_work = [item for item in plan._work if item[0] not in driven_slots]
        residual_work = [
            item for item in self._residual_work if item[0] not in driven_slots
        ]
        # Stage and post-kernel targets are declared, and only undeclared
        # names can be scenario-driven, so the strata never need filtering.
        clusters = self._clusters
        if clusters is not None and driven_slots:
            clusters = [
                cluster.without(driven_slots)
                if any(slot in driven_slots for slot in cluster.target_slots)
                else cluster
                for cluster in clusters
            ]

        record_lists, record_plan = plan._build_record_plan(
            recorded, streaming, scenario_only
        )

        def deliver(instant: int, vals: List[Any]) -> None:
            """Hand one finished instant to the recorder or the sinks."""
            if streaming:
                if sink_list:
                    row = tuple(
                        vals[slot]
                        if slot is not None
                        else (fallback(instant) if fallback is not None else ABSENT)
                        for _, slot, fallback in record_plan
                    )
                    statuses = tuple(value is not ABSENT for value in row)
                    for sink in sink_list:
                        sink.on_instant(instant, statuses, row)
            else:
                for out, slot, fallback in record_plan:
                    if slot is not None:
                        out.append(vals[slot])
                    elif fallback is not None:
                        out.append(fallback(instant))
                    else:
                        out.append(ABSENT)

        state = [list(template) for template in plan._state_init]
        varmem = list(plan._nowrite_template)
        block_size = self.block_size
        try:
            if streaming:
                header = TraceHeader(
                    process_name=plan.process.name,
                    length=length,
                    signals=tuple(recorded),
                    types={name: decl.type for name, decl in declared.items()},
                    warnings=warnings,
                )
                for sink in sink_list:
                    sink.on_header(header)
            # Fast column-wise recording is safe when every recorded name is
            # a distinct slot (duplicate names interleave their appends per
            # instant, which only the per-instant path reproduces).
            fast_record = (
                not streaming
                and len(set(recorded)) == len(recorded)
                and all(slot is not None for _, slot, _ in record_plan)
            )
            from .supervisor import current_guard

            guard = current_guard()
            start = 0
            while start < length:
                size = min(block_size, length - start)
                if guard is not None:
                    guard.check_block(start, size)
                val_rows = self._run_block(
                    start,
                    size,
                    driven,
                    state,
                    varmem,
                    warnings,
                    strict,
                    pure_work,
                    residual_work,
                    clusters,
                    deliver,
                )
                if val_rows is not None:
                    if fast_record:
                        columns = list(zip(*val_rows))
                        for out, slot, _ in record_plan:
                            out.extend(columns[slot])
                    else:
                        for i in range(size):
                            deliver(start + i, val_rows[i])
                start += size
        finally:
            if streaming:
                close_sinks(sink_list)

        if streaming:
            return None
        flows = {name: Flow(name, values) for name, values in record_lists.items()}
        return SimulationTrace(
            process_name=plan.process.name,
            length=length,
            flows=flows,
            warnings=warnings,
        )

    # ------------------------------------------------------------------
    def _run_block(
        self,
        start: int,
        size: int,
        driven,
        state,
        varmem,
        warnings: List[str],
        strict: bool,
        pure_work,
        residual_work,
        clusters,
        deliver,
    ) -> Optional[List[List[Any]]]:
        """Execute one instant block, replaying it purely on any anomaly.

        Returns the per-instant value rows of a vector-executed block (the
        caller delivers them), or ``None`` when the block fell back to the
        pure sweep, which delivers through *deliver* itself.
        """
        # Snapshot the only mutable cross-instant state so a fallback can
        # rewind to the block's entry point.
        state_snapshot = [list(buffer) for buffer in state]
        varmem_snapshot = list(varmem)
        try:
            val_rows = self._run_vector_block(
                start, size, driven, state, varmem, strict, residual_work, clusters
            )
        except Exception as error:
            # Anything observable happened (a warning, a simulation error, a
            # raising stepwise operator...): rewind and replay this block
            # through the pure per-instant sweep, which reproduces values,
            # warnings, errors and partial sink output in reference order.
            for buffer, snapshot in zip(state, state_snapshot):
                buffer[:] = snapshot
            varmem[:] = varmem_snapshot
            self.fallback_blocks += 1
            reason = f"{type(error).__name__}: {error}"
            self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + 1
            self._run_pure_block(
                start, size, driven, state, varmem, warnings, strict, pure_work, deliver
            )
            return None
        self.vector_blocks += 1
        return val_rows

    def _run_vector_block(
        self, start, size, driven, state, varmem, strict, residual_work, clusters
    ) -> List[List[Any]]:
        """The optimistic hybrid executor: numpy strata + residual sweep.

        Raises (:class:`_FallbackBlock` or whatever the residual closures
        raise) whenever the block cannot be proven observation-identical to
        the reference trajectory; returns the per-instant value rows
        otherwise.
        """
        st_block, val_block = self._new_block(size)
        return self._execute_block(
            st_block, val_block, start, size, driven, state, varmem, strict,
            residual_work, clusters,
        )

    def _execute_block(
        self, st_block, val_block, start, size, driven, state, varmem, strict,
        residual_work, clusters,
    ) -> List[List[Any]]:
        """Body of :meth:`_run_vector_block`, over fresh block arrays."""
        plan = self.plan
        ctx = _BlockContext(st_block, val_block, size)

        typed_input_kinds = self._typed_input_kinds
        for slot, rule, sample in driven:
            kind = typed_input_kinds.get(slot)
            # Symbolic fast path: periodic/constant/sparse rules synthesise
            # their presence mask and value column arithmetically — no
            # Python list (and no per-instant loop) in the hot path.
            columns = rule.block_columns(
                start,
                start + size,
                _np,
                typed=float if kind == _FLT else bool if kind == _BOOL else None,
            )
            if columns is not None:
                mask, values, typed_values = columns
                st_block[:, slot] = _np.where(mask, PRESENT, _ABSENT_ST)
                val_block[:, slot] = values
                if typed_values is not None and kind is not None:
                    ctx.typed[slot] = (typed_values, kind)
                continue
            # Explicit/generator rules: sample instant by instant, exactly
            # like the pre-symbolic list slicing did.
            status_col = st_block[:, slot]
            value_col = val_block[:, slot]
            typed_buf: Optional[List[Any]] = (
                None if kind is None else [0.0 if kind == _FLT else False] * size
            )
            for i in range(size):
                value = sample(start + i)
                if value is ABSENT:
                    status_col[i] = _ABSENT_ST
                else:
                    status_col[i] = PRESENT
                    value_col[i] = value
                    if typed_buf is not None:
                        if kind == _FLT:
                            # NaN keeps the whole column on the object path:
                            # the typed round-trip would replace the caller's
                            # NaN object, and NaN compares equal only by
                            # identity, breaking flow ``==`` against the
                            # compiled backend's passed-through object.
                            if type(value) is float and value == value:
                                typed_buf[i] = value
                            else:
                                typed_buf = None
                        elif value is True or value is False:
                            typed_buf[i] = value
                        else:
                            typed_buf = None
            if typed_buf is not None:
                ctx.typed[slot] = (
                    _np.array(typed_buf, dtype=float if kind == _FLT else bool),
                    kind,
                )

        full = _np.ones(size, dtype=bool)
        with _np.errstate(all="ignore"):
            for kind_tag, payload, kernel in self._stages:
                if kind_tag == "scan":
                    payload.execute(ctx, st_block, val_block, state)
                    continue
                slot = payload
                status, values, kind = kernel(ctx, full)
                if bool((status == CONST).any()):
                    raise _FallbackBlock("bare-constant definition")
                present = status == PRESENT
                st_block[:, slot] = _np.where(present, PRESENT, _ABSENT_ST)
                obj_values = _object_column(values, kind)
                val_block[present, slot] = obj_values[present]
                if kind != _OBJ:
                    ctx.typed[slot] = (values, kind)

        # Block-level verification of the residue-free ``^=`` groups: when
        # every member's presence is decided (no UNKNOWN anywhere in the
        # block) and all members share the same presence mask, the
        # per-instant propagation is a provable no-op — nothing to fill,
        # nothing to diagnose.  Groups that cannot be verified block-wide
        # stay on the per-instant path for their exact diagnostics.
        global_groups = self._global_groups
        if global_groups and clusters is not None:
            unverified = []
            for group in global_groups:
                base_mask = None
                for slot in group[0]:
                    column = st_block[:, slot]
                    present = column == PRESENT
                    if not bool((present | (column == _ABSENT_ST)).all()):
                        unverified.append(group)
                        break
                    if base_mask is None:
                        base_mask = present
                    elif not _np.array_equal(base_mask, present):
                        unverified.append(group)
                        break
            global_groups = unverified

        st_rows = st_block.tolist()
        val_rows = val_block.tolist()

        block_warnings: List[str] = []
        resolve = plan._resolve_instant
        # The plan's `_finish_instant` minus the commits of scan-promoted
        # delays, whose state the scans advanced block-level already.
        vector_commits = self._vector_commits
        uses_varmem = plan.uses_varmem
        prev_st = prev_vals = None
        for i in range(size):
            instant = start + i
            st = st_rows[i]
            vals = val_rows[i]
            if clusters is None:
                resolve(
                    st, vals, state, varmem, instant, block_warnings, strict,
                    residual_work,
                )
            else:
                self._resolve_clustered(
                    st, vals, state, varmem, instant, block_warnings, strict,
                    clusters, global_groups, prev_st, prev_vals,
                )
            if block_warnings:
                raise _FallbackBlock("residual warning")
            for commit in vector_commits:
                commit(st, vals, state, varmem, strict)
            if uses_varmem:
                for slot_index, code in enumerate(st):
                    if code == PRESENT:
                        varmem[slot_index] = vals[slot_index]
            prev_st, prev_vals = st, vals

        post_kernels = self._post_kernels
        if post_kernels:
            # Copy the residual columns the post stratum reads back into the
            # block arrays.  An unresolved status (the reference would raise
            # an instantaneous cycle through the post target) aborts the
            # block so the pure replay can report it exactly.
            for slot in self._post_writeback:
                status_col = st_block[:, slot]
                value_col = val_block[:, slot]
                for i in range(size):
                    code = st_rows[i][slot]
                    if code == UNKNOWN or code == PRESUMED:
                        raise _FallbackBlock("unresolved post-stratum dependency")
                    status_col[i] = code
                    if code == PRESENT:
                        value_col[i] = val_rows[i][slot]
            with _np.errstate(all="ignore"):
                for slot, kernel in post_kernels:
                    status, values, kind = kernel(ctx, full)
                    if bool((status == CONST).any()):
                        raise _FallbackBlock("bare-constant definition")
                    present = status == PRESENT
                    st_block[:, slot] = _np.where(present, PRESENT, _ABSENT_ST)
                    obj_values = _object_column(values, kind)
                    value_col = val_block[:, slot]
                    value_col[present] = obj_values[present]
                    if kind != _OBJ:
                        ctx.typed[slot] = (values, kind)
                    for i, value in enumerate(value_col.tolist()):
                        val_rows[i][slot] = value
        return val_rows

    def _resolve_clustered(
        self, st, vals, state, varmem, instant, warnings, strict, clusters,
        global_groups, prev_st, prev_vals,
    ) -> None:
        """One instant's residual resolution, cluster by cluster.

        Clusters are independent (no cross-cluster reads or shared ``^=``
        groups), so sweeping them separately reaches the same fixed point as
        the reference's joint sweep; *global_groups* — the residue-free
        groups the caller could not verify block-wide — are propagated once
        up front for their diagnostics.  A *skippable* cluster (stateless,
        single-definition, declared members) whose external
        ``(status, value)`` signature matches the previous instant copies
        that instant's resolution instead of sweeping.  Blocked targets are
        collected across clusters so the instantaneous-cycle report matches
        the reference's.
        """
        plan = self.plan
        if global_groups:
            plan._propagate_sync_groups(
                st, instant, warnings, strict, global_groups
            )
        blocked: List[Any] = []
        for cluster in clusters:
            if (
                prev_st is not None
                and cluster.skippable
                and _signature_unchanged(
                    cluster.external_slots, st, vals, prev_st, prev_vals
                )
            ):
                for slot in cluster.target_slots:
                    code = prev_st[slot]
                    st[slot] = code
                    if code == PRESENT:
                        vals[slot] = prev_vals[slot]
                self.skipped_clusters += 1
                continue
            unresolved = plan._sweep_worklist(
                st, vals, state, varmem, instant, warnings, strict,
                cluster.work, cluster.groups,
            )
            if unresolved:
                blocked.extend(unresolved)
        if blocked:
            plan._raise_blocked(st, blocked, instant)

    def _run_pure_block(
        self, start, size, driven, state, varmem, warnings, strict, pure_work, deliver
    ) -> None:
        """Replay one block through the plan's exact per-instant sweep."""
        plan = self.plan
        template = plan._status_template
        n_slots = len(plan.names)
        resolve = plan._resolve_instant
        finish_instant = plan._finish_instant
        for i in range(size):
            instant = start + i
            st = list(template)
            vals: List[Any] = [ABSENT] * n_slots
            for slot, _rule, sample in driven:
                value = sample(instant)
                st[slot] = _ABSENT_ST if value is ABSENT else PRESENT
                vals[slot] = value
            resolve(st, vals, state, varmem, instant, warnings, strict, pure_work)
            finish_instant(st, vals, state, varmem, strict)
            deliver(instant, vals)


def compile_vectorized(
    process: ProcessModel,
    block_size: int = DEFAULT_BLOCK_SIZE,
    scan_recurrences: bool = True,
    cluster_residue: bool = True,
    lowered_residue: bool = False,
) -> VectorExecutionPlan:
    """Compile *process* into a plan plus its vector strata (requires numpy)."""
    return VectorExecutionPlan(
        compile_plan(process),
        block_size=block_size,
        scan_recurrences=scan_recurrences,
        cluster_residue=cluster_residue,
        lowered_residue=lowered_residue,
    )


class VectorizedBackend(SimulationBackend):
    """Block-vectorized executor: numpy strata over the compiled plan.

    Construction options (ignored by the other backends): ``block_size``
    (instants per block, default :data:`DEFAULT_BLOCK_SIZE`),
    ``scan_recurrences`` (promote delay recurrences into scan stages,
    default ``True``), ``cluster_residue`` (partition the residual sweep
    into independent clusters with a per-instant skip, default ``True``)
    and ``lowered_residue`` (swap codegen evaluators from
    :mod:`repro.sig.engine.lowered` into the residual work items, default
    ``False``).

    When numpy is not importable the backend warns (``RuntimeWarning``) and
    degrades to the compiled plan executor: every run still produces the
    exact same traces, just without the block kernels.
    """

    name = "vectorized"

    def __init__(
        self,
        process: ProcessModel,
        strict: bool = True,
        block_size: int = DEFAULT_BLOCK_SIZE,
        scan_recurrences: bool = True,
        cluster_residue: bool = True,
        lowered_residue: bool = False,
        **options: Any,
    ) -> None:
        super().__init__(process, strict, **options)
        self.block_size = max(1, int(block_size))
        self.scan_recurrences = scan_recurrences
        self.cluster_residue = cluster_residue
        self.lowered_residue = lowered_residue
        self._plan = compile_plan(process)
        if _np is None:
            _warnings_module.warn(NUMPY_FALLBACK_MESSAGE, RuntimeWarning, stacklevel=2)
            self._vector: Optional[VectorExecutionPlan] = None
        else:
            self._vector = VectorExecutionPlan(
                self._plan,
                block_size=self.block_size,
                scan_recurrences=scan_recurrences,
                cluster_residue=cluster_residue,
                lowered_residue=lowered_residue,
            )

    @property
    def process(self) -> ProcessModel:
        """The flattened process model the plan was compiled from."""
        return self._plan.process

    @property
    def plan(self) -> ExecutionPlan:
        """The underlying compiled :class:`~repro.sig.engine.plan.ExecutionPlan`."""
        return self._plan

    @property
    def vector_plan(self) -> Optional[VectorExecutionPlan]:
        """The vector strata (``None`` when numpy is unavailable)."""
        return self._vector

    def run(
        self,
        scenario: Scenario,
        record=None,
        sinks: Optional[SinkOrSinks] = None,
        length: Optional[int] = None,
    ) -> Optional[SimulationTrace]:
        """Execute one scenario in instant blocks (see :meth:`SimulationBackend.run`)."""
        if self._vector is None:
            return self._plan.run(
                scenario, record=record, strict=self.strict, sinks=sinks, length=length
            )
        return self._vector.run(
            scenario, record=record, strict=self.strict, sinks=sinks, length=length
        )

    # ------------------------------------------------------------------
    # pickling: like ExecutionPlan, the backend travels as its (picklable)
    # process model plus options and recompiles on arrival, so spawn-based
    # batch workers can receive it; fork-based workers inherit the compiled
    # kernels directly.
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "process": self._plan.process,
            "strict": self.strict,
            "block_size": self.block_size,
            "scan_recurrences": self.scan_recurrences,
            "cluster_residue": self.cluster_residue,
            "lowered_residue": self.lowered_residue,
        }

    def __setstate__(self, payload: Dict[str, Any]) -> None:
        self.__init__(
            payload["process"],
            strict=payload["strict"],
            block_size=payload["block_size"],
            scan_recurrences=payload["scan_recurrences"],
            cluster_residue=payload["cluster_residue"],
            lowered_residue=payload["lowered_residue"],
        )


#: Register in the backend registry (imported by ``repro.sig.engine``).
BACKENDS[VectorizedBackend.name] = VectorizedBackend


__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "NUMPY_FALLBACK_MESSAGE",
    "VectorExecutionPlan",
    "VectorPlanStatistics",
    "VectorizedBackend",
    "compile_vectorized",
    "numpy_available",
]
