"""Pluggable simulation backends.

A *backend* turns a :class:`~repro.sig.process.ProcessModel` into something
that can run :class:`~repro.sig.simulator.Scenario` objects and produce
:class:`~repro.sig.simulator.SimulationTrace` results (or stream them into
:class:`~repro.sig.sinks.TraceSink` objects):

* :class:`ReferenceBackend` — the original fixed-point interpreter
  (:class:`repro.sig.simulator.Simulator`), kept as the executable oracle;
* :class:`CompiledBackend` — the execution-plan executor
  (:class:`repro.sig.engine.plan.ExecutionPlan`), which compiles the model
  once and then runs each instant over slot-indexed arrays in the static
  scheduling order;
* :class:`~repro.sig.engine.vectorized.VectorizedBackend` (registered by
  :mod:`repro.sig.engine.vectorized`) — numpy kernels over instant blocks
  for the stateless strata of the plan, scan kernels for delay
  recurrences, clustered per-instant sweep for the residue; degrades to
  the compiled executor when numpy is missing;
* :class:`~repro.sig.engine.lowered.LoweredBackend` (registered by
  :mod:`repro.sig.engine.lowered`) — the compiled plan with generated
  flat Python evaluators in place of the closure interpreter; optional
  ``jit=True`` uses numba (object mode) when importable.

All backends produce bit-identical traces and raise the same simulation
errors; the integration tests ``tests/integration/test_backend_parity.py``,
``tests/integration/test_vectorized_parity.py`` and
``tests/integration/test_lowered_parity.py`` enforce this over the
whole case-study catalog.  New backends (generated C, cython kernels) plug
in by subclassing :class:`SimulationBackend` and registering in
:data:`BACKENDS`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Type

from ..process import ProcessModel
from ..scenario import Scenario
from ..simulator import SimulationTrace, Simulator
from ..sinks import SinkFactory, SinkOrSinks, as_sink_list
from .plan import ExecutionPlan, compile_plan


class SimulationBackend:
    """Common API of all simulation backends.

    A backend is bound to one process model at construction time, so that
    per-model preparation (flattening, plan compilation) happens exactly once
    however many scenarios are run through it.
    """

    #: Registry key and display name of the backend.
    name: str = "abstract"

    def __init__(self, process: ProcessModel, strict: bool = True, **options: Any) -> None:
        # Backend-specific options (e.g. the vectorized backend's
        # ``block_size``) arrive as keywords; options a backend does not
        # understand are ignored, so one ``backend_options`` mapping can be
        # threaded through the generic entry points whatever the backend.
        self.strict = strict

    def run(
        self,
        scenario: Scenario,
        record: Optional[Iterable[str]] = None,
        sinks: Optional[SinkOrSinks] = None,
        length: Optional[int] = None,
    ) -> Optional[SimulationTrace]:
        """Run one scenario from a fresh initial state.

        Without *sinks* the recorded flows come back as a
        :class:`~repro.sig.simulator.SimulationTrace`.  With *sinks* each
        resolved instant is streamed into them instead (O(signals) memory)
        and the method returns ``None``; see :mod:`repro.sig.sinks`.
        *length* overrides the scenario's default horizon (required when
        the scenario is unbounded).
        """
        raise NotImplementedError

    def run_batch(
        self,
        scenarios: Sequence[Scenario],
        record: Optional[Iterable[str]] = None,
        workers: int = 1,
        sink_factory: Optional[SinkFactory] = None,
        length: Optional[int] = None,
    ) -> List[Any]:
        """Run every scenario from a fresh initial state, reusing the
        per-model preparation.

        ``workers > 1`` shards the scenarios over worker processes (see
        :mod:`repro.sig.engine.parallel`); the traces are identical to the
        sequential run and come back in scenario order.  Symbolic
        scenarios ship to the workers as their (tiny) rule programs, never
        as per-instant lists.

        With *sink_factory* (called with each scenario index, returning the
        sink or sinks that scenario streams into) nothing is materialised:
        the returned list holds, per scenario, what the factory's sink
        produced — ``sink.result()`` for a single sink, the list of results
        when the factory returned several.  Sink results are shipped back
        from worker processes and merged in scenario order.

        *length* applies to every scenario of the batch.
        """
        record = list(record) if record is not None else None
        if workers != 1 and len(scenarios) > 1:
            from .parallel import run_batch_parallel

            traces, _, sink_results, _ = run_batch_parallel(
                self,
                scenarios,
                record=record,
                workers=workers,
                collect_errors=False,
                sink_factory=sink_factory,
                length=length,
            )
            return sink_results if sink_factory is not None else traces  # type: ignore[return-value]
        if sink_factory is not None:
            return [
                run_scenario_into_sinks(self, scenario, record, sink_factory, index, length)
                for index, scenario in enumerate(scenarios)
            ]
        return [self.run(scenario, record=record, length=length) for scenario in scenarios]


def run_scenario_into_sinks(
    runner: "SimulationBackend",
    scenario: Scenario,
    record: Optional[List[str]],
    sink_factory: SinkFactory,
    index: int,
    length: Optional[int] = None,
) -> Any:
    """Run one batch scenario through fresh factory-made sink(s).

    Shared by the sequential and the multiprocessing batch paths so both
    produce the exact same per-scenario payload: the single sink's
    ``result()`` when the factory returns one sink, the list of results when
    it returns several.
    """
    made = sink_factory(index)
    sink_list = as_sink_list(made)
    runner.run(scenario, record=record, sinks=sink_list, length=length)
    results = [sink.result() for sink in sink_list]
    return results[0] if len(sink_list) == 1 and not isinstance(made, (list, tuple)) else results


class ReferenceBackend(SimulationBackend):
    """The fixed-point interpreter of :mod:`repro.sig.simulator` (the oracle)."""

    name = "reference"

    def __init__(self, process: ProcessModel, strict: bool = True, **options: Any) -> None:
        super().__init__(process, strict, **options)
        self._simulator = Simulator(process, strict=strict)

    @property
    def process(self) -> ProcessModel:
        """The flattened process model this backend is bound to."""
        return self._simulator.process

    def run(
        self,
        scenario: Scenario,
        record: Optional[Iterable[str]] = None,
        sinks: Optional[SinkOrSinks] = None,
        length: Optional[int] = None,
    ) -> Optional[SimulationTrace]:
        """Interpret one scenario (see :meth:`SimulationBackend.run`)."""
        # Simulator.run resets delay/cell/shared memories itself.
        return self._simulator.run(scenario, record=record, sinks=sinks, length=length)


class CompiledBackend(SimulationBackend):
    """Execution-plan executor: compile once, run many scenarios."""

    name = "compiled"

    def __init__(self, process: ProcessModel, strict: bool = True, **options: Any) -> None:
        super().__init__(process, strict, **options)
        self._plan = compile_plan(process)

    @property
    def process(self) -> ProcessModel:
        """The flattened process model the plan was compiled from."""
        return self._plan.process

    @property
    def plan(self) -> ExecutionPlan:
        """The compiled :class:`~repro.sig.engine.plan.ExecutionPlan`."""
        return self._plan

    def run(
        self,
        scenario: Scenario,
        record: Optional[Iterable[str]] = None,
        sinks: Optional[SinkOrSinks] = None,
        length: Optional[int] = None,
    ) -> Optional[SimulationTrace]:
        """Execute one scenario over the plan (see :meth:`SimulationBackend.run`)."""
        return self._plan.run(
            scenario, record=record, strict=self.strict, sinks=sinks, length=length
        )

    def run_batch(
        self,
        scenarios: Sequence[Scenario],
        record: Optional[Iterable[str]] = None,
        workers: int = 1,
        sink_factory: Optional[SinkFactory] = None,
        length: Optional[int] = None,
    ) -> List[Any]:
        """Batched execution over the shared plan (see
        :meth:`SimulationBackend.run_batch`)."""
        record = list(record) if record is not None else None
        if sink_factory is not None or (workers != 1 and len(scenarios) > 1):
            return super().run_batch(
                scenarios,
                record=record,
                workers=workers,
                sink_factory=sink_factory,
                length=length,
            )
        return self._plan.run_batch(
            scenarios, record=record, strict=self.strict, length=length
        )


#: Registry of the available backends, keyed by :attr:`SimulationBackend.name`.
BACKENDS: Dict[str, Type[SimulationBackend]] = {
    ReferenceBackend.name: ReferenceBackend,
    CompiledBackend.name: CompiledBackend,
}

#: Backend used when the caller does not choose one.
DEFAULT_BACKEND = CompiledBackend.name


def backend_names() -> List[str]:
    """The registered backend names, default first."""
    names = sorted(BACKENDS)
    names.remove(DEFAULT_BACKEND)
    return [DEFAULT_BACKEND] + names


def create_backend(
    process: ProcessModel,
    backend: str = DEFAULT_BACKEND,
    strict: bool = True,
    **options: Any,
) -> SimulationBackend:
    """Instantiate the backend registered under *backend* for *process*.

    Extra keyword *options* are forwarded to the backend constructor (e.g.
    ``block_size=`` for the ``vectorized`` backend); backends ignore the
    options they do not understand.
    """
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {backend!r}; available: {', '.join(sorted(BACKENDS))}"
        ) from None
    return factory(process, strict=strict, **options)


__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "CompiledBackend",
    "ReferenceBackend",
    "SimulationBackend",
    "backend_names",
    "create_backend",
    "run_scenario_into_sinks",
]
