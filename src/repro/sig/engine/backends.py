"""Pluggable simulation backends.

A *backend* turns a :class:`~repro.sig.process.ProcessModel` into something
that can run :class:`~repro.sig.simulator.Scenario` objects and produce
:class:`~repro.sig.simulator.SimulationTrace` results:

* :class:`ReferenceBackend` — the original fixed-point interpreter
  (:class:`repro.sig.simulator.Simulator`), kept as the executable oracle;
* :class:`CompiledBackend` — the execution-plan executor
  (:class:`repro.sig.engine.plan.ExecutionPlan`), which compiles the model
  once and then runs each instant over slot-indexed arrays in the static
  scheduling order.

Both produce bit-identical traces and raise the same simulation errors; the
integration test ``tests/integration/test_backend_parity.py`` enforces this
over the whole case-study catalog.  New backends (multiprocessing shards,
numpy value arrays, generated C) plug in by subclassing
:class:`SimulationBackend` and registering in :data:`BACKENDS`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Type

from ..process import ProcessModel
from ..simulator import Scenario, SimulationTrace, Simulator
from .plan import ExecutionPlan, compile_plan


class SimulationBackend:
    """Common API of all simulation backends.

    A backend is bound to one process model at construction time, so that
    per-model preparation (flattening, plan compilation) happens exactly once
    however many scenarios are run through it.
    """

    #: Registry key and display name of the backend.
    name: str = "abstract"

    def __init__(self, process: ProcessModel, strict: bool = True) -> None:
        self.strict = strict

    def run(self, scenario: Scenario, record: Optional[Iterable[str]] = None) -> SimulationTrace:
        raise NotImplementedError

    def run_batch(
        self,
        scenarios: Sequence[Scenario],
        record: Optional[Iterable[str]] = None,
        workers: int = 1,
    ) -> List[SimulationTrace]:
        """Run every scenario from a fresh initial state, reusing the
        per-model preparation.

        ``workers > 1`` shards the scenarios over worker processes (see
        :mod:`repro.sig.engine.parallel`); the traces are identical to the
        sequential run and come back in scenario order.
        """
        record = list(record) if record is not None else None
        if workers != 1 and len(scenarios) > 1:
            from .parallel import run_batch_parallel

            traces, _ = run_batch_parallel(
                self, scenarios, record=record, workers=workers, collect_errors=False
            )
            return traces  # type: ignore[return-value]
        return [self.run(scenario, record=record) for scenario in scenarios]


class ReferenceBackend(SimulationBackend):
    """The fixed-point interpreter of :mod:`repro.sig.simulator` (the oracle)."""

    name = "reference"

    def __init__(self, process: ProcessModel, strict: bool = True) -> None:
        super().__init__(process, strict)
        self._simulator = Simulator(process, strict=strict)

    @property
    def process(self) -> ProcessModel:
        return self._simulator.process

    def run(self, scenario: Scenario, record: Optional[Iterable[str]] = None) -> SimulationTrace:
        # Simulator.run resets delay/cell/shared memories itself.
        return self._simulator.run(scenario, record=record)


class CompiledBackend(SimulationBackend):
    """Execution-plan executor: compile once, run many scenarios."""

    name = "compiled"

    def __init__(self, process: ProcessModel, strict: bool = True) -> None:
        super().__init__(process, strict)
        self._plan = compile_plan(process)

    @property
    def process(self) -> ProcessModel:
        return self._plan.process

    @property
    def plan(self) -> ExecutionPlan:
        return self._plan

    def run(self, scenario: Scenario, record: Optional[Iterable[str]] = None) -> SimulationTrace:
        return self._plan.run(scenario, record=record, strict=self.strict)

    def run_batch(
        self,
        scenarios: Sequence[Scenario],
        record: Optional[Iterable[str]] = None,
        workers: int = 1,
    ) -> List[SimulationTrace]:
        record = list(record) if record is not None else None
        if workers != 1 and len(scenarios) > 1:
            return super().run_batch(scenarios, record=record, workers=workers)
        return self._plan.run_batch(scenarios, record=record, strict=self.strict)


#: Registry of the available backends, keyed by :attr:`SimulationBackend.name`.
BACKENDS: Dict[str, Type[SimulationBackend]] = {
    ReferenceBackend.name: ReferenceBackend,
    CompiledBackend.name: CompiledBackend,
}

#: Backend used when the caller does not choose one.
DEFAULT_BACKEND = CompiledBackend.name


def backend_names() -> List[str]:
    """The registered backend names, default first."""
    names = sorted(BACKENDS)
    names.remove(DEFAULT_BACKEND)
    return [DEFAULT_BACKEND] + names


def create_backend(
    process: ProcessModel, backend: str = DEFAULT_BACKEND, strict: bool = True
) -> SimulationBackend:
    """Instantiate the backend registered under *backend* for *process*."""
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {backend!r}; available: {', '.join(sorted(BACKENDS))}"
        ) from None
    return factory(process, strict=strict)
