"""Supervised, fault-tolerant batch execution.

The plain pool of :mod:`repro.sig.engine.parallel` is fire-and-forget: a
worker that segfaults, is OOM-killed or spins forever in a user operation
stalls or poisons the whole batch with no diagnosis, no retry and no
partial results.  This module is the execution substrate the serving layer
and fleet-scale sweeps stand on instead: every dispatched chunk of
scenarios runs under **per-task supervision**, and the batch degrades
gracefully instead of dying with the worst worker.

Supervision model
-----------------

* one long-lived worker process per slot, fed over a private task pipe and
  reporting one message per *scenario* over a result pipe (synchronous pipe
  writes, so a finished scenario's result survives the worker's death an
  instant later);
* the supervisor waits on result pipes **and process sentinels** at once
  (:func:`multiprocessing.connection.wait`), so a crashed worker is
  detected the moment the OS reaps it — the first unreported scenario of
  its chunk is the victim, the rest of the chunk is requeued untouched;
* a **wall-clock timeout** bounds the silence of each worker: the deadline
  resets on every per-scenario progress message, a worker that stays
  silent past it is killed and replaced, and the in-flight scenario is
  charged a ``timeout`` failure.  Enforcement is purely external on the
  pooled path — workers install a cooperative :class:`ExecutionGuard`
  only when a budget is set, so timeout-only supervision adds nothing to
  the backends' hot loops;
* failed attempts are **retried with exponential backoff**
  (``backoff * 2**attempt``) on a replacement worker, up to ``retries``
  times; a scenario that keeps failing surfaces as a structured
  :class:`ScenarioFault` (kind ``crash`` / ``timeout`` / ``budget`` /
  ``error``, attempt count, worker id, traceback) instead of an exception;
* a ``max_failures`` **circuit breaker** bounds the damage of systemic
  failure: once the batch has seen more than ``max_failures`` failed
  attempts, retrying stops and every undecided scenario faults fast;
* scenarios that raise a :class:`~repro.sig.simulator.SimulationError`
  are *model* errors, not infrastructure faults: they keep the exact
  error channel and semantics of the unsupervised batch and are never
  retried (they are deterministic);
* surviving scenarios return **bit-identical, ordered** results — the
  supervisor only changes what happens to the failing ones.

On ``workers=1``, single-scenario batches, or platforms whose
multiprocessing primitives are unavailable, the supervisor degrades to
**in-process** execution with the same taxonomy: timeouts and budgets are
enforced cooperatively by the backends (the compiled plan checks its
:func:`current_guard` once per instant, the vectorized executor once per
block), injected crashes map to marker exceptions, and the retry ladder,
circuit breaker and fault reporting behave identically.

Budgets
-------

A :class:`ScenarioBudget` optionally bounds each attempt beyond wall-clock
time: ``max_instants`` caps the horizon a scenario may simulate (exact,
checked at every instant/block boundary) and ``max_memory_mb`` is a
best-effort RSS-growth guard (checked against ``ru_maxrss`` growth since
the attempt started; a high-water mark, so a worker that already peaked
cannot re-trip it).  Budget violations surface as ``budget`` faults.

Fault injection (:mod:`repro.sig.engine.faults`) hooks in at exactly one
point — the start of a scenario attempt inside the worker — which is what
the chaos tests and the E17 gate drive.
"""

from __future__ import annotations

import heapq
import itertools
import math
import sys
import time
import traceback as traceback_module
from contextlib import contextmanager
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..scenario import Scenario
from ..simulator import SimulationError, SimulationTrace
from ..sinks import SinkFactory
from .faults import FaultPlan, FaultSpec, InjectedCrash, fire_fault

#: Default retry count when supervision is on and the caller did not choose.
DEFAULT_RETRIES = 2

#: Default base of the exponential retry backoff, in seconds.
DEFAULT_BACKOFF = 0.05

#: Instants between the guard's wall-clock/memory re-checks on the
#: per-instant path (the instant-budget check is exact and unstrided).
_GUARD_STRIDE = 64

#: Seconds the supervisor waits for a killed/sentinel-notified worker to be
#: reaped before giving up on ``join`` (the process is already dead or
#: SIGKILLed; this only bounds OS cleanup).
_REAP_SECONDS = 5.0


class ScenarioTimeout(Exception):
    """A scenario attempt exceeded its wall-clock timeout (cooperative path)."""


class BudgetExceeded(Exception):
    """A scenario attempt exceeded its :class:`ScenarioBudget`."""


@dataclass(frozen=True)
class ScenarioBudget:
    """Optional per-attempt resource bounds beyond the wall-clock timeout.

    ``max_instants`` caps how many instants one scenario may simulate —
    exact, enforced at every instant (compiled/reference) or block
    (vectorized) boundary.  ``max_memory_mb`` caps the RSS *growth* of the
    executing process since the attempt started — best-effort (``ru_maxrss``
    is a high-water mark) but enough to turn a runaway scenario into a
    typed ``budget`` fault instead of an OOM kill.
    """

    max_instants: Optional[int] = None
    max_memory_mb: Optional[float] = None

    @classmethod
    def coerce(cls, value: Any) -> Optional["ScenarioBudget"]:
        """Coerce the accepted ``scenario_budget=`` shorthands.

        ``None`` passes through, a :class:`ScenarioBudget` is returned
        as-is, an ``int`` means ``max_instants``, and a mapping supplies
        the constructor keywords — the shape request-scoped callers (the
        serving layer's JSON bodies, CLI flags) naturally hold.
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, bool):
            raise TypeError("scenario_budget cannot be a boolean")
        if isinstance(value, int):
            return cls(max_instants=value)
        if isinstance(value, Mapping):
            unknown = sorted(set(value) - {"max_instants", "max_memory_mb"})
            if unknown:
                raise TypeError(
                    f"unknown scenario_budget key(s) {unknown}; expected "
                    "'max_instants' and/or 'max_memory_mb'"
                )
            return cls(**dict(value))
        raise TypeError(
            f"cannot interpret {type(value).__name__!r} as a scenario budget; "
            "pass a ScenarioBudget, an int (max instants), or a mapping"
        )


# macOS reports ru_maxrss in bytes, Linux in kilobytes.
_RU_MAXRSS_TO_KB = 1.0 / 1024.0 if sys.platform == "darwin" else 1.0


def _rss_kb() -> float:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0.0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_TO_KB


class ExecutionGuard:
    """Cooperative timeout/budget enforcement for one scenario attempt.

    Installed around a run by :func:`guarded`; the backends fetch it with
    :func:`current_guard` and call :meth:`check` once per instant (compiled
    plan, reference interpreter) or :meth:`check_block` once per block
    (vectorized executor).  The instant budget is exact; wall-clock and
    memory are re-checked every :data:`_GUARD_STRIDE` instants so the
    per-instant cost stays one comparison.
    """

    __slots__ = ("deadline", "max_instants", "_max_rss_kb", "_baseline_rss_kb", "_tick")

    def __init__(
        self,
        timeout: Optional[float] = None,
        budget: Optional[ScenarioBudget] = None,
    ) -> None:
        self.deadline = time.monotonic() + timeout if timeout is not None else None
        self.max_instants = budget.max_instants if budget is not None else None
        self._max_rss_kb: Optional[float] = None
        self._baseline_rss_kb = 0.0
        if budget is not None and budget.max_memory_mb is not None:
            self._baseline_rss_kb = _rss_kb()
            self._max_rss_kb = budget.max_memory_mb * 1024.0
        self._tick = 0

    def check(self, instant: int) -> None:
        """Per-instant check: exact instant budget, strided time/memory."""
        max_instants = self.max_instants
        if max_instants is not None and instant >= max_instants:
            raise BudgetExceeded(
                f"scenario budget exhausted: instant {instant} reached the "
                f"max_instants budget of {max_instants}"
            )
        self._tick += 1
        if self._tick >= _GUARD_STRIDE:
            self._tick = 0
            self.check_time(instant)
            self._check_memory()

    def check_block(self, start: int, size: int) -> None:
        """Per-block check (vectorized executor): blocks are coarse enough
        that time and memory are re-checked on every boundary."""
        max_instants = self.max_instants
        if max_instants is not None and start + size > max_instants:
            raise BudgetExceeded(
                f"scenario budget exhausted: block [{start}, {start + size}) "
                f"crosses the max_instants budget of {max_instants}"
            )
        self.check_time(start)
        self._check_memory()

    def check_time(self, instant: int = -1) -> None:
        """Raise :class:`ScenarioTimeout` when the wall-clock deadline passed."""
        if self.deadline is not None and time.monotonic() > self.deadline:
            where = f" at instant {instant}" if instant >= 0 else ""
            raise ScenarioTimeout(
                f"scenario exceeded its wall-clock timeout{where}"
            )

    def _check_memory(self) -> None:
        if self._max_rss_kb is None:
            return
        grown = _rss_kb() - self._baseline_rss_kb
        if grown > self._max_rss_kb:
            raise BudgetExceeded(
                f"scenario memory budget exceeded: RSS grew {grown / 1024.0:.1f} MiB "
                f"(budget {self._max_rss_kb / 1024.0:.1f} MiB)"
            )


#: The guard installed for the scenario currently executing in this process
#: (one scenario runs at a time per process; workers install their own).
_ACTIVE_GUARD: Optional[ExecutionGuard] = None


def current_guard() -> Optional[ExecutionGuard]:
    """The :class:`ExecutionGuard` of the scenario executing in this
    process, or ``None`` outside supervised execution.  Backends call this
    once per run and then check the guard at instant/block boundaries."""
    return _ACTIVE_GUARD


@contextmanager
def guarded(
    timeout: Optional[float] = None,
    budget: Optional[ScenarioBudget] = None,
) -> Iterator[Optional[ExecutionGuard]]:
    """Install a cooperative :class:`ExecutionGuard` around one scenario run.

    With neither a timeout nor a budget no guard is installed at all, so
    unsupervised runs keep paying nothing.  Guards nest (the previous one
    is restored on exit), though supervised execution never needs to.
    """
    global _ACTIVE_GUARD
    guard = (
        ExecutionGuard(timeout, budget)
        if timeout is not None or budget is not None
        else None
    )
    previous = _ACTIVE_GUARD
    _ACTIVE_GUARD = guard
    try:
        yield guard
    finally:
        _ACTIVE_GUARD = previous


@dataclass
class ScenarioFault:
    """One scenario the supervisor could not recover.

    ``kind`` is the failure taxonomy: ``"crash"`` (the worker process died
    — segfault, ``os._exit``, OOM kill), ``"timeout"`` (wall-clock, killed
    externally or cooperatively), ``"budget"`` (a :class:`ScenarioBudget`
    bound), ``"error"`` (an unexpected non-simulation exception, or a
    scenario abandoned by the open circuit breaker).  ``attempts`` counts
    how many times the scenario was tried; ``worker`` names the worker of
    the last failure (``None`` in-process); ``traceback`` carries the
    worker-side traceback of ``error`` faults.
    """

    scenario: int
    kind: str
    attempts: int
    worker: Optional[str] = None
    message: str = ""
    traceback: Optional[str] = None

    def summary(self) -> str:
        """One line: scenario, kind, attempts, worker and message."""
        where = f" on {self.worker}" if self.worker else ""
        detail = f": {self.message}" if self.message else ""
        return (
            f"scenario {self.scenario}: {self.kind} fault after "
            f"{self.attempts} attempt(s){where}{detail}"
        )


class _CircuitOpen(Exception):
    """Internal: the failure budget of the whole batch is exhausted."""


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def _run_one(
    runner: Any,
    scenarios: Sequence[Scenario],
    index: int,
    record: Optional[List[str]],
    sink_factory: Optional[SinkFactory],
    length: Optional[int],
) -> Any:
    """One scenario's payload: its trace, or its sink result(s)."""
    if sink_factory is not None:
        from .backends import run_scenario_into_sinks

        return run_scenario_into_sinks(
            runner, scenarios[index], record, sink_factory, index, length
        )
    return runner.run(scenarios[index], record=record, length=length)


def _worker_main(
    worker_name: str,
    task_conn: Any,
    result_conn: Any,
    runner: Any,
    scenarios: Sequence[Scenario],
    record: Optional[List[str]],
    sink_factory: Optional[SinkFactory],
    length: Optional[int],
    timeout: Optional[float],
    budget: Optional[ScenarioBudget],
    fault_plan: Optional[FaultPlan],
) -> None:
    """Supervised worker loop: receive ``[(index, attempt), ...]`` chunks,
    send one ``(worker, index, attempt, tag, payload)`` message per
    scenario.  Pipe writes are synchronous, so every sent result survives
    whatever the worker does next (including crashing)."""
    while True:
        try:
            task = task_conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        for index, attempt in task:
            try:
                spec = (
                    fault_plan.lookup(index, attempt)
                    if fault_plan is not None
                    else None
                )
                # The wall clock of a pooled worker is enforced externally
                # (the supervisor kills silent workers), so the cooperative
                # guard is installed only for budgets — the per-instant
                # backend checks cost nothing on timeout-only supervision.
                with guarded(timeout=None, budget=budget) as guard:
                    if spec is not None:
                        fire_fault(spec, in_process=False, guard=guard)
                    payload = _run_one(
                        runner, scenarios, index, record, sink_factory, length
                    )
            except SimulationError as error:
                message = (worker_name, index, attempt, "sim-error", error)
            except ScenarioTimeout as error:
                message = (worker_name, index, attempt, "timeout", str(error))
            except (BudgetExceeded, MemoryError) as error:
                message = (worker_name, index, attempt, "budget", str(error))
            except KeyboardInterrupt:
                return
            except BaseException as error:
                message = (
                    worker_name,
                    index,
                    attempt,
                    "error",
                    (type(error).__name__, str(error), traceback_module.format_exc()),
                )
            else:
                message = (worker_name, index, attempt, "ok", payload)
            try:
                result_conn.send(message)
            except (BrokenPipeError, OSError):
                return  # the supervisor is gone; nothing left to report to


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    """Supervisor-side view of one worker slot."""

    name: str
    process: Any
    task_conn: Any
    result_conn: Any
    #: Unreported scenarios of the current chunk: ``index -> attempt``.
    pending: Dict[int, int] = field(default_factory=dict)
    #: Chunk order (workers run in order, so the first unreported pending
    #: index is the one in flight when the worker dies or stalls).
    order: List[int] = field(default_factory=list)
    deadline: Optional[float] = None

    @property
    def busy(self) -> bool:
        return bool(self.pending)

    def victim(self) -> Tuple[int, int]:
        """The in-flight ``(index, attempt)`` — first unreported in order."""
        for index in self.order:
            attempt = self.pending.get(index)
            if attempt is not None:
                del self.pending[index]
                return index, attempt
        raise LookupError("no pending scenario")  # pragma: no cover

    def remainder(self) -> List[Tuple[int, int]]:
        """The not-yet-started ``(index, attempt)`` pairs after the victim."""
        return [
            (index, self.pending[index])
            for index in self.order
            if index in self.pending
        ]


def _spawn_worker(ctx, name: str, worker_args: Tuple[Any, ...]) -> _Worker:
    """Start one supervised worker with private task/result pipes."""
    task_recv, task_send = ctx.Pipe(duplex=False)
    result_recv, result_send = ctx.Pipe(duplex=False)
    process = ctx.Process(
        target=_worker_main,
        args=(name, task_recv, result_send) + worker_args,
        name=f"repro-supervised-{name}",
        daemon=True,
    )
    process.start()
    # The parent's copies of the child ends would keep the pipes alive past
    # the worker's death; close them so EOF semantics stay crisp.
    task_recv.close()
    result_send.close()
    return _Worker(name=name, process=process, task_conn=task_send, result_conn=result_recv)


def _stop_worker(worker: _Worker, kill: bool = False) -> None:
    """Shut one worker down without wedging on it."""
    if kill:
        try:
            worker.process.kill()
        except (OSError, ValueError, AttributeError):
            pass
    else:
        try:
            worker.task_conn.send(None)
        except (BrokenPipeError, OSError, ValueError):
            pass
    try:
        worker.process.join(_REAP_SECONDS)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(_REAP_SECONDS)
    except (OSError, ValueError, AssertionError):
        pass
    for conn in (worker.task_conn, worker.result_conn):
        try:
            conn.close()
        except (OSError, ValueError):
            pass


def run_batch_supervised(
    runner: Any,
    scenarios: Sequence[Scenario],
    record: Optional[List[str]] = None,
    workers: int = 0,
    collect_errors: bool = False,
    chunk_size: Optional[int] = None,
    sink_factory: Optional[SinkFactory] = None,
    length: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff: float = DEFAULT_BACKOFF,
    max_failures: Optional[int] = None,
    scenario_budget: Optional["ScenarioBudget | int"] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> Tuple[
    List[Optional[SimulationTrace]],
    List[Tuple[int, SimulationError]],
    List[Any],
    List[ScenarioFault],
]:
    """Run *scenarios* through *runner* under per-task supervision.

    Same contents, ordering and error semantics as
    :func:`repro.sig.engine.parallel.run_batch_parallel`, plus a fourth
    returned list of :class:`ScenarioFault` (in scenario order) for the
    scenarios supervision could not recover; faulted scenarios contribute
    ``None`` traces/sink results exactly like collected errors.  Without
    ``collect_errors`` the earliest scenario's
    :class:`~repro.sig.simulator.SimulationError` is raised once the batch
    settles (infrastructure faults never raise — surviving partial results
    are the point of supervision).

    *timeout* bounds each attempt's wall clock (externally by killing the
    silent worker, cooperatively via :class:`ExecutionGuard` inside it),
    *scenario_budget* bounds instants/memory (an ``int`` is shorthand for
    ``ScenarioBudget(max_instants=...)``), failed attempts retry up to
    *retries* times with ``backoff * 2**attempt`` delays, and more than
    *max_failures* failed attempts across the batch trip the circuit
    breaker: everything still undecided faults fast as kind ``"error"``.
    *fault_plan* injects deterministic faults (tests, chaos CI, E17).
    """
    from .parallel import _pool_context, default_worker_count

    record = list(record) if record is not None else None
    count = len(scenarios)
    if retries is None:
        retries = DEFAULT_RETRIES
    scenario_budget = ScenarioBudget.coerce(scenario_budget)
    if workers <= 0:
        workers = default_worker_count()
    workers = min(workers, count) or 1

    supervisor = _Supervision(
        count=count,
        collect_errors=collect_errors,
        streaming=sink_factory is not None,
        retries=retries,
        backoff=backoff,
        max_failures=max_failures,
    )
    if workers == 1 or count <= 1:
        _supervise_in_process(
            supervisor, runner, scenarios, record, sink_factory, length,
            timeout, scenario_budget, fault_plan,
        )
        return supervisor.assemble()

    worker_args = (
        runner, scenarios, record, sink_factory, length,
        timeout, scenario_budget, fault_plan,
    )
    if chunk_size is None:
        chunk_size = max(1, math.ceil(count / (workers * 4)))
    for start in range(0, count, chunk_size):
        supervisor.enqueue(
            [(index, 0) for index in range(start, min(start + chunk_size, count))]
        )

    ctx = _pool_context()
    team: List[_Worker] = []
    try:
        try:
            team = [
                _spawn_worker(ctx, f"w{slot}", worker_args)
                for slot in range(workers)
            ]
        except (OSError, ImportError):
            # Pool-less platform (no semaphores/pipes): degrade in-process
            # with identical semantics.
            for worker in team:
                _stop_worker(worker, kill=True)
            team = []
            _supervise_in_process(
                supervisor, runner, scenarios, record, sink_factory, length,
                timeout, scenario_budget, fault_plan,
            )
            return supervisor.assemble()
        _supervise_pool(supervisor, team, ctx, worker_args, timeout)
    finally:
        for worker in team:
            _stop_worker(worker, kill=worker.busy)
    return supervisor.assemble()


class _Supervision:
    """Shared bookkeeping of one supervised batch: outcomes, the retry
    ladder, the failure counter and the circuit breaker."""

    def __init__(
        self,
        count: int,
        collect_errors: bool,
        streaming: bool,
        retries: int,
        backoff: float,
        max_failures: Optional[int],
    ) -> None:
        self.count = count
        self.collect_errors = collect_errors
        self.streaming = streaming
        self.retries = retries
        self.backoff = backoff
        self.max_failures = max_failures
        self.failures = 0
        self.circuit_open = False
        #: ``index -> (tag, payload)``; tag in {"ok", "sim-error", "fault"}.
        self.outcomes: Dict[int, Tuple[str, Any]] = {}
        #: Retry/task heap: ``(ready_time, sequence, task)``.
        self.ready: List[Tuple[float, int, List[Tuple[int, int]]]] = []
        self._sequence = itertools.count()

    # -- task scheduling ------------------------------------------------
    def enqueue(self, task: List[Tuple[int, int]], ready_at: float = 0.0) -> None:
        """Schedule *task* (a ``[(index, attempt), ...]`` chunk) for
        dispatch no earlier than *ready_at* (monotonic seconds)."""
        if task:
            heapq.heappush(self.ready, (ready_at, next(self._sequence), task))

    def next_task(self, now: float) -> Optional[List[Tuple[int, int]]]:
        """Pop the next dispatchable task, or ``None`` when none is ready."""
        if self.ready and self.ready[0][0] <= now:
            return heapq.heappop(self.ready)[2]
        return None

    def next_ready_at(self) -> Optional[float]:
        """Monotonic time of the earliest scheduled task, or ``None``."""
        return self.ready[0][0] if self.ready else None

    @property
    def settled(self) -> bool:
        """``True`` once every scenario has an outcome."""
        return len(self.outcomes) >= self.count

    # -- outcome recording ----------------------------------------------
    def succeed(self, index: int, payload: Any) -> None:
        """Record one scenario's successful payload."""
        self.outcomes[index] = ("ok", payload)

    def simulation_error(self, index: int, error: SimulationError) -> None:
        """Record a deterministic model error (never retried)."""
        self.outcomes[index] = ("sim-error", error)

    def fail(
        self,
        index: int,
        attempt: int,
        kind: str,
        worker: Optional[str],
        message: str,
        traceback: Optional[str] = None,
    ) -> None:
        """Charge one failed attempt: retry with backoff or fault out."""
        self.failures += 1
        if self.max_failures is not None and self.failures > self.max_failures:
            self.circuit_open = True
        if not self.circuit_open and attempt < self.retries:
            delay = self.backoff * (2 ** attempt)
            self.enqueue([(index, attempt + 1)], ready_at=time.monotonic() + delay)
        else:
            self.outcomes[index] = (
                "fault",
                ScenarioFault(
                    scenario=index,
                    kind=kind,
                    attempts=attempt + 1,
                    worker=worker,
                    message=message,
                    traceback=traceback,
                ),
            )

    def abandon_undecided(self) -> None:
        """Circuit breaker: fault every scenario without an outcome."""
        for index in range(self.count):
            if index not in self.outcomes:
                self.outcomes[index] = (
                    "fault",
                    ScenarioFault(
                        scenario=index,
                        kind="error",
                        attempts=0,
                        message=(
                            f"abandoned: circuit breaker open after "
                            f"{self.failures} failed attempt(s) "
                            f"(max_failures={self.max_failures})"
                        ),
                    ),
                )

    # -- result assembly -------------------------------------------------
    def assemble(
        self,
    ) -> Tuple[
        List[Optional[SimulationTrace]],
        List[Tuple[int, SimulationError]],
        List[Any],
        List[ScenarioFault],
    ]:
        """Ordered ``(traces, errors, sink_results, faults)`` of the batch."""
        traces: List[Optional[SimulationTrace]] = []
        errors: List[Tuple[int, SimulationError]] = []
        sink_results: List[Any] = []
        faults: List[ScenarioFault] = []
        for index in range(self.count):
            tag, payload = self.outcomes.get(index, ("fault", None))
            if payload is None and tag == "fault":  # pragma: no cover - safety net
                payload = ScenarioFault(index, "error", 0, message="no outcome recorded")
            ok = tag == "ok"
            if tag == "sim-error":
                errors.append((index, payload))
            elif tag == "fault":
                faults.append(payload)
            if self.streaming:
                traces.append(None)
                sink_results.append(payload if ok else None)
            else:
                traces.append(payload if ok else None)
        if not self.collect_errors and errors:
            raise errors[0][1]
        return traces, errors, sink_results, faults


def _supervise_pool(
    supervisor: _Supervision,
    team: List[_Worker],
    ctx,
    worker_args: Tuple[Any, ...],
    timeout: Optional[float],
) -> None:
    """The supervision event loop over a team of worker processes."""

    def handle_message(worker: _Worker, message: Tuple[Any, ...]) -> None:
        _, index, attempt, tag, payload = message
        if worker.pending.pop(index, None) is None:
            return  # stale duplicate after a requeue; ignore
        if worker.deadline is not None and timeout is not None:
            worker.deadline = time.monotonic() + timeout  # progress resets it
        if tag == "ok":
            supervisor.succeed(index, payload)
        elif tag == "sim-error":
            supervisor.simulation_error(index, payload)
        elif tag == "timeout":
            supervisor.fail(index, attempt, "timeout", worker.name, payload)
        elif tag == "budget":
            supervisor.fail(index, attempt, "budget", worker.name, payload)
        else:  # "error"
            type_name, text, trace = payload
            supervisor.fail(
                index, attempt, "error", worker.name,
                f"{type_name}: {text}", trace,
            )
        if not worker.pending:
            worker.order = []
            worker.deadline = None

    def drain(worker: _Worker) -> None:
        try:
            while worker.result_conn.poll():
                handle_message(worker, worker.result_conn.recv())
        except (EOFError, OSError):
            pass  # the worker died; the sentinel path attributes the loss

    def replace(slot: int, kill: bool) -> None:
        _stop_worker(team[slot], kill=kill)
        team[slot] = _spawn_worker(ctx, team[slot].name, worker_args)

    while not supervisor.settled:
        if supervisor.circuit_open:
            supervisor.abandon_undecided()
            break
        now = time.monotonic()

        # Dispatch ready tasks to idle (live) workers.
        for slot, worker in enumerate(team):
            if worker.busy:
                continue
            task = supervisor.next_task(now)
            if task is None:
                break
            if not worker.process.is_alive():
                replace(slot, kill=False)
                worker = team[slot]
            worker.pending = dict(task)
            worker.order = [index for index, _ in task]
            worker.deadline = now + timeout if timeout is not None else None
            try:
                worker.task_conn.send(task)
            except (BrokenPipeError, OSError):
                # Died between the liveness check and the send: requeue and
                # let the next pass respawn it.
                supervisor.enqueue(list(task))
                worker.pending = {}
                worker.order = []
                worker.deadline = None
                replace(slot, kill=True)

        # Wait for progress: results, worker deaths, deadlines, backoff.
        wait_for = [worker.result_conn for worker in team]
        wait_for += [worker.process.sentinel for worker in team if worker.busy]
        wait_timeout = 0.2
        for worker in team:
            if worker.deadline is not None:
                wait_timeout = min(wait_timeout, worker.deadline - now)
        # A scheduled task only shortens the wait when a worker is idle to
        # take it (after the dispatch pass, any such task lies in the
        # future — a backoff retry).  With every worker busy, waking early
        # for the backlog would just busy-poll against the workers.
        if any(not worker.busy for worker in team):
            ready_at = supervisor.next_ready_at()
            if ready_at is not None:
                wait_timeout = min(wait_timeout, max(ready_at - now, 0.0))
        mp_connection.wait(wait_for, timeout=max(0.0, wait_timeout))

        # Results first: anything a worker reported before dying counts.
        for worker in team:
            drain(worker)

        now = time.monotonic()
        for slot, worker in enumerate(team):
            if not worker.busy:
                continue
            if not worker.process.is_alive():
                drain(worker)
                if worker.busy:
                    index, attempt = worker.victim()
                    exitcode = worker.process.exitcode
                    supervisor.fail(
                        index, attempt, "crash", worker.name,
                        f"worker {worker.name} died with exit code {exitcode} "
                        f"while running scenario {index}",
                    )
                    supervisor.enqueue(worker.remainder())
                replace(slot, kill=False)
            elif worker.deadline is not None and now > worker.deadline:
                index, attempt = worker.victim()
                supervisor.fail(
                    index, attempt, "timeout", worker.name,
                    f"worker {worker.name} made no progress within the "
                    f"{timeout:.3g}s timeout; killed",
                )
                supervisor.enqueue(worker.remainder())
                replace(slot, kill=True)


def _supervise_in_process(
    supervisor: _Supervision,
    runner: Any,
    scenarios: Sequence[Scenario],
    record: Optional[List[str]],
    sink_factory: Optional[SinkFactory],
    length: Optional[int],
    timeout: Optional[float],
    budget: Optional[ScenarioBudget],
    fault_plan: Optional[FaultPlan],
) -> None:
    """Degraded (single-process) supervision: cooperative budgets/timeouts
    through the backends' guard checks, the same retry ladder, circuit
    breaker and fault taxonomy as the pooled path."""
    for index in range(supervisor.count):
        if supervisor.circuit_open:
            break
        attempt = 0
        while True:
            try:
                spec = (
                    fault_plan.lookup(index, attempt)
                    if fault_plan is not None
                    else None
                )
                with guarded(timeout=timeout, budget=budget) as guard:
                    if spec is not None:
                        fire_fault(spec, in_process=True, guard=guard)
                    payload = _run_one(
                        runner, scenarios, index, record, sink_factory, length
                    )
            except SimulationError as error:
                if not supervisor.collect_errors:
                    # Match the sequential loop exactly: fail fast, never
                    # touching the scenarios after the failing one.
                    raise
                supervisor.simulation_error(index, error)
                break
            except InjectedCrash as error:
                kind, message, trace = "crash", str(error), None
            except ScenarioTimeout as error:
                kind, message, trace = "timeout", str(error), None
            except (BudgetExceeded, MemoryError) as error:
                kind, message, trace = "budget", str(error), None
            except Exception as error:
                kind = "error"
                message = f"{type(error).__name__}: {error}"
                trace = traceback_module.format_exc()
            else:
                supervisor.succeed(index, payload)
                break
            retrying = (
                not supervisor.circuit_open
                and attempt < supervisor.retries
                and not (
                    supervisor.max_failures is not None
                    and supervisor.failures + 1 > supervisor.max_failures
                )
            )
            supervisor.fail(index, attempt, kind, None, message, trace)
            if not retrying or supervisor.circuit_open:
                break
            time.sleep(supervisor.backoff * (2 ** attempt))
            attempt += 1
    if supervisor.circuit_open:
        supervisor.abandon_undecided()


__all__ = [
    "BudgetExceeded",
    "DEFAULT_BACKOFF",
    "DEFAULT_RETRIES",
    "ExecutionGuard",
    "ScenarioBudget",
    "ScenarioFault",
    "ScenarioTimeout",
    "current_guard",
    "guarded",
    "run_batch_supervised",
]
