"""Value domain of the polychronous model of computation.

In the polychronous model (the SIGNAL language), a *signal* is an unbounded
series of values implicitly indexed by a discrete, partially ordered time.  At
any logical instant a signal is either *present* and carries a value of its
type, or *absent*.  Absence is denoted by the bottom value ``⊥`` in the paper;
here it is represented by the :data:`ABSENT` singleton so that ``None`` stays
available as an ordinary (if unusual) signal value.

The module also defines the small type system used by the SIGNAL kernel:
``event``, ``boolean``, ``integer``, ``real``, ``string`` and named/opaque
types used when translating AADL data classifiers whose content is not
interpreted by the analysis.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence


class _Absent:
    """Singleton marking the absence (``⊥``) of a signal at an instant."""

    _instance: Optional["_Absent"] = None

    def __new__(cls) -> "_Absent":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "⊥"

    def __bool__(self) -> bool:
        return False

    def __copy__(self) -> "_Absent":
        return self

    def __deepcopy__(self, memo: dict) -> "_Absent":
        return self


#: The absence value ``⊥``.  A signal holding :data:`ABSENT` at an instant is
#: simply not present at that instant.
ABSENT = _Absent()


def is_present(value: Any) -> bool:
    """Return ``True`` when *value* is a real value (not :data:`ABSENT`)."""
    return value is not ABSENT


def is_absent(value: Any) -> bool:
    """Return ``True`` when *value* is the absence marker :data:`ABSENT`."""
    return value is ABSENT


class SignalKind(enum.Enum):
    """Base kinds of the SIGNAL type system used by the kernel."""

    EVENT = "event"
    BOOLEAN = "boolean"
    INTEGER = "integer"
    REAL = "real"
    STRING = "string"
    OPAQUE = "opaque"
    BUNDLE = "bundle"


@dataclass(frozen=True)
class SignalType:
    """Type of a signal.

    ``event`` signals are pure synchronization signals: when present they
    always carry the value ``True``.  ``opaque`` types carry a name (for
    instance the AADL data classifier they come from) but their values are
    not interpreted by the analyses.
    """

    kind: SignalKind
    name: Optional[str] = None
    element_types: Optional[tuple] = None

    def __str__(self) -> str:
        if self.kind is SignalKind.OPAQUE and self.name:
            return self.name
        if self.kind is SignalKind.BUNDLE:
            inner = ", ".join(str(t) for t in (self.element_types or ()))
            return f"bundle({inner})"
        return self.kind.value

    @property
    def is_event(self) -> bool:
        return self.kind is SignalKind.EVENT

    @property
    def is_boolean(self) -> bool:
        return self.kind is SignalKind.BOOLEAN

    @property
    def is_numeric(self) -> bool:
        return self.kind in (SignalKind.INTEGER, SignalKind.REAL)

    def accepts(self, value: Any) -> bool:
        """Check that a present *value* is compatible with this type."""
        if is_absent(value):
            return True
        if self.kind is SignalKind.EVENT:
            return value is True
        if self.kind is SignalKind.BOOLEAN:
            return isinstance(value, bool)
        if self.kind is SignalKind.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self.kind is SignalKind.REAL:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.kind is SignalKind.STRING:
            return isinstance(value, str)
        return True

    def default_value(self) -> Any:
        """A neutral initial value for delays whose ``init`` is omitted."""
        if self.kind is SignalKind.EVENT:
            return True
        if self.kind is SignalKind.BOOLEAN:
            return False
        if self.kind is SignalKind.INTEGER:
            return 0
        if self.kind is SignalKind.REAL:
            return 0.0
        if self.kind is SignalKind.STRING:
            return ""
        return None


#: Pre-built types, matching the SIGNAL surface syntax keywords.
EVENT = SignalType(SignalKind.EVENT)
BOOLEAN = SignalType(SignalKind.BOOLEAN)
INTEGER = SignalType(SignalKind.INTEGER)
REAL = SignalType(SignalKind.REAL)
STRING = SignalType(SignalKind.STRING)


def opaque(name: str) -> SignalType:
    """Create an opaque named type (uninterpreted data classifier)."""
    return SignalType(SignalKind.OPAQUE, name=name)


def bundle(*element_types: SignalType) -> SignalType:
    """Create a bundle (polychronous tuple) type.

    Bundles are used by the AADL translation for the ``ctl1``, ``time1`` and
    ``ctl2`` interface groups of a translated thread (Fig. 4 in the paper).
    """
    return SignalType(SignalKind.BUNDLE, element_types=tuple(element_types))


class Flow:
    """A finite recorded flow of one signal: a list of values or ``⊥``.

    Flows are what the reference simulator produces and what scenario
    generators feed it with.  The instants are the instants of the chosen
    simulation (master) clock.
    """

    __slots__ = ("name", "values")

    def __init__(self, name: str, values: Optional[Iterable[Any]] = None) -> None:
        self.name = name
        self.values: List[Any] = list(values) if values is not None else []

    def append(self, value: Any) -> None:
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Any:
        return self.values[index]

    def __iter__(self):
        return iter(self.values)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, Flow):
            return self.name == other.name and self.values == other.values
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        shown = ", ".join("⊥" if is_absent(v) else repr(v) for v in self.values)
        return f"Flow({self.name}: [{shown}])"

    @property
    def clock(self) -> List[int]:
        """Indices of the instants at which the signal is present."""
        return [i for i, v in enumerate(self.values) if is_present(v)]

    def present_values(self) -> List[Any]:
        """The sub-sequence of present values (the signal 'as observed')."""
        return [v for v in self.values if is_present(v)]

    def count_present(self) -> int:
        return len(self.clock)

    def synchronous_with(self, other: "Flow") -> bool:
        """Two flows are synchronous when they are present at the same instants."""
        return self.clock == other.clock

    def restricted_to(self, instants: Sequence[int]) -> "Flow":
        """Return a copy keeping only the given instants (others absent)."""
        keep = set(instants)
        return Flow(
            self.name,
            [v if i in keep else ABSENT for i, v in enumerate(self.values)],
        )

    def pad_to(self, length: int) -> "Flow":
        """Return a copy padded with ⊥ up to *length* instants."""
        padded = list(self.values) + [ABSENT] * max(0, length - len(self.values))
        return Flow(self.name, padded)


def stutter_free(values: Iterable[Any]) -> List[Any]:
    """Drop the ⊥ entries of a sequence, keeping only present values.

    The asynchronous observation of a flow is its stutter-free projection;
    flow equivalence (used by several tests) compares these projections.
    """
    return [v for v in values if is_present(v)]
