"""Polychronous (SIGNAL) model of computation.

This subpackage is the from-scratch substitute for the Polychrony/SIGNAL
toolset used by the paper: the signal value domain, the expression and process
models, the clock calculus, the affine clock calculus, static analyses
(determinism, deadlock), a reference simulator, a VCD trace writer, the
AADL2SIGNAL process library and the profiling-based performance estimation.
"""

from .values import (
    ABSENT,
    BOOLEAN,
    EVENT,
    INTEGER,
    REAL,
    STRING,
    Flow,
    SignalKind,
    SignalType,
    bundle,
    is_absent,
    is_present,
    opaque,
    stutter_free,
)
from .expressions import (
    Cell,
    ClockDifference,
    ClockIntersection,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Expression,
    FunctionApp,
    SignalRef,
    Var,
    When,
    WhenClock,
    register_stepwise_operation,
)
from .process import (
    Bundle,
    ClockConstraint,
    ConstraintKind,
    Direction,
    Equation,
    ProcessInstance,
    ProcessModel,
    SignalDecl,
)
from .clocks import Clock, ClockAtom, false_clock, signal_clock, true_clock
from .clock_calculus import (
    ClockCalculus,
    ClockCalculusError,
    ClockCalculusResult,
    run_clock_calculus,
    solve_constraint_system,
)
from .calculus_modular import (
    ExtractionCache,
    ModularClockCalculus,
    run_clock_calculus_modular,
)
from .affine import (
    AffineClock,
    AffineRelation,
    first_conflict,
    hyperperiod_of,
    lcm,
    lcm_many,
    mutually_disjoint,
    relation_between,
    solve_congruences,
)
from .scenario import (
    ConstantRule,
    ExplicitRule,
    GeneratorRule,
    InputProgram,
    InputRule,
    PeriodicRule,
    Scenario,
    SparseRule,
    as_rule,
)
from .simulator import (
    ClockViolation,
    InstantaneousCycle,
    NonDeterministicDefinition,
    SimulationError,
    SimulationTrace,
    Simulator,
    simulate,
)
from .printer import SignalPrinter, interface_summary, module_source, to_signal_source
from .sinks import (
    MaterializeSink,
    SignalStatistics,
    StatisticsSink,
    TraceHeader,
    TraceSink,
    TraceStatistics,
    batch_statistics_summary,
    replay_trace,
)
from .vcd import (
    StreamingVcdSink,
    VcdDocument,
    VcdWriter,
    parse_vcd,
    shape_for_type,
    shapes_from_trace,
    write_vcd,
)
from .profiling import (
    EMBEDDED_CPU,
    GENERIC_PROCESSOR,
    MICROCONTROLLER,
    CostModel,
    DynamicProfile,
    Profiler,
    StaticProfile,
    compare_architectures,
)
from .scheduler_graph import DependencyGraph, build_dependency_graph
from .engine import (
    BACKENDS,
    DEFAULT_BACKEND,
    BatchResult,
    CompiledBackend,
    ExecutionPlan,
    ReferenceBackend,
    SimulationBackend,
    backend_names,
    compile_plan,
    create_backend,
    default_scenario,
    default_worker_count,
    run_batch_parallel,
    simulate_batch,
)
from . import analysis, builder, engine, library, scenario, sinks, vcd

__all__ = [
    # values
    "ABSENT", "BOOLEAN", "EVENT", "INTEGER", "REAL", "STRING", "Flow",
    "SignalKind", "SignalType", "bundle", "is_absent", "is_present", "opaque",
    "stutter_free",
    # expressions
    "Cell", "ClockDifference", "ClockIntersection", "ClockOf", "ClockUnion",
    "Const", "Default", "Delay", "Expression", "FunctionApp", "SignalRef",
    "Var", "When", "WhenClock", "register_stepwise_operation",
    # process
    "Bundle", "ClockConstraint", "ConstraintKind", "Direction", "Equation",
    "ProcessInstance", "ProcessModel", "SignalDecl",
    # clocks
    "Clock", "ClockAtom", "false_clock", "signal_clock", "true_clock",
    "ClockCalculus", "ClockCalculusError", "ClockCalculusResult", "run_clock_calculus",
    "solve_constraint_system",
    # modular clock calculus
    "ExtractionCache", "ModularClockCalculus", "run_clock_calculus_modular",
    # affine
    "AffineClock", "AffineRelation", "first_conflict", "hyperperiod_of",
    "lcm", "lcm_many", "mutually_disjoint", "relation_between", "solve_congruences",
    # symbolic scenario programs
    "ConstantRule", "ExplicitRule", "GeneratorRule", "InputProgram",
    "InputRule", "PeriodicRule", "SparseRule", "as_rule",
    # simulation
    "ClockViolation", "InstantaneousCycle", "NonDeterministicDefinition",
    "Scenario", "SimulationError", "SimulationTrace", "Simulator", "simulate",
    # printing / traces
    "SignalPrinter", "interface_summary", "module_source", "to_signal_source",
    "VcdDocument", "VcdWriter", "parse_vcd", "write_vcd",
    # streaming sinks
    "MaterializeSink", "SignalStatistics", "StatisticsSink", "StreamingVcdSink",
    "TraceHeader", "TraceSink", "TraceStatistics", "batch_statistics_summary",
    "replay_trace", "shape_for_type", "shapes_from_trace",
    # profiling
    "EMBEDDED_CPU", "GENERIC_PROCESSOR", "MICROCONTROLLER", "CostModel",
    "DynamicProfile", "Profiler", "StaticProfile", "compare_architectures",
    # graph
    "DependencyGraph", "build_dependency_graph",
    # engine
    "BACKENDS", "DEFAULT_BACKEND", "BatchResult", "CompiledBackend",
    "ExecutionPlan", "ReferenceBackend", "SimulationBackend", "backend_names",
    "compile_plan", "create_backend", "default_scenario", "default_worker_count",
    "run_batch_parallel", "simulate_batch",
    # submodules
    "analysis", "builder", "engine", "library", "scenario", "sinks", "vcd",
]
