"""Process model of the polychronous kernel.

A SIGNAL *process* is a set of equations over signals, composed with other
processes, together with clock constraints.  The paper's translation produces
a hierarchy of such processes: one per AADL system, processor, process,
thread, port and shared data component.

This module defines the declarative structure:

* :class:`SignalDecl` — a typed signal of the interface or of the body;
* :class:`Equation` — a full (``:=``) or partial (``::=``) definition;
* :class:`ClockConstraint` — synchronisation (``^=``), inclusion (``^<``) or
  mutual exclusion (``^#``) constraints between clock expressions;
* :class:`ProcessInstance` — the instantiation of another process model with
  actual signals bound to its interface;
* :class:`ProcessModel` — the process itself, with sub-models, instances,
  bundles (polychronous tuples of interface signals) and pragmas used for
  traceability back to the AADL model.

:meth:`ProcessModel.flatten` inlines all instances (with hierarchical name
mangling) and returns a single flat process, which is what the clock
calculus, static analyses and the simulator consume.
"""

from __future__ import annotations

import copy
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .expressions import (
    Cell,
    ClockDifference,
    ClockIntersection,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Expression,
    FunctionApp,
    SignalRef,
    Var,
    When,
    WhenClock,
)
from .values import EVENT, SignalType


class Direction(enum.Enum):
    """Role of a signal in a process interface."""

    INPUT = "input"
    OUTPUT = "output"
    LOCAL = "local"
    SHARED = "shared"  # state variable, target of partial definitions


@dataclass
class SignalDecl:
    """Declaration of a typed signal."""

    name: str
    type: SignalType = EVENT
    direction: Direction = Direction.LOCAL
    comment: Optional[str] = None

    def copy(self) -> "SignalDecl":
        return SignalDecl(self.name, self.type, self.direction, self.comment)


@dataclass
class Equation:
    """``target := expr`` (full) or ``target ::= expr`` (partial) definition."""

    target: str
    expr: Expression
    partial: bool = False
    label: Optional[str] = None

    def __str__(self) -> str:
        op = "::=" if self.partial else ":="
        return f"{self.target} {op} {self.expr}"


class ConstraintKind(enum.Enum):
    """Kinds of explicit clock constraints."""

    SYNCHRONOUS = "^="
    SUBCLOCK = "^<"
    EXCLUSIVE = "^#"


@dataclass
class ClockConstraint:
    """An explicit clock constraint between expressions (usually signal refs)."""

    kind: ConstraintKind
    operands: Tuple[Expression, ...]
    label: Optional[str] = None

    def __str__(self) -> str:
        return f" {self.kind.value} ".join(str(o) for o in self.operands)


@dataclass
class Bundle:
    """A polychronous tuple of signals exposed as one named interface group.

    The AADL translation groups the control events of a thread into bundles
    ``ctl1`` (Dispatch, Resume, Deadline), ``time1`` (frozen/output time
    events) and ``ctl2`` (Error, Complete) as in Fig. 4 of the paper.
    """

    name: str
    fields: Dict[str, str] = field(default_factory=dict)  # field name -> signal name

    def signal_names(self) -> List[str]:
        return list(self.fields.values())


@dataclass
class ProcessInstance:
    """Instantiation of a process model inside another one.

    ``bindings`` maps the *formal* interface signal names of the instantiated
    model to the *actual* signal names of the enclosing process.  Formals left
    unbound are exposed as fresh local signals of the parent after flattening.
    """

    model: "ProcessModel"
    instance_name: str
    bindings: Dict[str, str] = field(default_factory=dict)
    parameters: Dict[str, Any] = field(default_factory=dict)


class ProcessModel:
    """A polychronous process: interface, equations, constraints, sub-processes."""

    def __init__(
        self,
        name: str,
        parameters: Optional[Mapping[str, Any]] = None,
        comment: Optional[str] = None,
    ) -> None:
        self.name = name
        self.parameters: Dict[str, Any] = dict(parameters or {})
        self.comment = comment
        self.signals: Dict[str, SignalDecl] = {}
        self.equations: List[Equation] = []
        self.constraints: List[ClockConstraint] = []
        self.instances: List[ProcessInstance] = []
        self.submodels: Dict[str, "ProcessModel"] = {}
        self.bundles: Dict[str, Bundle] = {}
        self.pragmas: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # declaration helpers
    # ------------------------------------------------------------------
    def add_signal(
        self,
        name: str,
        type: SignalType = EVENT,
        direction: Direction = Direction.LOCAL,
        comment: Optional[str] = None,
    ) -> SignalRef:
        """Declare a signal and return a reference to it.

        Re-declaring an existing signal with a compatible direction is
        accepted (and ignored), which makes incremental construction by the
        translator simpler.
        """
        existing = self.signals.get(name)
        if existing is not None:
            if existing.direction is not direction and direction is not Direction.LOCAL:
                existing.direction = direction
            return SignalRef(name)
        self.signals[name] = SignalDecl(name, type, direction, comment)
        return SignalRef(name)

    def input(self, name: str, type: SignalType = EVENT, comment: Optional[str] = None) -> SignalRef:
        return self.add_signal(name, type, Direction.INPUT, comment)

    def output(self, name: str, type: SignalType = EVENT, comment: Optional[str] = None) -> SignalRef:
        return self.add_signal(name, type, Direction.OUTPUT, comment)

    def local(self, name: str, type: SignalType = EVENT, comment: Optional[str] = None) -> SignalRef:
        return self.add_signal(name, type, Direction.LOCAL, comment)

    def shared(self, name: str, type: SignalType = EVENT, comment: Optional[str] = None) -> SignalRef:
        return self.add_signal(name, type, Direction.SHARED, comment)

    def add_bundle(self, name: str, fields: Mapping[str, str]) -> Bundle:
        bundle = Bundle(name, dict(fields))
        self.bundles[name] = bundle
        return bundle

    # ------------------------------------------------------------------
    # body helpers
    # ------------------------------------------------------------------
    def define(self, target: str, expr: Expression, label: Optional[str] = None) -> Equation:
        """Add a full definition ``target := expr``."""
        if target not in self.signals:
            self.add_signal(target)
        eq = Equation(target, expr, partial=False, label=label)
        self.equations.append(eq)
        return eq

    def define_partial(self, target: str, expr: Expression, label: Optional[str] = None) -> Equation:
        """Add a partial definition ``target ::= expr`` (shared variable style)."""
        if target not in self.signals:
            self.add_signal(target, direction=Direction.SHARED)
        eq = Equation(target, expr, partial=True, label=label)
        self.equations.append(eq)
        return eq

    def synchronise(self, *signals: str, label: Optional[str] = None) -> ClockConstraint:
        """Constrain the given signals to share the same clock (``x ^= y``)."""
        constraint = ClockConstraint(
            ConstraintKind.SYNCHRONOUS,
            tuple(SignalRef(s) if isinstance(s, str) else s for s in signals),
            label=label,
        )
        self.constraints.append(constraint)
        return constraint

    def subclock(self, smaller: str, larger: str, label: Optional[str] = None) -> ClockConstraint:
        constraint = ClockConstraint(
            ConstraintKind.SUBCLOCK,
            (SignalRef(smaller), SignalRef(larger)),
            label=label,
        )
        self.constraints.append(constraint)
        return constraint

    def exclusive(self, *signals: str, label: Optional[str] = None) -> ClockConstraint:
        constraint = ClockConstraint(
            ConstraintKind.EXCLUSIVE,
            tuple(SignalRef(s) for s in signals),
            label=label,
        )
        self.constraints.append(constraint)
        return constraint

    def add_submodel(self, model: "ProcessModel") -> "ProcessModel":
        """Register a locally defined process model (nested declaration)."""
        self.submodels[model.name] = model
        return model

    def instantiate(
        self,
        model: "ProcessModel",
        instance_name: str,
        bindings: Optional[Mapping[str, str]] = None,
        parameters: Optional[Mapping[str, Any]] = None,
    ) -> ProcessInstance:
        """Instantiate *model* inside this process, binding formals to actuals."""
        instance = ProcessInstance(
            model=model,
            instance_name=instance_name,
            bindings=dict(bindings or {}),
            parameters=dict(parameters or {}),
        )
        self.instances.append(instance)
        for formal, actual in instance.bindings.items():
            if actual not in self.signals:
                decl = model.signals.get(formal)
                self.add_signal(actual, decl.type if decl else EVENT)
        return instance

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def inputs(self) -> List[SignalDecl]:
        return [d for d in self.signals.values() if d.direction is Direction.INPUT]

    def outputs(self) -> List[SignalDecl]:
        return [d for d in self.signals.values() if d.direction is Direction.OUTPUT]

    def locals(self) -> List[SignalDecl]:
        return [d for d in self.signals.values() if d.direction is Direction.LOCAL]

    def shared_signals(self) -> List[SignalDecl]:
        return [d for d in self.signals.values() if d.direction is Direction.SHARED]

    def interface_names(self) -> List[str]:
        return [d.name for d in self.signals.values() if d.direction in (Direction.INPUT, Direction.OUTPUT)]

    def equations_for(self, target: str) -> List[Equation]:
        return [eq for eq in self.equations if eq.target == target]

    def defined_signals(self) -> List[str]:
        seen: Dict[str, None] = {}
        for eq in self.equations:
            seen.setdefault(eq.target, None)
        return list(seen)

    def signal_count(self) -> int:
        return len(self.signals)

    def equation_count(self) -> int:
        return len(self.equations)

    def all_models(self) -> List["ProcessModel"]:
        """This model plus, recursively, every instantiated/nested model."""
        seen: Dict[int, ProcessModel] = {}

        def visit(model: "ProcessModel") -> None:
            if id(model) in seen:
                return
            seen[id(model)] = model
            for sub in model.submodels.values():
                visit(sub)
            for inst in model.instances:
                visit(inst.model)

        visit(self)
        return list(seen.values())

    # ------------------------------------------------------------------
    # flattening
    # ------------------------------------------------------------------
    def flatten(self, prefix: str = "") -> "ProcessModel":
        """Inline every instance and return an equivalent flat process.

        Hierarchical names are built as ``instance_name + "_" + signal`` so
        that traceability back to the AADL component hierarchy is preserved
        (the paper's "simple but efficient mechanism of traceability").
        """
        flat = ProcessModel(self.name if not prefix else f"{prefix}{self.name}", dict(self.parameters), self.comment)
        flat.pragmas.update(self.pragmas)
        self._flatten_into(flat, prefix="", top=True)
        return flat

    def _flatten_into(self, flat: "ProcessModel", prefix: str, top: bool) -> None:
        rename: Dict[str, str] = {}
        for decl in self.signals.values():
            new_name = decl.name if top else f"{prefix}{decl.name}"
            rename[decl.name] = new_name

        for decl in self.signals.values():
            new_name = rename[decl.name]
            direction = decl.direction if top else (
                Direction.SHARED if decl.direction is Direction.SHARED else Direction.LOCAL
            )
            if new_name not in flat.signals:
                flat.signals[new_name] = SignalDecl(new_name, decl.type, direction, decl.comment)

        for bundle in self.bundles.values():
            bname = bundle.name if top else f"{prefix}{bundle.name}"
            flat.bundles[bname] = Bundle(bname, {f: rename.get(s, s) for f, s in bundle.fields.items()})

        for eq in self.equations:
            flat.equations.append(
                Equation(
                    rename.get(eq.target, eq.target),
                    rename_expression(eq.expr, rename),
                    partial=eq.partial,
                    label=eq.label,
                )
            )
        for constraint in self.constraints:
            flat.constraints.append(
                ClockConstraint(
                    constraint.kind,
                    tuple(rename_expression(op, rename) for op in constraint.operands),
                    label=constraint.label,
                )
            )

        for instance in self.instances:
            child_prefix = f"{prefix}{instance.instance_name}_"
            child = instance.model
            child_rename: Dict[str, str] = {}
            for decl in child.signals.values():
                if decl.name in instance.bindings:
                    child_rename[decl.name] = rename.get(
                        instance.bindings[decl.name], instance.bindings[decl.name]
                    )
                else:
                    child_rename[decl.name] = f"{child_prefix}{decl.name}"
            child._flatten_bound(flat, child_prefix, child_rename, instance.parameters)

    def _flatten_bound(
        self,
        flat: "ProcessModel",
        prefix: str,
        rename: Dict[str, str],
        parameters: Mapping[str, Any],
    ) -> None:
        for decl in self.signals.values():
            new_name = rename[decl.name]
            if new_name not in flat.signals:
                direction = Direction.SHARED if decl.direction is Direction.SHARED else Direction.LOCAL
                flat.signals[new_name] = SignalDecl(new_name, decl.type, direction, decl.comment)

        for bundle in self.bundles.values():
            bname = f"{prefix}{bundle.name}"
            flat.bundles[bname] = Bundle(bname, {f: rename.get(s, s) for f, s in bundle.fields.items()})

        substitution = dict(self.parameters)
        substitution.update(parameters)

        for eq in self.equations:
            flat.equations.append(
                Equation(
                    rename.get(eq.target, eq.target),
                    rename_expression(substitute_parameters(eq.expr, substitution), rename),
                    partial=eq.partial,
                    label=eq.label,
                )
            )
        for constraint in self.constraints:
            flat.constraints.append(
                ClockConstraint(
                    constraint.kind,
                    tuple(
                        rename_expression(substitute_parameters(op, substitution), rename)
                        for op in constraint.operands
                    ),
                    label=constraint.label,
                )
            )
        for instance in self.instances:
            child_prefix = f"{prefix}{instance.instance_name}_"
            child = instance.model
            child_rename: Dict[str, str] = {}
            for decl in child.signals.values():
                if decl.name in instance.bindings:
                    bound = instance.bindings[decl.name]
                    child_rename[decl.name] = rename.get(bound, f"{prefix}{bound}")
                else:
                    child_rename[decl.name] = f"{child_prefix}{decl.name}"
            merged_params = dict(substitution)
            merged_params.update(instance.parameters)
            child._flatten_bound(flat, child_prefix, child_rename, merged_params)

    # ------------------------------------------------------------------
    def copy(self) -> "ProcessModel":
        return copy.deepcopy(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ProcessModel({self.name!r}, signals={len(self.signals)}, "
            f"equations={len(self.equations)}, instances={len(self.instances)})"
        )


# ----------------------------------------------------------------------
# expression rewriting helpers
# ----------------------------------------------------------------------
def rename_expression(expr: Expression, rename: Mapping[str, str]) -> Expression:
    """Return *expr* with every signal reference renamed through *rename*."""
    if isinstance(expr, SignalRef):
        return SignalRef(rename.get(expr.name, expr.name))
    if isinstance(expr, Var):
        return Var(rename.get(expr.name, expr.name))
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, FunctionApp):
        return FunctionApp(expr.op, tuple(rename_expression(a, rename) for a in expr.args))
    if isinstance(expr, Delay):
        return Delay(rename_expression(expr.operand, rename), expr.init, expr.depth)
    if isinstance(expr, When):
        return When(rename_expression(expr.operand, rename), rename_expression(expr.condition, rename))
    if isinstance(expr, Default):
        return Default(rename_expression(expr.left, rename), rename_expression(expr.right, rename))
    if isinstance(expr, Cell):
        return Cell(
            rename_expression(expr.operand, rename),
            rename_expression(expr.condition, rename),
            expr.init,
        )
    if isinstance(expr, ClockOf):
        return ClockOf(rename_expression(expr.operand, rename))
    if isinstance(expr, WhenClock):
        return WhenClock(rename_expression(expr.condition, rename))
    if isinstance(expr, ClockUnion):
        return ClockUnion(rename_expression(expr.left, rename), rename_expression(expr.right, rename))
    if isinstance(expr, ClockIntersection):
        return ClockIntersection(rename_expression(expr.left, rename), rename_expression(expr.right, rename))
    if isinstance(expr, ClockDifference):
        return ClockDifference(rename_expression(expr.left, rename), rename_expression(expr.right, rename))
    raise TypeError(f"cannot rename expression of type {type(expr).__name__}")


def substitute_parameters(expr: Expression, parameters: Mapping[str, Any]) -> Expression:
    """Replace signal references whose name is a static parameter by constants."""
    if not parameters:
        return expr
    if isinstance(expr, SignalRef) and expr.name in parameters:
        return Const(parameters[expr.name])
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, FunctionApp):
        return FunctionApp(expr.op, tuple(substitute_parameters(a, parameters) for a in expr.args))
    if isinstance(expr, Delay):
        init = expr.init
        if isinstance(init, str) and init in parameters:
            init = parameters[init]
        return Delay(substitute_parameters(expr.operand, parameters), init, expr.depth)
    if isinstance(expr, When):
        return When(
            substitute_parameters(expr.operand, parameters),
            substitute_parameters(expr.condition, parameters),
        )
    if isinstance(expr, Default):
        return Default(
            substitute_parameters(expr.left, parameters),
            substitute_parameters(expr.right, parameters),
        )
    if isinstance(expr, Cell):
        init = expr.init
        if isinstance(init, str) and init in parameters:
            init = parameters[init]
        return Cell(
            substitute_parameters(expr.operand, parameters),
            substitute_parameters(expr.condition, parameters),
            init,
        )
    if isinstance(expr, ClockOf):
        return ClockOf(substitute_parameters(expr.operand, parameters))
    if isinstance(expr, WhenClock):
        return WhenClock(substitute_parameters(expr.condition, parameters))
    if isinstance(expr, ClockUnion):
        return ClockUnion(
            substitute_parameters(expr.left, parameters),
            substitute_parameters(expr.right, parameters),
        )
    if isinstance(expr, ClockIntersection):
        return ClockIntersection(
            substitute_parameters(expr.left, parameters),
            substitute_parameters(expr.right, parameters),
        )
    if isinstance(expr, ClockDifference):
        return ClockDifference(
            substitute_parameters(expr.left, parameters),
            substitute_parameters(expr.right, parameters),
        )
    return expr
