"""Value Change Dump (VCD) writer and reader.

The paper demonstrates co-simulation of the translated AADL models using the
VCD technique [18]: the simulation of the generated SIGNAL code emits a VCD
trace that standard waveform viewers display.  This module writes IEEE-1364
style VCD files and provides a small parser so that tests and benches can
check traces programmatically (our substitution for an interactive waveform
viewer).

The writer comes in two shapes over one implementation:

* :class:`StreamingVcdSink` — a :class:`~repro.sig.sinks.TraceSink` that
  serialises each instant to disk as the simulation produces it, so a
  million-instant run never holds more than one instant in memory (pass it
  to ``simulate(..., sinks=[...])`` or ``repro simulate --stream-vcd``);
* :class:`VcdWriter` / :func:`write_vcd` — the legacy post-hoc API over a
  materialised :class:`~repro.sig.simulator.SimulationTrace`, now a thin
  wrapper that replays the trace through the streaming sink (byte-identical
  output to previous releases).
"""

from __future__ import annotations

import io
import string
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .simulator import SimulationTrace
from .sinks import TraceHeader, TraceSink, replay_trace
from .values import SignalKind, SignalType, is_absent

_IDENT_ALPHABET = string.ascii_letters + string.digits + "!#$%&'()*+,-./:;<=>?@[]^_`{|}~"

#: ``(var_type, size)`` of one declared VCD variable.
VariableShape = Tuple[str, int]


def _identifier(index: int) -> str:
    """Short VCD identifier code for the *index*-th variable."""
    if index < 0:
        raise ValueError("identifier index must be non-negative")
    base = len(_IDENT_ALPHABET)
    out = []
    index += 1
    while index > 0:
        index, rem = divmod(index - 1, base)
        out.append(_IDENT_ALPHABET[rem])
    return "".join(reversed(out))


@dataclass
class VcdVariable:
    """One declared VCD variable."""

    name: str
    identifier: str
    var_type: str
    size: int


@dataclass
class VcdDocument:
    """Parsed content of a VCD file."""

    timescale: str
    variables: Dict[str, VcdVariable]
    changes: Dict[int, Dict[str, str]] = field(default_factory=dict)

    def times(self) -> List[int]:
        """All timestamps that carry at least one value change, sorted."""
        return sorted(self.changes)

    def changes_of(self, signal: str) -> List[Tuple[int, str]]:
        """All (time, raw value) changes of one signal, by declared name."""
        var = self.variables.get(signal)
        if var is None:
            raise KeyError(f"unknown VCD variable {signal!r}")
        out = []
        for time in self.times():
            if var.identifier in self.changes[time]:
                out.append((time, self.changes[time][var.identifier]))
        return out

    def activation_times(self, signal: str) -> List[int]:
        """Times at which *signal* took a non-idle ('1' or value) state."""
        out = []
        for time, value in self.changes_of(signal):
            if value not in ("0", "z", "x"):
                out.append(time)
        return out


def _shape_of_values(values: Iterable[Any]) -> VariableShape:
    """Variable shape inferred from the first present value of a flow."""
    for value in values:
        if is_absent(value):
            continue
        if isinstance(value, bool):
            return "wire", 1
        if isinstance(value, int):
            return "reg", 32
        if isinstance(value, float):
            return "real", 64
        return "reg", 8 * max(1, len(str(value)))
    return "wire", 1


def shapes_from_trace(
    trace: SimulationTrace, signals: Optional[Iterable[str]] = None
) -> Dict[str, VariableShape]:
    """Variable shapes of a materialised trace (first-present-value rule)."""
    names = list(signals) if signals is not None else trace.signals()
    return {name: _shape_of_values(trace.flows[name]) for name in names}


def shape_for_type(signal_type: Optional[SignalType]) -> VariableShape:
    """Variable shape of a *declared* signal type (the streaming rule).

    A live simulation cannot scan the flow for its first present value, so
    the streaming sink maps the declared SIGNAL type instead: events and
    booleans become 1-bit wires, integers 32-bit registers, reals 64-bit
    reals; strings and opaque data become 256-bit registers (strings up to
    32 characters stay within the declared width; the encoder emits longer
    values at their full width, which viewers may flag).  Undeclared
    (scenario-only) names fall back to a 32-bit register, which keeps
    integer values exact — a 1-bit wire would silently collapse them to
    0/1; non-integer values on such signals render as bit strings, unlike
    the post-hoc writer, which can scan the materialised flow for the real
    type.  Pass an explicit ``shapes=`` mapping to
    :class:`StreamingVcdSink` when those defaults do not fit.
    """
    if signal_type is None:
        return "reg", 32
    if signal_type.kind in (SignalKind.EVENT, SignalKind.BOOLEAN):
        return "wire", 1
    if signal_type.kind is SignalKind.INTEGER:
        return "reg", 32
    if signal_type.kind is SignalKind.REAL:
        return "real", 64
    return "reg", 256


class StreamingVcdSink(TraceSink):
    """Serialise a simulation to VCD text instant by instant.

    *target* is either a path (the file is opened at :meth:`on_header` and
    closed at :meth:`on_close`) or any object with a ``write`` method.
    Memory use is O(signals): only the previous encoded value of each
    variable is retained, to emit change-only deltas.

    Variable shapes are resolved per signal, in precedence order: the
    explicit *shapes* mapping (what the legacy writer passes after scanning
    the materialised flows), then the declared types of the
    :class:`~repro.sig.sinks.TraceHeader`, then a 1-bit wire.  Event and
    boolean signals pulse at their present instants; absent instants return
    the wire to ``z`` so the clock of each signal stays visible in the
    waveform, as in the paper's co-simulation demonstrator.
    """

    def __init__(
        self,
        target: Union[str, Any],
        timescale: str = "1 ms",
        date: str = "generated by repro.sig.vcd",
        scope: str = "polychrony",
        tick_duration: int = 1,
        shapes: Optional[Mapping[str, VariableShape]] = None,
    ) -> None:
        self.timescale = timescale
        self.date = date
        self.scope = scope
        self.tick_duration = tick_duration
        self.shapes = dict(shapes) if shapes is not None else None
        self.path = target if isinstance(target, str) else None
        self._handle = None if isinstance(target, str) else target
        self._owns_handle = isinstance(target, str)
        self._variables: Dict[str, VcdVariable] = {}
        self._names: Tuple[str, ...] = ()
        self._previous: Dict[str, str] = {}
        self._instants_seen = 0
        self._closed = False

    # ------------------------------------------------------------------
    def on_header(self, header: TraceHeader) -> None:
        super().on_header(header)
        if self._owns_handle:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._names = header.signals
        self._previous = {}
        self._instants_seen = 0
        self._closed = False

        write = self._handle.write
        write(f"$date {self.date} $end\n")
        write(f"$timescale {self.timescale} $end\n")
        write(f"$scope module {self.scope} $end\n")
        self._variables = {}
        for index, name in enumerate(self._names):
            if self.shapes is not None and name in self.shapes:
                var_type, size = self.shapes[name]
            else:
                var_type, size = shape_for_type(header.types.get(name))
            identifier = _identifier(index)
            self._variables[name] = VcdVariable(name, identifier, var_type, size)
            write(f"$var {var_type} {size} {identifier} {name} $end\n")
        write("$upscope $end\n")
        write("$enddefinitions $end\n")

        write("$dumpvars\n")
        for name in self._names:
            var = self._variables[name]
            if var.var_type == "real":
                write(f"r0 {var.identifier}\n")
            elif var.size == 1:
                write(f"z{var.identifier}\n")
            else:
                write(f"bz {var.identifier}\n")
        write("$end\n")

    def on_instant(
        self, instant: int, statuses: Tuple[bool, ...], values: Tuple[Any, ...]
    ) -> None:
        changes: List[str] = []
        previous = self._previous
        for name, value in zip(self._names, values):
            encoded = self._encode(self._variables[name], value)
            if previous.get(name) != encoded:
                changes.append(encoded)
                previous[name] = encoded
        if changes:
            write = self._handle.write
            write(f"#{instant * self.tick_duration}\n")
            for encoded in changes:
                write(encoded)
                write("\n")
        self._instants_seen = instant + 1

    def on_close(self) -> None:
        if self._closed or self._handle is None or self.header is None:
            return
        self._closed = True
        # An aborted run closes at the last instant it reached; a complete
        # run closes at the scenario length, like the legacy writer.
        end = self.header.length if self._instants_seen >= self.header.length else self._instants_seen
        self._handle.write(f"#{end * self.tick_duration}\n")
        if self._owns_handle:
            self._handle.close()
            self._handle = None

    def result(self) -> Optional[str]:
        """The written path (``None`` when streaming to a caller's handle)."""
        return self.path

    # ------------------------------------------------------------------
    @staticmethod
    def _encode(var: VcdVariable, value: object) -> str:
        """One value-change line for *value* on *var* (legacy encoding)."""
        if var.var_type == "real":
            if is_absent(value):
                return f"r0 {var.identifier}"
            return f"r{float(value)} {var.identifier}"
        if var.size == 1:
            if is_absent(value):
                return f"z{var.identifier}"
            return f"{'1' if bool(value) else '0'}{var.identifier}"
        if is_absent(value):
            return f"bz {var.identifier}"
        if isinstance(value, int) and not isinstance(value, bool):
            bits = format(value & (2 ** var.size - 1), "b")
            return f"b{bits} {var.identifier}"
        text = "".join(format(ord(c), "08b") for c in str(value)) or "0"
        return f"b{text} {var.identifier}"


class VcdWriter:
    """Serialise materialised simulation traces to VCD text.

    The rendering itself is a replay of the trace through
    :class:`StreamingVcdSink` — one implementation serves both the post-hoc
    and the streaming paths, and their outputs are byte-identical for the
    same trace (enforced by the shared edge-case tests in
    ``tests/sig/test_vcd.py``).
    """

    def __init__(self, timescale: str = "1 ms", date: str = "generated by repro.sig.vcd") -> None:
        self.timescale = timescale
        self.date = date

    def render(
        self,
        trace: SimulationTrace,
        signals: Optional[Iterable[str]] = None,
        scope: str = "polychrony",
        tick_duration: int = 1,
    ) -> str:
        """Render *trace* as VCD text.

        Event/boolean signals become 1-bit wires pulsed at their present
        instants; integer signals become 32-bit registers; everything else is
        emitted as real/string variables.  Absent instants return the wire to
        ``z`` so that the clock of each signal is visible in the waveform, as
        in the paper's co-simulation demonstrator.
        """
        names = list(signals) if signals is not None else trace.signals()
        buffer = io.StringIO()
        sink = StreamingVcdSink(
            buffer,
            timescale=self.timescale,
            date=self.date,
            scope=scope,
            tick_duration=tick_duration,
            shapes=shapes_from_trace(trace, names),
        )
        replay_trace(trace, sink, signals=names)
        return buffer.getvalue()

    def write(self, trace: SimulationTrace, path: str, **kwargs: object) -> str:
        """Render *trace* and write the text to *path*; returns *path*."""
        text = self.render(trace, **kwargs)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text)
        return path


def parse_vcd(text: str) -> VcdDocument:
    """Parse VCD text produced by :class:`VcdWriter` (subset of IEEE 1364)."""
    timescale = "1 ms"
    variables: Dict[str, VcdVariable] = {}
    by_identifier: Dict[str, VcdVariable] = {}
    changes: Dict[int, Dict[str, str]] = {}
    current_time = 0
    in_definitions = True

    tokens = text.splitlines()
    i = 0
    while i < len(tokens):
        line = tokens[i].strip()
        i += 1
        if not line:
            continue
        if in_definitions:
            if line.startswith("$timescale"):
                timescale = line.replace("$timescale", "").replace("$end", "").strip()
            elif line.startswith("$var"):
                parts = line.split()
                # $var wire 1 ! name $end
                var_type, size, identifier, name = parts[1], int(parts[2]), parts[3], parts[4]
                var = VcdVariable(name, identifier, var_type, size)
                variables[name] = var
                by_identifier[identifier] = var
            elif line.startswith("$enddefinitions"):
                in_definitions = False
            continue
        if line.startswith("#"):
            current_time = int(line[1:])
            continue
        if line.startswith("$"):
            continue
        slot = changes.setdefault(current_time, {})
        if line[0] in "01xz":
            value, identifier = line[0], line[1:]
            slot[identifier] = value
        elif line[0] in "bB":
            value, identifier = line.split()
            slot[identifier] = value[1:]
        elif line[0] in "rR":
            value, identifier = line.split()
            slot[identifier] = value[1:]

    # Re-key changes by identifier; keep identifiers (names resolved on demand).
    return VcdDocument(timescale=timescale, variables=variables, changes=changes)


def write_vcd(trace: SimulationTrace, path: str, **kwargs: object) -> str:
    """Write *trace* to *path* as VCD (thin wrapper over the streaming sink)."""
    return VcdWriter().write(trace, path, **kwargs)


__all__ = [
    "StreamingVcdSink",
    "VariableShape",
    "VcdDocument",
    "VcdVariable",
    "VcdWriter",
    "parse_vcd",
    "shape_for_type",
    "shapes_from_trace",
    "write_vcd",
]
