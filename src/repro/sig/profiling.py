"""Profiling-based performance evaluation of polychronous processes.

The paper relies on the SIGNAL profiling technique of Kountouris & Le Guernic
[16]: once a hardware architecture is chosen, a *temporal specification* of
the SIGNAL program (a cost per elementary operation on that architecture) is
defined, and the profiling evaluates the timing of the design implementation.

Our substitution keeps the same structure:

* a :class:`CostModel` gives the cost (in abstract time units, e.g. µs) of
  every elementary SIGNAL operation (stepwise arithmetic, delay, sampling,
  merge, memory access) on a candidate processor;
* a **static profile** weights each equation of the process by the cost of its
  operators, giving a per-activation cost of each signal;
* a **dynamic profile** replays a simulation trace and accumulates the cost of
  the operations actually activated at each instant, yielding per-instant and
  total execution-time estimates — the figure of merit used when comparing
  candidate architectures or bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from .expressions import (
    Cell,
    ClockDifference,
    ClockIntersection,
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Expression,
    FunctionApp,
    SignalRef,
    Var,
    When,
    WhenClock,
)
from .process import ProcessModel
from .simulator import SimulationTrace
from .values import is_present


@dataclass(frozen=True)
class CostModel:
    """Per-operation costs (abstract time units) of a candidate processor."""

    name: str
    stepwise: float = 1.0
    delay: float = 0.5
    sampling: float = 0.2
    merge: float = 0.3
    memory: float = 0.8
    clock_op: float = 0.1
    per_operator: Mapping[str, float] = field(default_factory=dict)
    frequency_scale: float = 1.0

    def cost_of_operator(self, op: str) -> float:
        return self.per_operator.get(op, self.stepwise) * self.frequency_scale


#: A generic reference processor, roughly one unit per arithmetic operation.
GENERIC_PROCESSOR = CostModel(name="generic")
#: A slower micro-controller-class processor.
MICROCONTROLLER = CostModel(
    name="microcontroller",
    stepwise=4.0,
    delay=2.0,
    sampling=1.0,
    merge=1.5,
    memory=6.0,
    clock_op=0.5,
)
#: A faster embedded processor with cheap memory accesses.
EMBEDDED_CPU = CostModel(
    name="embedded_cpu",
    stepwise=0.5,
    delay=0.25,
    sampling=0.1,
    merge=0.15,
    memory=0.4,
    clock_op=0.05,
)


def expression_cost(expr: Expression, model: CostModel) -> float:
    """Static cost of evaluating *expr* once (all operands present)."""
    if isinstance(expr, (SignalRef, Var, Const)):
        return 0.0
    if isinstance(expr, FunctionApp):
        return model.cost_of_operator(expr.op) * model.frequency_scale + sum(
            expression_cost(a, model) for a in expr.args
        )
    if isinstance(expr, Delay):
        return model.delay + expression_cost(expr.operand, model)
    if isinstance(expr, When):
        return model.sampling + expression_cost(expr.operand, model) + expression_cost(expr.condition, model)
    if isinstance(expr, WhenClock):
        return model.sampling + expression_cost(expr.condition, model)
    if isinstance(expr, Default):
        return model.merge + expression_cost(expr.left, model) + expression_cost(expr.right, model)
    if isinstance(expr, Cell):
        return model.memory + expression_cost(expr.operand, model) + expression_cost(expr.condition, model)
    if isinstance(expr, ClockOf):
        return model.clock_op + expression_cost(expr.operand, model)
    if isinstance(expr, (ClockUnion, ClockIntersection, ClockDifference)):
        return model.clock_op + expression_cost(expr.left, model) + expression_cost(expr.right, model)
    raise TypeError(f"unsupported expression {type(expr).__name__}")


@dataclass
class StaticProfile:
    """Per-signal worst-case activation cost of a process on one cost model."""

    process_name: str
    cost_model: str
    per_signal: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.per_signal.values())

    def most_expensive(self, count: int = 5) -> List[Tuple[str, float]]:
        return sorted(self.per_signal.items(), key=lambda kv: (-kv[1], kv[0]))[:count]

    def summary(self) -> str:
        lines = [
            f"Static profile of {self.process_name} on {self.cost_model}",
            f"  total per-reaction worst case: {self.total:.2f} units",
        ]
        for name, cost in self.most_expensive():
            lines.append(f"  {name:<30s} {cost:8.2f}")
        return "\n".join(lines)


@dataclass
class DynamicProfile:
    """Cost of a recorded simulation on one cost model."""

    process_name: str
    cost_model: str
    instants: int
    per_instant: List[float]
    per_signal: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.per_instant)

    @property
    def average_per_instant(self) -> float:
        return self.total / self.instants if self.instants else 0.0

    @property
    def peak_instant(self) -> float:
        return max(self.per_instant) if self.per_instant else 0.0

    def summary(self) -> str:
        return (
            f"Dynamic profile of {self.process_name} on {self.cost_model}: "
            f"{self.instants} instants, total {self.total:.2f} units, "
            f"avg {self.average_per_instant:.2f}/instant, peak {self.peak_instant:.2f}"
        )


class Profiler:
    """Static and trace-driven profiling of a polychronous process."""

    def __init__(self, process: ProcessModel, cost_model: CostModel = GENERIC_PROCESSOR) -> None:
        if process.instances or process.submodels:
            process = process.flatten()
        self.process = process
        self.cost_model = cost_model

    def static_profile(self) -> StaticProfile:
        """Worst-case cost per defined signal (every equation activated)."""
        per_signal: Dict[str, float] = {}
        for eq in self.process.equations:
            per_signal[eq.target] = per_signal.get(eq.target, 0.0) + expression_cost(eq.expr, self.cost_model)
        return StaticProfile(
            process_name=self.process.name,
            cost_model=self.cost_model.name,
            per_signal=per_signal,
        )

    def dynamic_profile(self, trace: SimulationTrace) -> DynamicProfile:
        """Accumulate the cost of the equations activated at each instant.

        An equation is charged at an instant when its target signal is present
        at that instant in the recorded trace; signals that were not recorded
        are charged at every instant (conservative).
        """
        static = self.static_profile()
        per_instant = [0.0] * trace.length
        per_signal: Dict[str, float] = {name: 0.0 for name in static.per_signal}
        for name, cost in static.per_signal.items():
            flow = trace.flows.get(name)
            if flow is None:
                activations = range(trace.length)
            else:
                activations = [i for i, value in enumerate(flow) if is_present(value)]
            for instant in activations:
                per_instant[instant] += cost
                per_signal[name] += cost
        return DynamicProfile(
            process_name=self.process.name,
            cost_model=self.cost_model.name,
            instants=trace.length,
            per_instant=per_instant,
            per_signal=per_signal,
        )


def compare_architectures(
    process: ProcessModel,
    trace: SimulationTrace,
    cost_models: Mapping[str, CostModel],
) -> Dict[str, DynamicProfile]:
    """Profile the same trace against several candidate architectures.

    This mirrors the architecture-exploration use of profiling in the paper:
    the designer picks the binding whose estimated timing fits the period and
    deadline budget of the threads.
    """
    return {
        label: Profiler(process, model).dynamic_profile(trace)
        for label, model in cost_models.items()
    }
