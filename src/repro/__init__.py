"""repro — Polychronous analysis and validation for timed software architectures in AADL.

A from-scratch Python reproduction of the DATE 2013 paper by Ma, Yu, Gautier,
Le Guernic, Talpin, Besnard and Heitz: an AADL front-end, a polychronous
(SIGNAL) model of computation, the ASME2SSME AADL→SIGNAL translation with the
AADL timing execution model, thread-level static scheduler synthesis exported
to affine clocks, formal analyses (clock calculus, determinism, deadlock,
synchronizability), simulation with VCD traces, and profiling-based
performance evaluation.

Top-level entry points:

* :func:`repro.core.run_toolchain` — the complete tool chain on one AADL model;
* :mod:`repro.aadl` — AADL parsing, instantiation and validation;
* :mod:`repro.sig` — the polychronous kernel (clock calculus, simulator, …);
* :mod:`repro.core` — the AADL→SIGNAL translation;
* :mod:`repro.scheduling` — scheduler synthesis and schedulability analysis;
* :mod:`repro.casestudies` — the ProducerConsumer case study and the catalog.

Architecture — the engine layer
===============================

Simulation is structured as a three-stage engine (:mod:`repro.sig.engine`)
sitting between scheduling and execution:

1. **scheduling/analysis** produce a flattened
   :class:`~repro.sig.process.ProcessModel` and its static dependency order
   (:mod:`repro.sig.scheduler_graph` — the same graph the paper uses for
   code generation);
2. **plan compilation** (:func:`repro.sig.engine.compile_plan`) lowers the
   model once into an :class:`~repro.sig.engine.ExecutionPlan`: signals
   mapped to integer slots, constants folded, static clock tests
   precomputed, delay/cell memories given integer state slots, and the
   instantaneous dependency graph analysed for acyclicity (resolution
   itself replays the reference interpreter's order exactly, because
   resolution order is observable through ``^=`` clock propagation);
3. **backends** execute scenarios against the model through one API
   (:class:`~repro.sig.engine.SimulationBackend`): ``reference`` is the
   fixed-point interpreter kept as the oracle, ``compiled`` runs the plan
   (several times faster, bit-identical traces and errors).  The backend is
   selected via :attr:`repro.core.ToolchainOptions.backend`, the CLI
   ``--backend`` flag, or directly through
   :func:`repro.sig.engine.create_backend`.

Many-scenario workloads go through :func:`repro.sig.engine.simulate_batch`,
which prepares the backend once and replays the whole scenario batch
(`repro.casestudies.scenario_sweep` builds such batches for generated
designs); ``workers=N`` shards the batch over worker processes
(:mod:`repro.sig.engine.parallel`) with bit-identical traces and errors.
New backends (numpy kernels, generated C) register in
:data:`repro.sig.engine.BACKENDS`.

Analysis scales the same way: the clock calculus can run *modularly*
(:mod:`repro.sig.calculus_modular`) over the untouched process tree —
per-subprocess constraint extraction, memoised across repeated subprocess
shapes, composed at the interface signals — instead of re-solving the
flattened system, with results identical to the flat solver
(:mod:`repro.sig.clock_calculus`) by construction and by the parity tests.
"""

from . import aadl, casestudies, core, scheduling, sig
from .core import ToolchainOptions, ToolchainResult, TranslationConfig, run_toolchain, translate_system

__version__ = "0.4.0"

__all__ = [
    "aadl",
    "casestudies",
    "core",
    "scheduling",
    "sig",
    "ToolchainOptions",
    "ToolchainResult",
    "TranslationConfig",
    "run_toolchain",
    "translate_system",
    "__version__",
]
