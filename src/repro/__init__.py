"""repro — Polychronous analysis and validation for timed software architectures in AADL.

A from-scratch Python reproduction of the DATE 2013 paper by Ma, Yu, Gautier,
Le Guernic, Talpin, Besnard and Heitz: an AADL front-end, a polychronous
(SIGNAL) model of computation, the ASME2SSME AADL→SIGNAL translation with the
AADL timing execution model, thread-level static scheduler synthesis exported
to affine clocks, formal analyses (clock calculus, determinism, deadlock,
synchronizability), simulation with VCD traces, and profiling-based
performance evaluation.

Top-level entry points:

* :func:`repro.core.run_toolchain` — the complete tool chain on one AADL model;
* :mod:`repro.aadl` — AADL parsing, instantiation and validation;
* :mod:`repro.sig` — the polychronous kernel (clock calculus, simulator, …);
* :mod:`repro.core` — the AADL→SIGNAL translation;
* :mod:`repro.scheduling` — scheduler synthesis and schedulability analysis;
* :mod:`repro.casestudies` — the ProducerConsumer case study and the catalog.
"""

from . import aadl, casestudies, core, scheduling, sig
from .core import ToolchainOptions, ToolchainResult, TranslationConfig, run_toolchain, translate_system

__version__ = "0.1.0"

__all__ = [
    "aadl",
    "casestudies",
    "core",
    "scheduling",
    "sig",
    "ToolchainOptions",
    "ToolchainResult",
    "TranslationConfig",
    "run_toolchain",
    "translate_system",
    "__version__",
]
