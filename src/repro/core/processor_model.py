"""Translation of processors and processor bindings.

The ``Actual_Processor_Binding`` property maps each AADL process onto the
processor that supports the dispatch protocol of its threads.  Following the
paper, "the processes bound to this processor are implemented as SIGNAL
subprocesses of the SIGNAL process that represents the processor": the
processor model

* owns the base ``tick`` clock of the schedule,
* instantiates the thread-level **scheduler process** synthesised from the
  static schedule (one affine clock divider per scheduled event stream), and
* instantiates the model of every bound process, wiring the per-thread
  control and timing inputs of the process to the corresponding scheduler
  outputs.

When no schedule is provided (translation without scheduler synthesis, the
"incomplete, not executable" situation of Section IV-D), the control events
remain inputs of the processor model, to be provided by the environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..aadl.instance import ComponentInstance
from ..scheduling.affine_export import BASE_CLOCK, scheduler_process
from ..scheduling.static_scheduler import StaticSchedule
from ..sig.process import Direction, ProcessModel
from ..sig.values import EVENT
from .process_model import TranslatedProcess
from .traceability import TraceabilityMap, sanitize_identifier


@dataclass
class TranslatedProcessor:
    """Book-keeping of one translated processor and its bound processes."""

    instance: Optional[ComponentInstance]
    model: ProcessModel
    bound_processes: List[TranslatedProcess] = field(default_factory=list)
    schedule: Optional[StaticSchedule] = None
    scheduler_instance: Optional[str] = None

    @property
    def name(self) -> str:
        return self.model.name


class ProcessorTranslator:
    """Build the SIGNAL model of a processor with its bound processes."""

    def __init__(self, trace: Optional[TraceabilityMap] = None) -> None:
        self.trace = trace

    def translate(
        self,
        processor: Optional[ComponentInstance],
        bound_processes: List[TranslatedProcess],
        schedule: Optional[StaticSchedule] = None,
    ) -> TranslatedProcessor:
        name = sanitize_identifier(processor.name) if processor is not None else "logical_processor"
        model = ProcessModel(
            name,
            comment=(
                f"AADL processor {processor.qualified_name}" if processor is not None else "logical processor"
            ),
        )
        model.pragmas["aadl_category"] = "processor"
        if processor is not None:
            model.pragmas["aadl_name"] = processor.qualified_name
            if self.trace is not None:
                self.trace.add(processor.qualified_name, name, "process", "processor")

        translated = TranslatedProcessor(instance=processor, model=model, bound_processes=list(bound_processes), schedule=schedule)

        scheduler_outputs: Dict[Tuple[str, str], str] = {}
        if schedule is not None:
            model.input(BASE_CLOCK, EVENT, comment="base tick of the static schedule")
            sched_model = scheduler_process(schedule, name=f"{name}_scheduler")
            model.add_submodel(sched_model)
            bindings = {BASE_CLOCK: BASE_CLOCK}
            for decl in sched_model.outputs():
                local = f"sched_{decl.name}"
                model.local(local, EVENT)
                bindings[decl.name] = local
                task, _, kind = decl.name.rpartition("_")
                # Output names are "<task>_<kind>" with kind one of the event kinds;
                # kinds may contain underscores (input_freeze, output_send).
                for event_kind in ("dispatch", "input_freeze", "start", "complete", "output_send", "deadline"):
                    if decl.name.endswith(f"_{event_kind}"):
                        task = decl.name[: -len(event_kind) - 1]
                        kind = event_kind
                        break
                scheduler_outputs[(task, kind)] = local
            translated.scheduler_instance = "scheduler"
            model.instantiate(sched_model, instance_name="scheduler", bindings=bindings)
            if self.trace is not None:
                self.trace.add(
                    processor.qualified_name if processor is not None else "logical_processor",
                    f"{name}.scheduler",
                    "instance",
                    f"static scheduler ({schedule.policy.value})",
                )

        # Instantiate the bound processes.
        for process in bound_processes:
            process_name = process.name
            bindings: Dict[str, str] = {}
            for decl in process.model.inputs():
                external = self._resolve_control_input(decl.name, process, scheduler_outputs)
                if external is None:
                    # Plain data/functional input: expose it at the processor level.
                    exposed = f"{process_name}_{decl.name}"
                    model.input(exposed, decl.type)
                    bindings[decl.name] = exposed
                else:
                    bindings[decl.name] = external
            for decl in process.model.outputs():
                exposed = f"{process_name}_{decl.name}"
                model.output(exposed, decl.type)
                bindings[decl.name] = exposed
            model.instantiate(process.model, instance_name=process_name, bindings=bindings)
            if self.trace is not None and process.instance is not None:
                self.trace.add(
                    process.instance.qualified_name,
                    f"{name}.{process_name}",
                    "instance",
                    "process bound to processor (Actual_Processor_Binding)",
                )
        return translated

    # ------------------------------------------------------------------
    def _resolve_control_input(
        self,
        input_name: str,
        process: TranslatedProcess,
        scheduler_outputs: Dict[Tuple[str, str], str],
    ) -> Optional[str]:
        """Map a process control/timing input to the scheduler output feeding it."""
        if not scheduler_outputs:
            return None
        # Thread control events: "<thread>_dispatch" / "<thread>_start" / "<thread>_deadline".
        for (thread_name, kind), external in process.control_inputs.items():
            if external == input_name:
                key = (sanitize_identifier(thread_name), kind)
                return scheduler_outputs.get(key)
        # Port timing events: "<thread>_<port>_Frozen_time" / "_Output_time".
        for (thread_name, _port, kind), external in process.timing_inputs.items():
            if external == input_name:
                key = (
                    sanitize_identifier(thread_name),
                    "input_freeze" if kind == "frozen" else "output_send",
                )
                return scheduler_outputs.get(key)
        return None


def translate_processor(
    processor: Optional[ComponentInstance],
    bound_processes: List[TranslatedProcess],
    schedule: Optional[StaticSchedule] = None,
    trace: Optional[TraceabilityMap] = None,
) -> TranslatedProcessor:
    """Convenience wrapper around :class:`ProcessorTranslator`."""
    return ProcessorTranslator(trace=trace).translate(processor, bound_processes, schedule)
