"""Translation of AADL threads to SIGNAL processes (Fig. 4).

A periodic AADL thread becomes a SIGNAL process composed of its behaviour,
properties, ports and connections, plus the additional timing signals of the
paper:

* an input bundle ``ctl1`` with the event signals ``Dispatch``, ``Resume``
  (start) and ``Deadline`` — implicit predeclared ports or added simulation
  signals, produced by the thread-level scheduler;
* an input bundle ``time1`` carrying the frozen-time and output-time events of
  the ports (e.g. ``pProdStart_Frozen_time``);
* an output bundle ``ctl2`` with the predeclared ``Complete`` and ``Error``
  events;
* an output ``Alarm`` that triggers when the timing properties are violated
  (deadline missed).

The computation itself is kept instantaneous (Section IV-C): latency and
communication delays live in the memory processes of the ports, so the body
is a data-flow over the *frozen* inputs activated at the ``Resume`` event.
The default behaviour produces the job index on event-data outputs and a pure
event on event outputs; a user-supplied behaviour can override this through
:class:`ThreadBehaviour`.

Mode automatons (used by the determinism experiment of Section V-C) are
translated to a state signal: each transition contributes a definition of the
state guarded by its trigger and source mode.  Without priorities the
definitions are partial and possibly overlapping — exactly the situation the
clock calculus flags as non-deterministic; with priorities (or when the
translator is asked to resolve conflicts by document order) the definitions
are merged deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..aadl.instance import ComponentInstance, FeatureInstance
from ..aadl.model import DataAccess, Port, PortKind
from ..sig import library
from ..sig.expressions import (
    ClockOf,
    ClockUnion,
    Const,
    Default,
    Delay,
    Expression,
    FunctionApp,
    SignalRef,
    When,
    WhenClock,
)
from ..sig.process import ProcessModel
from ..sig.values import BOOLEAN, EVENT, INTEGER
from .data_model import access_rights
from .port_model import PortTranslator, TranslatedPort, frozen_time_signal_name, output_time_signal_name
from .timing import ThreadTimingModel, thread_timing_model
from .traceability import TraceabilityMap, sanitize_identifier

#: Names of the ctl1 / ctl2 bundle fields (Fig. 4).
CTL1_FIELDS = ("Dispatch", "Resume", "Deadline")
CTL2_FIELDS = ("Complete", "Error")


@dataclass
class ThreadBehaviour:
    """Optional user-supplied behaviour of a thread.

    ``output_expressions`` maps an out-port name to a function receiving the
    thread model and returning the SIGNAL expression of the value produced at
    each activation (it is sampled at the ``Resume`` clock by the caller).
    """

    output_expressions: Dict[str, Callable[[ProcessModel], Expression]] = field(default_factory=dict)


@dataclass
class TranslatedThread:
    """Book-keeping of one translated thread."""

    instance: ComponentInstance
    model: ProcessModel
    timing: ThreadTimingModel
    in_ports: List[TranslatedPort] = field(default_factory=list)
    out_ports: List[TranslatedPort] = field(default_factory=list)
    data_accesses: List[str] = field(default_factory=list)
    control_inputs: Dict[str, str] = field(default_factory=dict)
    time_inputs: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.model.name


class ThreadTranslator:
    """Translate one AADL thread instance into a SIGNAL process model."""

    def __init__(
        self,
        trace: Optional[TraceabilityMap] = None,
        resolve_mode_conflicts: bool = True,
        behaviour: Optional[ThreadBehaviour] = None,
    ) -> None:
        self.trace = trace
        self.resolve_mode_conflicts = resolve_mode_conflicts
        self.behaviour = behaviour or ThreadBehaviour()

    # ------------------------------------------------------------------
    def translate(self, thread: ComponentInstance) -> TranslatedThread:
        name = sanitize_identifier(thread.name)
        timing = thread_timing_model(thread)
        model = ProcessModel(
            name,
            comment=(
                f"AADL thread {thread.qualified_name} "
                f"({timing.dispatch_protocol.value}, period {timing.period_ms} ms, "
                f"deadline {timing.deadline_ms} ms)"
            ),
        )
        model.pragmas["aadl_name"] = thread.qualified_name
        model.pragmas["aadl_category"] = "thread"
        if self.trace is not None:
            self.trace.add(thread.qualified_name, name, "process", "thread")

        # ctl1 input bundle: Dispatch, Resume, Deadline.
        model.input("ctl1_Dispatch", EVENT, comment="predeclared dispatch port (from the scheduler)")
        model.input("ctl1_Resume", EVENT, comment="start/resume event (from the scheduler)")
        model.input("ctl1_Deadline", EVENT, comment="deadline observation event (from the scheduler)")
        model.add_bundle("ctl1", {f: f"ctl1_{f}" for f in CTL1_FIELDS})

        # ctl2 output bundle: Complete, Error; plus the Alarm property output.
        model.output("ctl2_Complete", EVENT, comment="predeclared complete port")
        model.output("ctl2_Error", EVENT, comment="predeclared error port")
        model.output("Alarm", EVENT, comment="raised when a timing property is violated")
        model.add_bundle("ctl2", {f: f"ctl2_{f}" for f in CTL2_FIELDS})

        translated = TranslatedThread(instance=thread, model=model, timing=timing)
        translated.control_inputs = {
            "dispatch": "ctl1_Dispatch",
            "start": "ctl1_Resume",
            "deadline": "ctl1_Deadline",
        }

        port_translator = PortTranslator(model, self.trace)
        time_fields: Dict[str, str] = {}

        # -- in ports ----------------------------------------------------
        for feature in thread.in_ports():
            translated_port = port_translator.translate_in_port(feature)
            translated.in_ports.append(translated_port)
            time_fields[f"{feature.name}_Frozen_time"] = translated_port.time_signal
            translated.time_inputs.append(translated_port.time_signal)

        # -- behaviour ----------------------------------------------------
        self._add_job_counter(model)
        produced_signals: Dict[str, str] = {}
        for feature in thread.out_ports():
            port = feature.declaration
            assert isinstance(port, Port)
            port_name = sanitize_identifier(feature.name)
            produced = f"{port_name}_produced"
            produced_signals[feature.name] = produced
            if feature.name in self.behaviour.output_expressions:
                expression = self.behaviour.output_expressions[feature.name](model)
                model.local(produced, INTEGER if port.carries_data else EVENT)
                model.define(produced, When(expression, ClockOf(SignalRef("ctl1_Resume"))),
                             label=f"user behaviour of {feature.name}")
            elif port.carries_data:
                model.local(produced, INTEGER)
                model.define(
                    produced,
                    When(SignalRef("job_index"), ClockOf(SignalRef("ctl1_Resume"))),
                    label=f"default behaviour: job index on {feature.name}",
                )
            else:
                model.local(produced, EVENT)
                model.define(
                    produced,
                    ClockOf(SignalRef("ctl1_Resume")),
                    label=f"default behaviour: event at each activation on {feature.name}",
                )

        # -- out ports ----------------------------------------------------
        for feature in thread.out_ports():
            translated_port = port_translator.translate_out_port(feature, produced_signals[feature.name])
            translated.out_ports.append(translated_port)
            time_fields[f"{feature.name}_Output_time"] = translated_port.time_signal
            translated.time_inputs.append(translated_port.time_signal)

        if time_fields:
            model.add_bundle("time1", time_fields)

        # -- data accesses --------------------------------------------------
        for feature in thread.data_accesses():
            declaration = feature.declaration
            assert isinstance(declaration, DataAccess)
            access_name = sanitize_identifier(feature.name)
            can_read, can_write = access_rights(declaration)
            translated.data_accesses.append(access_name)
            if can_write:
                model.output(f"{access_name}_write", INTEGER,
                             comment=f"value written through data access {feature.name}")
                model.define(
                    f"{access_name}_write",
                    When(SignalRef("job_index"), ClockOf(SignalRef("ctl1_Resume"))),
                    label=f"write access through {feature.name} at the activation clock",
                )
            if can_read:
                model.output(f"{access_name}_read_req", EVENT,
                             comment=f"read access clock of data access {feature.name}")
                model.define(f"{access_name}_read_req", ClockOf(SignalRef("ctl1_Resume")))
                model.input(f"{access_name}_read_value", INTEGER,
                            comment=f"value observed through data access {feature.name}")

        # -- predeclared ports and the property observer ----------------------
        model.define("ctl2_Complete", ClockOf(SignalRef("ctl1_Resume")),
                     label="instantaneous computation: complete at the activation instant")
        dropped = [f"{sanitize_identifier(p.feature.name)}_dropped" for p in translated.in_ports
                   if p.kind in (PortKind.EVENT, PortKind.EVENT_DATA)]
        if dropped:
            union: Expression = SignalRef(dropped[0])
            for signal in dropped[1:]:
                union = ClockUnion(union, SignalRef(signal))
            model.define("ctl2_Error", union, label="error on event queue overflow")
        else:
            model.define("ctl2_Error", WhenClock(Const(False)), label="no error source in this thread")

        observer = library.thread_property_observer(name=f"property_observer_{name}")
        model.add_submodel(observer)
        model.local("deadline_violated", BOOLEAN)
        model.instantiate(
            observer,
            instance_name="property_observer",
            bindings={
                "dispatch": "ctl1_Dispatch",
                "complete": "ctl2_Complete",
                "deadline": "ctl1_Deadline",
                "alarm": "Alarm",
                "violated": "deadline_violated",
            },
        )

        # -- mode automaton ----------------------------------------------------
        if thread.modes:
            self._add_mode_automaton(model, thread)

        return translated

    # ------------------------------------------------------------------
    def _add_job_counter(self, model: ProcessModel) -> None:
        """Count activations; the job index is the default data produced."""
        model.local("job_index", INTEGER)
        model.local("zjob_index", INTEGER)
        model.define("zjob_index", Delay(SignalRef("job_index"), init=0))
        model.define(
            "job_index",
            When(FunctionApp("+", (SignalRef("zjob_index"), Const(1))), ClockOf(SignalRef("ctl1_Resume"))),
        )
        model.synchronise("job_index", "ctl1_Resume", label="one job per activation")

    # ------------------------------------------------------------------
    def _add_mode_automaton(self, model: ProcessModel, thread: ComponentInstance) -> None:
        """Translate the mode automaton of *thread* into a state signal."""
        mode_names = list(thread.modes)
        mode_index = {mode: index for index, mode in enumerate(mode_names)}
        initial = next((m.name for m in thread.modes.values() if m.initial), mode_names[0])

        model.pragmas["modes"] = ",".join(mode_names)
        model.output("current_mode", INTEGER, comment="index of the current mode of the automaton")
        model.local("zmode", INTEGER)
        model.local("mode_tick", EVENT)

        # The automaton reacts to its trigger events and to every dispatch.
        trigger_signals: List[str] = []
        for transition in thread.mode_transitions:
            for trigger in transition.triggers:
                signal = sanitize_identifier(trigger.split(".")[-1])
                if signal in model.signals and signal not in trigger_signals:
                    trigger_signals.append(signal)
        tick_expr: Expression = SignalRef("ctl1_Dispatch")
        for signal in trigger_signals:
            tick_expr = ClockUnion(tick_expr, SignalRef(signal))
        model.define("mode_tick", tick_expr)
        model.define("zmode", Delay(SignalRef("current_mode"), init=mode_index[initial]))

        # One guarded definition per transition.
        ordered = sorted(
            enumerate(thread.mode_transitions),
            key=lambda pair: (pair[1].priority if pair[1].priority is not None else 10**6, pair[0]),
        )
        guarded: List[Tuple[Expression, int, str]] = []
        for order, transition in ordered:
            trigger = sanitize_identifier(transition.triggers[0].split(".")[-1]) if transition.triggers else "ctl1_Dispatch"
            if trigger not in model.signals:
                trigger = "ctl1_Dispatch"
            guard_name = f"fire_{transition.name or f't{order}'}"
            model.local(guard_name, BOOLEAN)
            model.define(
                guard_name,
                When(
                    FunctionApp("=", (SignalRef("zmode"), Const(mode_index[transition.source]))),
                    ClockOf(SignalRef(trigger)),
                ),
                label=f"transition {transition.source} -[{trigger}]-> {transition.destination}",
            )
            guarded.append((SignalRef(guard_name), mode_index[transition.destination], transition.name or f"t{order}"))

        has_priorities = all(t.priority is not None for t in thread.mode_transitions) and bool(
            thread.mode_transitions
        )
        deterministic = self.resolve_mode_conflicts or has_priorities
        if deterministic:
            # Deterministic merge (ordered by priority / document order).
            expr: Expression = When(SignalRef("zmode"), ClockOf(SignalRef("mode_tick")))
            for guard, destination, _label in reversed(guarded):
                expr = Default(When(Const(destination), guard), expr)
            model.define("current_mode", expr, label="mode automaton (deterministic merge)")
        else:
            # Faithful partial definitions: overlapping transitions are reported
            # by the determinism analysis (Section V-C).
            model.local("mode_update", INTEGER)
            for guard, destination, label in guarded:
                model.define_partial("mode_update", When(Const(destination), guard), label=f"transition {label}")
            model.define(
                "current_mode",
                Default(SignalRef("mode_update"), When(SignalRef("zmode"), ClockOf(SignalRef("mode_tick")))),
                label="mode automaton (state holder)",
            )
        model.synchronise("current_mode", "mode_tick", label="the automaton state lives on the mode tick")


def translate_thread(
    thread: ComponentInstance,
    trace: Optional[TraceabilityMap] = None,
    resolve_mode_conflicts: bool = True,
    behaviour: Optional[ThreadBehaviour] = None,
) -> TranslatedThread:
    """Convenience wrapper around :class:`ThreadTranslator`."""
    return ThreadTranslator(
        trace=trace, resolve_mode_conflicts=resolve_mode_conflicts, behaviour=behaviour
    ).translate(thread)
