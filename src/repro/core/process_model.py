"""Translation of AADL processes: threads, shared data and connections.

An AADL process becomes a SIGNAL process model that

* instantiates the model of each contained thread (Fig. 4 each),
* instantiates one ``fifo_reset`` per shared data subcomponent and merges the
  writers' contributions as partial definitions (Fig. 6),
* wires the port connections between threads and between threads and the
  process boundary, honouring the connection ``Timing``: immediate
  connections equate the destination with the source at the same logical
  instant, delayed connections insert a unit delay (the value sent at the
  previous occurrence),
* exposes, as inputs, the per-thread control and timing events (``Dispatch``,
  ``Resume``, ``Deadline``, the frozen/output time events) that the processor
  model — which holds the scheduler — will provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..aadl.instance import ComponentInstance, ConnectionInstance
from ..aadl.model import ConnectionKind, Port, PortKind
from ..sig.expressions import Default, Delay, Expression, SignalRef
from ..sig.process import ProcessModel
from ..sig.values import EVENT, INTEGER
from .data_model import SharedDataTranslator, TranslatedSharedData
from .port_model import frozen_time_signal_name, output_time_signal_name, port_value_type
from .thread_model import ThreadBehaviour, ThreadTranslator, TranslatedThread
from .traceability import TraceabilityMap, sanitize_identifier

#: Per-thread control events the process expects from its processor/scheduler.
THREAD_CONTROL_KINDS = ("dispatch", "start", "deadline")


@dataclass
class TranslatedProcess:
    """Book-keeping of one translated AADL process."""

    instance: ComponentInstance
    model: ProcessModel
    threads: List[TranslatedThread] = field(default_factory=list)
    shared_data: List[TranslatedSharedData] = field(default_factory=list)
    control_inputs: Dict[Tuple[str, str], str] = field(default_factory=dict)
    timing_inputs: Dict[Tuple[str, str, str], str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.model.name

    def control_signal(self, thread: str, kind: str) -> str:
        return self.control_inputs[(thread, kind)]

    def timing_signal(self, thread: str, port: str, kind: str) -> str:
        return self.timing_inputs[(thread, port, kind)]


class ProcessTranslator:
    """Translate one AADL process instance into a SIGNAL process model."""

    def __init__(
        self,
        trace: Optional[TraceabilityMap] = None,
        resolve_mode_conflicts: bool = True,
        behaviours: Optional[Dict[str, ThreadBehaviour]] = None,
    ) -> None:
        self.trace = trace
        self.resolve_mode_conflicts = resolve_mode_conflicts
        self.behaviours = behaviours or {}

    # ------------------------------------------------------------------
    def translate(self, process: ComponentInstance) -> TranslatedProcess:
        name = sanitize_identifier(process.name)
        model = ProcessModel(name, comment=f"AADL process {process.qualified_name}")
        model.pragmas["aadl_name"] = process.qualified_name
        model.pragmas["aadl_category"] = "process"
        if self.trace is not None:
            self.trace.add(process.qualified_name, name, "process", "process")

        translated = TranslatedProcess(instance=process, model=model)

        # Process boundary ports.
        for feature in process.features.values():
            declaration = feature.declaration
            if not isinstance(declaration, Port):
                continue
            port_name = sanitize_identifier(feature.name)
            value_type = port_value_type(declaration)
            if declaration.is_in:
                model.input(port_name, value_type, comment=f"process in port {feature.name}")
            else:
                model.output(port_name, value_type, comment=f"process out port {feature.name}")

        # Threads.
        thread_models: Dict[str, TranslatedThread] = {}
        for thread in process.threads():
            translator = ThreadTranslator(
                trace=self.trace,
                resolve_mode_conflicts=self.resolve_mode_conflicts,
                behaviour=self.behaviours.get(thread.name),
            )
            translated_thread = translator.translate(thread)
            thread_models[thread.name] = translated_thread
            translated.threads.append(translated_thread)
            model.add_submodel(translated_thread.model)

        # Shared data components (before the thread instantiation so the local
        # access signals exist when bindings are resolved).
        data_translator = SharedDataTranslator(model, self.trace)
        for data in process.data_components():
            if data.parent is not process:
                continue
            translated.shared_data.append(data_translator.translate(process, data))

        # Connection map: destination (thread, port) -> source expression name.
        incoming = self._incoming_connections(process)

        # Instantiate the threads with their bindings.
        for thread in process.threads():
            translated_thread = thread_models[thread.name]
            thread_name = sanitize_identifier(thread.name)
            bindings: Dict[str, str] = {}

            # Control events provided by the processor / scheduler.
            for kind, ctl_signal in (("dispatch", "ctl1_Dispatch"), ("start", "ctl1_Resume"), ("deadline", "ctl1_Deadline")):
                external = f"{thread_name}_{kind}"
                model.input(external, EVENT, comment=f"{kind} event of thread {thread.name} (from the scheduler)")
                bindings[ctl_signal] = external
                translated.control_inputs[(thread.name, kind)] = external

            # Frozen / output time events.
            for port in translated_thread.in_ports:
                port_name = sanitize_identifier(port.feature.name)
                external = f"{thread_name}_{port_name}_Frozen_time"
                model.input(external, EVENT)
                bindings[frozen_time_signal_name(port_name)] = external
                translated.timing_inputs[(thread.name, port.feature.name, "frozen")] = external
            for port in translated_thread.out_ports:
                port_name = sanitize_identifier(port.feature.name)
                external = f"{thread_name}_{port_name}_Output_time"
                model.input(external, EVENT)
                bindings[output_time_signal_name(port_name)] = external
                translated.timing_inputs[(thread.name, port.feature.name, "output")] = external

            # Data flows: in ports read the connection signal, out ports feed it.
            for port in translated_thread.in_ports:
                port_name = sanitize_identifier(port.feature.name)
                source = incoming.get((thread.name, port.feature.name))
                if source is None:
                    # Unconnected in port: leave it to a never-present local.
                    local = f"{thread_name}_{port_name}_unconnected"
                    model.local(local, port_value_type(port.feature.declaration))
                    bindings[port_name] = local
                else:
                    bindings[port_name] = source
            for port in translated_thread.out_ports:
                port_name = sanitize_identifier(port.feature.name)
                local = f"{thread_name}_{port_name}"
                model.local(local, port_value_type(port.feature.declaration))
                bindings[port_name] = local

            # Alarm / predeclared outputs exposed at the process level.
            for output_name in ("Alarm", "ctl2_Complete", "ctl2_Error"):
                external = f"{thread_name}_{output_name}"
                model.output(external, EVENT)
                bindings[output_name] = external

            # Data access signals connect to the shared data model locals.
            for access_name in translated_thread.data_accesses:
                for suffix in ("write", "read_req", "read_value"):
                    formal = f"{access_name}_{suffix}"
                    if formal in translated_thread.model.signals:
                        bindings[formal] = f"{thread_name}_{access_name}_{suffix}"
            if self.trace is not None:
                self.trace.add(thread.qualified_name, f"{name}.{thread_name}", "instance", "thread instance")
            model.instantiate(translated_thread.model, instance_name=thread_name, bindings=bindings)

        # Port connections towards the process boundary (out ports of the process).
        self._connect_boundary_outputs(process, model)

        return translated

    # ------------------------------------------------------------------
    def _incoming_connections(self, process: ComponentInstance) -> Dict[Tuple[str, str], str]:
        """For each (thread, in-port), the name of the signal carrying its input.

        The signal is created (with a defining equation) when the connection is
        delayed or when several connections fan into the same port.
        """
        model_signals: Dict[Tuple[str, str], str] = {}
        fan_in: Dict[Tuple[str, str], List[Tuple[str, bool]]] = {}

        for connection in process.connections:
            if connection.kind is not ConnectionKind.PORT:
                continue
            source_owner = connection.source.owner
            destination_owner = connection.destination.owner
            delayed = connection.timing == "delayed"

            # Source signal name at the process level.
            if source_owner is process:
                source_signal = sanitize_identifier(connection.source.name)
            else:
                source_signal = f"{sanitize_identifier(source_owner.name)}_{sanitize_identifier(connection.source.name)}"

            if destination_owner is process:
                continue  # handled by _connect_boundary_outputs
            key = (destination_owner.name, connection.destination.name)
            fan_in.setdefault(key, []).append((source_signal, delayed))

        return_signals: Dict[Tuple[str, str], str] = {}
        for key, sources in fan_in.items():
            thread_name, port_name = key
            if len(sources) == 1 and not sources[0][1]:
                return_signals[key] = sources[0][0]
                continue
            # Fan-in or delayed connection: introduce an intermediate signal.
            local = f"{sanitize_identifier(thread_name)}_{sanitize_identifier(port_name)}_in"
            expression: Optional[Expression] = None
            for source_signal, delayed in sources:
                term: Expression = SignalRef(source_signal)
                if delayed:
                    term = Delay(term, init=0)
                expression = term if expression is None else Default(expression, term)
            # The local may already exist if declared elsewhere.
            return_signals[key] = local
            self._define_local(key, local, expression)
        self._pending_locals = return_signals
        return return_signals

    def _define_local(self, key: Tuple[str, str], local: str, expression: Expression) -> None:
        # The model is created in translate(); stash definitions to apply there.
        if not hasattr(self, "_deferred_definitions"):
            self._deferred_definitions: List[Tuple[str, Expression]] = []
        self._deferred_definitions.append((local, expression))

    def _connect_boundary_outputs(self, process: ComponentInstance, model: ProcessModel) -> None:
        """Define the process out ports from the connected thread outputs."""
        # Apply the deferred fan-in/delayed definitions first.
        for local, expression in getattr(self, "_deferred_definitions", []):
            model.local(local, INTEGER)
            model.define(local, expression, label="connection merge/delay")
        self._deferred_definitions = []

        outgoing: Dict[str, List[Tuple[str, bool]]] = {}
        for connection in process.connections:
            if connection.kind is not ConnectionKind.PORT:
                continue
            if connection.destination.owner is not process:
                continue
            source_owner = connection.source.owner
            if source_owner is process:
                source_signal = sanitize_identifier(connection.source.name)
            else:
                source_signal = (
                    f"{sanitize_identifier(source_owner.name)}_{sanitize_identifier(connection.source.name)}"
                )
            outgoing.setdefault(sanitize_identifier(connection.destination.name), []).append(
                (source_signal, connection.timing == "delayed")
            )
        for port_name, sources in outgoing.items():
            expression: Optional[Expression] = None
            for source_signal, delayed in sources:
                term: Expression = SignalRef(source_signal)
                if delayed:
                    term = Delay(term, init=0)
                expression = term if expression is None else Default(expression, term)
            if expression is not None:
                model.define(port_name, expression, label="process boundary connection")


def translate_process(
    process: ComponentInstance,
    trace: Optional[TraceabilityMap] = None,
    resolve_mode_conflicts: bool = True,
    behaviours: Optional[Dict[str, ThreadBehaviour]] = None,
) -> TranslatedProcess:
    """Convenience wrapper around :class:`ProcessTranslator`."""
    return ProcessTranslator(
        trace=trace, resolve_mode_conflicts=resolve_mode_conflicts, behaviours=behaviours
    ).translate(process)
