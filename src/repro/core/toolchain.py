"""The complete and automatic tool chain (Section IV-E).

:func:`run_toolchain` chains every stage of the paper's flow on one AADL
model:

1. **capture** — parse the textual AADL (or accept an already-built
   declarative model) and instantiate the root system;
2. **validation** — declarative and instance legality checks;
3. **scheduling** — thread-level scheduler synthesis per processor (RM/EDF);
4. **transformation** — the ASME2SSME translation to SIGNAL process models;
5. **analysis** — clock calculus report, determinism identification, deadlock
   detection, schedulability and synchronizability analyses;
6. **simulation** — execution of the translated, scheduled model over a
   scenario and VCD trace generation;
7. **profiling** — cost-model-based performance estimation of the simulation.

Each stage's artefacts are collected in a :class:`ToolchainResult`, so the
examples and the benchmark harness can reproduce the case study of Section V
with a single call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..aadl.errors import DiagnosticCollector
from ..aadl.instance import ComponentInstance, Instantiator, instance_report
from ..aadl.model import AadlModel
from ..aadl.parser import parse_string
from ..aadl.printer import render_model
from ..aadl.validation import validate
from ..scheduling.analysis import SchedulabilityReport, SynchronizabilityReport, analyse_schedulability, analyse_synchronizability
from ..scheduling.static_scheduler import SchedulingPolicy, StaticSchedule
from ..scheduling.task import TaskSet, task_set_from_threads
from ..sig.analysis import (
    ClockReport,
    DeadlockReport,
    DeterminismReport,
    build_clock_report,
    check_determinism,
    detect_deadlocks,
)
from ..sig.calculus_modular import ExtractionCache, ModularClockCalculus, ModularStats
from ..sig.engine import DEFAULT_BACKEND, create_backend, default_scenario
from ..sig.process import Direction, ProcessModel
from ..sig.profiling import GENERIC_PROCESSOR, CostModel, DynamicProfile, Profiler
from ..sig.simulator import SimulationTrace
from ..sig.sinks import MaterializeSink, TraceSink
from ..sig.vcd import VcdWriter
from ..store import (
    KIND_INDEX,
    KIND_TOOLCHAIN,
    resolve_store,
    toolchain_fingerprint,
    toolchain_options_key,
    toolchain_raw_key,
)
from .translator import Asme2SsmeTranslator, TranslationConfig, TranslationResult


@dataclass
class ToolchainOptions:
    """Options of one tool-chain run."""

    root_implementation: str = ""
    default_package: Optional[str] = None
    translation: TranslationConfig = field(default_factory=TranslationConfig)
    #: Number of hyper-periods to simulate (0 disables simulation).
    simulate_hyperperiods: int = 2
    #: Environment stimuli added to the simulation scenario: signal -> period (ticks).
    stimuli_periods: Dict[str, int] = field(default_factory=dict)
    #: Cost model used by the profiling stage (None disables profiling).
    cost_model: Optional[CostModel] = GENERIC_PROCESSOR
    #: Record only these signals during simulation (None = all).
    record_signals: Optional[Sequence[str]] = None
    #: Fail on validation errors instead of carrying on.
    strict_validation: bool = True
    #: Simulation backend: ``"compiled"`` (execution-plan engine),
    #: ``"reference"`` (fixed-point interpreter) or ``"vectorized"`` (numpy
    #: kernels over instant blocks).  All are trace-identical.
    backend: str = DEFAULT_BACKEND
    #: Extra keyword options forwarded to the backend constructor, e.g.
    #: ``{"block_size": 512}`` for the ``vectorized`` backend (CLI
    #: ``--block-size``).  Backends ignore options they do not understand.
    backend_options: Dict[str, object] = field(default_factory=dict)
    #: Worker processes used for batched scenario sweeps run on top of this
    #: tool-chain configuration (CLI ``--batch``, examples): ``1`` keeps the
    #: sweep sequential, ``0`` uses one worker per core.  Traces and errors
    #: are bit-identical whatever the value.
    workers: int = 1
    #: Streaming trace sinks (:mod:`repro.sig.sinks`) driven during the
    #: simulation stage, instant by instant — e.g. a
    #: :class:`~repro.sig.vcd.StreamingVcdSink` writing the waveform to disk
    #: while the run progresses.  ``None`` simulates exactly as before.
    sinks: Optional[Sequence[TraceSink]] = None
    #: Keep the full :class:`~repro.sig.simulator.SimulationTrace`
    #: (:attr:`ToolchainResult.trace`).  Disable for long-horizon runs that
    #: only need streaming sinks: memory stays O(signals), and the
    #: trace-dependent stages (profiling, post-hoc VCD) are skipped.
    materialize_trace: bool = True
    #: Wall-clock seconds per scenario attempt in batched sweeps (CLI
    #: ``--timeout``).  Setting this (or :attr:`retries` /
    #: :attr:`max_failures`) routes batches through the supervised executor
    #: (:mod:`repro.sig.engine.supervisor`): crashed/hung workers are
    #: replaced, failed attempts retried, and unrecoverable scenarios
    #: surface as :class:`~repro.sig.engine.supervisor.ScenarioFault`
    #: entries instead of taking the sweep down.  ``None`` keeps the plain
    #: pool fast path.
    timeout: Optional[float] = None
    #: Retry attempts per failed scenario under supervision (CLI
    #: ``--retries``); ``None`` = supervised default (2) when supervision
    #: is on.
    retries: Optional[int] = None
    #: Batch-wide circuit breaker: more than this many failed attempts
    #: abandons the remaining retries (CLI ``--max-failures``).
    max_failures: Optional[int] = None
    #: Persistent artifact store (:mod:`repro.store`) consulted before the
    #: analyse/translate stages and published to afterwards: ``None``/
    #: ``False`` disables persistence (the library default — runs are
    #: self-contained unless asked otherwise), ``True`` uses the per-user
    #: default store (``REPRO_CACHE_DIR`` / ``~/.cache/repro``; the CLI
    #: passes this unless ``--no-cache``), or an explicit
    #: :class:`~repro.store.ArtifactStore`.  A warm hit restores the parsed
    #: model, translation and analysis reports from disk and re-runs only
    #: the simulation stage; traces are bit-identical either way.
    store: "object | bool | None" = None


@dataclass
class ToolchainResult:
    """All the artefacts produced by one tool-chain run."""

    model: AadlModel
    root: ComponentInstance
    diagnostics: DiagnosticCollector
    translation: TranslationResult
    options: Optional[ToolchainOptions] = None
    task_sets: Dict[str, TaskSet] = field(default_factory=dict)
    schedules: Dict[str, StaticSchedule] = field(default_factory=dict)
    clock_report: Optional[ClockReport] = None
    determinism: Optional[DeterminismReport] = None
    deadlocks: Optional[DeadlockReport] = None
    schedulability: Dict[str, SchedulabilityReport] = field(default_factory=dict)
    synchronizability: Dict[str, SynchronizabilityReport] = field(default_factory=dict)
    trace: Optional[SimulationTrace] = None
    profile: Optional[DynamicProfile] = None
    scenario_length: int = 0
    backend_name: str = ""
    #: Products of :attr:`ToolchainOptions.sinks`, in sink order
    #: (``sink.result()`` after the simulation stage closed them).
    sink_results: List[object] = field(default_factory=list)
    #: The flattened system model the analyses ran over (and the simulation
    #: stage compiles its backend from — identical plans to flattening
    #: inside the backend, minus the repeated flatten).
    flat_model: Optional[ProcessModel] = None
    #: ``True`` when this result was restored from the persistent store
    #: instead of being analysed in-process (simulation still ran live).
    store_hit: bool = False
    #: Structural fingerprint of this run in the persistent store (empty
    #: when the run was not keyed — no store, or unkeyable options).
    store_fingerprint: str = ""
    #: Shape of the modular clock-calculus run (extraction memo/disk
    #: counters; ``None`` on store hits, where no calculus ran at all).
    calculus_stats: Optional[ModularStats] = None

    @property
    def system_model(self) -> ProcessModel:
        return self.translation.system_model

    def write_vcd(self, path: str, signals: Optional[Sequence[str]] = None) -> str:
        """Write the simulation trace as a VCD file (co-simulation demo)."""
        if self.trace is None:
            raise RuntimeError("the tool chain was run without simulation")
        return VcdWriter(timescale="1 ms").write(self.trace, path, signals=signals)

    def summary(self) -> str:
        lines = [f"Tool chain summary for {self.root.qualified_name}"]
        report = instance_report(self.root)
        lines.append(
            f"  instance model      : {report.components} components, {report.threads} threads, "
            f"{report.connections} connections"
        )
        lines.append(f"  validation          : {len(self.diagnostics.errors)} error(s), "
                     f"{len(self.diagnostics.warnings)} warning(s)")
        for processor, schedule in self.schedules.items():
            lines.append(
                f"  schedule [{processor}]: {schedule.policy.value}, hyper-period {schedule.hyperperiod_ms} ms, "
                f"{len(schedule.jobs)} jobs, utilisation {schedule.processor_utilisation():.2f}"
            )
        if self.clock_report is not None:
            lines.append(
                f"  clock calculus      : {self.clock_report.clock_count} classes over "
                f"{self.clock_report.signal_count} signals, "
                f"{'endochronous' if self.clock_report.endochronous else 'not endochronous'}"
            )
        if self.determinism is not None:
            lines.append(f"  determinism         : {'ok' if self.determinism.deterministic else 'issues found'}")
        if self.deadlocks is not None:
            lines.append(f"  deadlock detection  : {'ok' if self.deadlocks.deadlock_free else 'cycles found'}")
        if self.trace is not None:
            backend = f" [{self.backend_name} backend]" if self.backend_name else ""
            lines.append(f"  simulation          : {self.trace.length} instants, "
                         f"{len(self.trace.flows)} recorded signals{backend}")
        elif self.scenario_length:
            backend = f" [{self.backend_name} backend]" if self.backend_name else ""
            lines.append(f"  simulation          : {self.scenario_length} instants, "
                         f"streamed to {len(self.sink_results)} sink(s){backend}")
        if self.profile is not None:
            lines.append(
                f"  profiling           : total {self.profile.total:.1f} units on {self.profile.cost_model}"
            )
        return "\n".join(lines)


def run_toolchain(
    source: "str | AadlModel",
    options: Optional[ToolchainOptions] = None,
) -> ToolchainResult:
    """Run the complete tool chain on AADL *source* (text or declarative model).

    With :attr:`ToolchainOptions.store` set, the parse→…→analyse stages are
    keyed by structural fingerprint in the persistent store: a warm hit
    restores every analysis artefact from disk (``result.store_hit``) and
    only the simulation stage runs live; a miss runs cold and publishes the
    artefacts back for the next process.  Results are identical either way
    — any corrupt or stale artifact silently falls back to the cold path.
    """
    options = options or ToolchainOptions()
    if not options.root_implementation:
        raise ValueError("ToolchainOptions.root_implementation must name the root system implementation")

    store = resolve_store(options.store)
    options_key = toolchain_options_key(options) if store is not None else None
    if options_key is None:
        store = None  # unkeyable run (custom thread behaviours): stay cold
    fingerprint = ""
    raw_key = None

    if store is not None and isinstance(source, str):
        # Textual fast path: byte-identical source skips even the parse.
        raw_key = toolchain_raw_key(source, options_key)
        indexed = store.load(KIND_INDEX, raw_key)
        if isinstance(indexed, str):
            result = _restore_from_store(store, indexed, options)
            if result is not None:
                _run_simulation(result, options)
                return result

    # 1. capture
    model = parse_string(source) if isinstance(source, str) else source

    if store is not None:
        # Structural path: canonicalise (parse→render fixed point, cheap
        # next to analysis) and look the fingerprint up on disk.
        fingerprint = toolchain_fingerprint(render_model(model), options_key)
        result = _restore_from_store(store, fingerprint, options)
        if result is not None:
            if raw_key is not None:
                store.save(KIND_INDEX, raw_key, fingerprint)
            _run_simulation(result, options)
            return result

    instantiator = Instantiator(model, default_package=options.default_package)
    root = instantiator.instantiate(options.root_implementation)

    # 2. validation
    diagnostics = validate(model, root)
    if options.strict_validation and diagnostics.has_errors:
        raise ValueError("AADL validation failed:\n" + diagnostics.summary())

    # 3 + 4. scheduling and transformation (the translator drives the synthesis).
    translation = Asme2SsmeTranslator(options.translation).translate(root)

    result = ToolchainResult(
        model=model,
        root=root,
        diagnostics=diagnostics,
        translation=translation,
        options=options,
        schedules=dict(translation.schedules),
        store_fingerprint=fingerprint,
    )

    # Per-processor task sets and schedulability/synchronizability analyses.
    from ..aadl.instance import processor_bindings

    bindings = processor_bindings(root)
    groups: Dict[str, List[ComponentInstance]] = {}
    for process in root.processes():
        processor = bindings.get(process.qualified_name)
        key = processor.qualified_name if processor is not None else "logical_processor"
        groups.setdefault(key, []).extend(process.threads())
    for processor_name, threads in groups.items():
        task_set = task_set_from_threads(threads, processor_name=processor_name)
        if not len(task_set):
            continue
        result.task_sets[processor_name] = task_set
        result.schedulability[processor_name] = analyse_schedulability(task_set)
        result.synchronizability[processor_name] = analyse_synchronizability(task_set)

    # 5. formal analyses on the flattened system model.  The clock calculus
    # runs modularly over the untouched process tree (identical results to
    # the flat solver, enforced by the parity tests, at a fraction of the
    # cost on large models); with a store, its per-subprocess extractions
    # hit and fill the persistent disk tier.
    flat = translation.system_model.flatten()
    result.flat_model = flat
    calculus = ModularClockCalculus(
        translation.system_model, cache=ExtractionCache(store=store)
    )
    result.clock_report = build_clock_report(flat, result=calculus.run())
    result.calculus_stats = calculus.stats
    result.determinism = check_determinism(flat)
    result.deadlocks = detect_deadlocks(flat)

    if store is not None:
        store.save(KIND_TOOLCHAIN, fingerprint, _store_payload(result))
        if raw_key is not None:
            store.save(KIND_INDEX, raw_key, fingerprint)

    # 6 + 7. simulation and profiling (always live — they depend on the
    # run-specific backend/horizon/stimulus options, not on the model alone).
    _run_simulation(result, options)
    return result


#: Payload fields of one persisted toolchain artifact, in restore order.
_PAYLOAD_FIELDS = (
    "model",
    "root",
    "diagnostics",
    "translation",
    "task_sets",
    "schedules",
    "clock_report",
    "determinism",
    "deadlocks",
    "schedulability",
    "synchronizability",
    "flat_model",
)


def _store_payload(result: ToolchainResult) -> Dict[str, object]:
    """The picklable analysis artefacts of one cold run (no options/trace)."""
    return {name: getattr(result, name) for name in _PAYLOAD_FIELDS}


def _restore_from_store(
    store: object, fingerprint: str, options: ToolchainOptions
) -> Optional[ToolchainResult]:
    """Rebuild a :class:`ToolchainResult` from a stored payload, or ``None``.

    Any malformed payload (wrong type, missing fields) counts as corrupt:
    the artifact is dropped and the caller falls back to the cold path —
    persistence must never turn into an error the cold path would not raise.
    """
    payload = store.load(KIND_TOOLCHAIN, fingerprint)
    if payload is None:
        return None
    try:
        fields = {name: payload[name] for name in _PAYLOAD_FIELDS}
        diagnostics = fields["diagnostics"]
        has_errors = diagnostics.has_errors
    except (TypeError, KeyError, AttributeError):
        store.delete(KIND_TOOLCHAIN, fingerprint)
        return None
    # Replay the cold path's strict-validation contract.  (Strict runs with
    # errors raise before anything is published, so this only fires when a
    # lenient run's artifact is somehow restored under a strict key.)
    if options.strict_validation and has_errors:
        raise ValueError("AADL validation failed:\n" + diagnostics.summary())
    return ToolchainResult(
        options=options,
        store_hit=True,
        store_fingerprint=fingerprint,
        **fields,
    )


def _run_simulation(result: ToolchainResult, options: ToolchainOptions) -> None:
    """Stages 6 + 7: simulate the scheduled model and profile the trace.

    Runs identically on cold and store-restored results: the backend
    compiles from the flattened model (plan-identical to flattening inside
    the backend), the scenario is an *unbounded* symbolic input program
    (O(inputs) memory) with the hyper-period horizon supplied at run time.
    """
    if options.simulate_hyperperiods <= 0 or not result.schedules:
        return
    translation = result.translation
    execution_model = (
        result.flat_model if result.flat_model is not None else translation.system_model
    )
    schedule = next(iter(result.schedules.values()))
    length = schedule.simulation_length(options.simulate_hyperperiods)
    scenario = default_scenario(execution_model, None, options.stimuli_periods)
    backend = create_backend(
        execution_model,
        backend=options.backend,
        strict=False,
        **options.backend_options,
    )
    if options.sinks is None and options.materialize_trace:
        # The classic path: materialise the trace directly.
        result.trace = backend.run(
            scenario, record=options.record_signals, length=length
        )
    else:
        # Streaming path: drive the caller's sinks instant by instant,
        # materialising alongside (via a MaterializeSink) only on request.
        sinks: List[TraceSink] = list(options.sinks or ())
        materialize = MaterializeSink() if options.materialize_trace else None
        if materialize is not None:
            sinks.append(materialize)
        backend.run(
            scenario, record=options.record_signals, sinks=sinks, length=length
        )
        if materialize is not None:
            result.trace = materialize.trace
        result.sink_results = [sink.result() for sink in options.sinks or ()]
    result.scenario_length = length
    result.backend_name = backend.name

    # 7. profiling
    if options.cost_model is not None and result.trace is not None:
        result.profile = Profiler(
            translation.system_model, options.cost_model
        ).dynamic_profile(result.trace)
