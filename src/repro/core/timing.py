"""The AADL thread timing execution model (Section IV-A, Fig. 2).

An AADL thread follows an *input-compute-output* execution model:

* the thread is **dispatched** (periodically, or by arrival of events);
* its inputs are **frozen** at *Input_Time* (by default the dispatch time):
  values arriving after the freeze are not visible to the current execution
  and wait for the next one;
* the computation is performed between **start** and **complete**, and must
  finish before the **deadline**;
* outputs are made available at *Output_Time* (by default at complete for
  immediate connections, at deadline for delayed connections).

This module gives that model a concrete form used throughout the translation
and the benchmarks: the list of per-job discrete events, their reference
points, and helpers computing the freeze/send instants of a job — the
executable version of Fig. 2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..aadl.instance import ComponentInstance
from ..aadl.properties import (
    COMPUTE_EXECUTION_TIME,
    INPUT_TIME,
    OUTPUT_TIME,
    DEFAULT_INPUT_TIME,
    DEFAULT_OUTPUT_TIME_DELAYED,
    DEFAULT_OUTPUT_TIME_IMMEDIATE,
    DispatchProtocol,
    IOReference,
    IOTimeSpec,
    parse_io_time,
    parse_time_value,
)


class ThreadEvent(enum.Enum):
    """The discrete events of one thread job (Fig. 2)."""

    DISPATCH = "dispatch"
    INPUT_FREEZE = "input_freeze"
    START = "start"
    COMPLETE = "complete"
    OUTPUT_SEND = "output_send"
    DEADLINE = "deadline"
    ERROR = "error"


#: Predeclared thread ports of the AADL standard (Section IV-A).
PREDECLARED_EVENT_PORTS = ("dispatch", "complete", "error")


@dataclass
class ThreadTimingModel:
    """Interpreted timing properties of one AADL thread."""

    name: str
    dispatch_protocol: DispatchProtocol
    period_ms: Optional[float]
    deadline_ms: Optional[float]
    wcet_ms: float
    input_time: IOTimeSpec
    output_time: IOTimeSpec
    port_input_times: Dict[str, IOTimeSpec] = field(default_factory=dict)
    port_output_times: Dict[str, IOTimeSpec] = field(default_factory=dict)

    @property
    def is_periodic(self) -> bool:
        return self.dispatch_protocol is DispatchProtocol.PERIODIC

    def input_time_of(self, port: str) -> IOTimeSpec:
        return self.port_input_times.get(port, self.input_time)

    def output_time_of(self, port: str) -> IOTimeSpec:
        return self.port_output_times.get(port, self.output_time)

    def job_events_ms(self, dispatch_ms: float, start_ms: Optional[float] = None) -> Dict[ThreadEvent, float]:
        """Nominal event instants of the job dispatched at *dispatch_ms*.

        When *start_ms* is not given the job is assumed to start right after
        its input freeze (the unscheduled, single-thread view of Fig. 2).
        """
        deadline = dispatch_ms + (self.deadline_ms if self.deadline_ms is not None else self.period_ms or 0.0)
        freeze = input_freeze_instants(self.input_time, dispatch_ms, start_ms)
        start = start_ms if start_ms is not None else freeze
        complete = start + self.wcet_ms
        send = output_send_instants(self.output_time, complete, deadline, start)
        return {
            ThreadEvent.DISPATCH: dispatch_ms,
            ThreadEvent.INPUT_FREEZE: freeze,
            ThreadEvent.START: start,
            ThreadEvent.COMPLETE: complete,
            ThreadEvent.OUTPUT_SEND: send,
            ThreadEvent.DEADLINE: deadline,
        }

    def visible_inputs(
        self, arrivals_ms: Sequence[float], horizon_ms: float
    ) -> Dict[float, List[float]]:
        """Which arrival instants are visible at each freeze instant (Fig. 2).

        Returns a mapping ``freeze instant -> arrivals frozen at that instant``
        over periodic dispatches up to *horizon_ms*.  An arrival at exactly the
        freeze instant is considered to arrive *after* the freeze (it will be
        processed at the next one), matching the port model of Fig. 5.
        """
        if not self.is_periodic or not self.period_ms:
            raise ValueError("visible_inputs is defined for periodic threads")
        freezes: List[float] = []
        dispatch = 0.0
        while dispatch < horizon_ms:
            freezes.append(self.job_events_ms(dispatch)[ThreadEvent.INPUT_FREEZE])
            dispatch += self.period_ms
        out: Dict[float, List[float]] = {}
        previous = float("-inf")
        for freeze in freezes:
            out[freeze] = [a for a in sorted(arrivals_ms) if previous <= a < freeze]
            previous = freeze
        return out


def input_freeze_instants(spec: IOTimeSpec, dispatch_ms: float, start_ms: Optional[float]) -> float:
    """Instant at which inputs are frozen for a job."""
    if spec.reference is IOReference.DISPATCH:
        return dispatch_ms + spec.offset_ms()
    if spec.reference is IOReference.START:
        return (start_ms if start_ms is not None else dispatch_ms) + spec.offset_ms()
    if spec.reference is IOReference.NO_IO:
        return dispatch_ms
    return dispatch_ms + spec.offset_ms()


def output_send_instants(
    spec: IOTimeSpec, complete_ms: float, deadline_ms: float, start_ms: float
) -> float:
    """Instant at which outputs are made available for a job."""
    if spec.reference is IOReference.COMPLETION:
        return complete_ms + spec.offset_ms()
    if spec.reference is IOReference.DEADLINE:
        return deadline_ms
    if spec.reference is IOReference.START:
        return start_ms + spec.offset_ms()
    return complete_ms + spec.offset_ms()


def thread_timing_model(thread: ComponentInstance, default_wcet_fraction: float = 0.25) -> ThreadTimingModel:
    """Interpret the timing properties of an AADL thread instance."""
    protocol_literal = thread.dispatch_protocol() or DispatchProtocol.PERIODIC.value
    protocol = DispatchProtocol.from_literal(protocol_literal)
    period = thread.period_ms()
    deadline = thread.deadline_ms()
    wcet_association = thread.properties.find(COMPUTE_EXECUTION_TIME)
    if wcet_association is not None:
        wcet = parse_time_value(wcet_association.value)
    elif period is not None:
        wcet = period * default_wcet_fraction
    else:
        wcet = 0.0

    input_association = thread.properties.find(INPUT_TIME)
    input_time = (
        parse_io_time(input_association.value)[0] if input_association is not None else DEFAULT_INPUT_TIME
    )
    output_association = thread.properties.find(OUTPUT_TIME)
    output_time = (
        parse_io_time(output_association.value)[0]
        if output_association is not None
        else DEFAULT_OUTPUT_TIME_IMMEDIATE
    )

    port_input_times: Dict[str, IOTimeSpec] = {}
    port_output_times: Dict[str, IOTimeSpec] = {}
    for feature in thread.features.values():
        in_assoc = feature.declaration.properties.find(INPUT_TIME)
        if in_assoc is not None:
            specs = parse_io_time(in_assoc.value)
            if specs:
                port_input_times[feature.name] = specs[0]
        out_assoc = feature.declaration.properties.find(OUTPUT_TIME)
        if out_assoc is not None:
            specs = parse_io_time(out_assoc.value)
            if specs:
                port_output_times[feature.name] = specs[0]

    return ThreadTimingModel(
        name=thread.name,
        dispatch_protocol=protocol,
        period_ms=period,
        deadline_ms=deadline,
        wcet_ms=wcet,
        input_time=input_time,
        output_time=output_time,
        port_input_times=port_input_times,
        port_output_times=port_output_times,
    )
