"""Translation of the root AADL system (Fig. 3).

The SIGNAL process resulting from the system implementation instantiates

* one process model per **processor** (each processor model containing the
  processes bound to it and the thread-level scheduler),
* one model per leaf **subsystem** that carries no software (such as the
  ``sysEnv`` environment and ``sysOperatorDisplay`` display systems of the
  case study) — their out ports become inputs of the system model (stimuli
  provided by the simulation scenario) and their in ports become outputs
  (observations),
* two placeholder subprocesses ``<System>_behavior()`` and
  ``<System>_property()`` as in Fig. 3, which hold system-level behaviour and
  property observers when the designer provides them,

and wires the system-level port connections between these instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..aadl.instance import ComponentInstance
from ..aadl.model import ConnectionKind, Port
from ..sig.expressions import Default, Delay, Expression, SignalRef
from ..sig.process import ProcessModel
from ..sig.values import EVENT
from .port_model import port_value_type
from .processor_model import TranslatedProcessor
from .process_model import TranslatedProcess
from .traceability import TraceabilityMap, sanitize_identifier


@dataclass
class TranslatedSystem:
    """Book-keeping of the translated root system."""

    instance: ComponentInstance
    model: ProcessModel
    processors: List[TranslatedProcessor] = field(default_factory=list)
    subsystems: List[str] = field(default_factory=list)
    unbound_processes: List[TranslatedProcess] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.model.name


def _leaf_system_model(subsystem: ComponentInstance, trace: Optional[TraceabilityMap]) -> ProcessModel:
    """Model of a leaf subsystem (no software content interpreted)."""
    name = sanitize_identifier(subsystem.name)
    model = ProcessModel(name, comment=f"AADL system {subsystem.qualified_name} (environment/leaf system)")
    model.pragmas["aadl_name"] = subsystem.qualified_name
    model.pragmas["aadl_category"] = "system"
    for feature in subsystem.features.values():
        declaration = feature.declaration
        if not isinstance(declaration, Port):
            continue
        port_name = sanitize_identifier(feature.name)
        value_type = port_value_type(declaration)
        if declaration.is_out:
            # The environment produces these events: they are inputs of the
            # model (driven by the simulation scenario) passed through.
            stimulus = f"{port_name}_stimulus"
            model.input(stimulus, value_type, comment=f"environment stimulus for {feature.name}")
            model.output(port_name, value_type)
            model.define(port_name, SignalRef(stimulus), label="environment pass-through")
        else:
            # The subsystem observes these events.
            model.input(port_name, value_type, comment=f"observed event {feature.name}")
            observed = f"{port_name}_observed"
            model.output(observed, value_type)
            model.define(observed, SignalRef(port_name), label="observation pass-through")
    if trace is not None:
        trace.add(subsystem.qualified_name, name, "process", "leaf system")
    return model


class SystemTranslator:
    """Assemble the root system model from its translated parts."""

    def __init__(self, trace: Optional[TraceabilityMap] = None) -> None:
        self.trace = trace

    def translate(
        self,
        root: ComponentInstance,
        processors: List[TranslatedProcessor],
        unbound_processes: Optional[List[TranslatedProcess]] = None,
    ) -> TranslatedSystem:
        unbound_processes = unbound_processes or []
        name = sanitize_identifier(root.name) + "_others"
        model = ProcessModel(name, comment=f"AADL system {root.qualified_name} (Fig. 3)")
        model.pragmas["aadl_name"] = root.qualified_name
        model.pragmas["aadl_category"] = "system"
        if self.trace is not None:
            self.trace.add(root.qualified_name, name, "process", "root system")

        translated = TranslatedSystem(instance=root, model=model, processors=list(processors),
                                      unbound_processes=list(unbound_processes))

        # Fig. 3 placeholders: system-level behaviour and property subprocesses.
        behaviour = ProcessModel(f"{sanitize_identifier(root.name)}_others_System_behavior",
                                 comment="system-level behaviour placeholder (Fig. 3)")
        prop = ProcessModel(f"{sanitize_identifier(root.name)}_others_System_property",
                            comment="system-level property placeholder (Fig. 3)")
        model.add_submodel(behaviour)
        model.add_submodel(prop)
        model.instantiate(behaviour, instance_name="System_behavior")
        model.instantiate(prop, instance_name="System_property")

        # Processor instances (each contains its bound processes and scheduler).
        connection_signals = self._system_connection_map(root)

        for processor in processors:
            bindings: Dict[str, str] = {}
            for decl in processor.model.inputs():
                exposed = self._external_name(processor, decl.name, connection_signals)
                if exposed is None:
                    exposed = f"{processor.name}_{decl.name}" if decl.name != "tick" else "tick"
                    model.input(exposed, decl.type)
                bindings[decl.name] = exposed
            for decl in processor.model.outputs():
                exposed = f"{processor.name}_{decl.name}"
                local_or_output = connection_signals.get((processor.name, decl.name))
                if local_or_output is not None:
                    exposed = local_or_output
                    model.local(exposed, decl.type)
                else:
                    model.output(exposed, decl.type)
                bindings[decl.name] = exposed
            model.instantiate(processor.model, instance_name=processor.name, bindings=bindings)
            if self.trace is not None and processor.instance is not None:
                self.trace.add(processor.instance.qualified_name, f"{name}.{processor.name}", "instance", "processor")

        # Unbound processes instantiated directly at the system level.
        for process in unbound_processes:
            bindings = {}
            for decl in process.model.inputs():
                exposed = f"{process.name}_{decl.name}"
                model.input(exposed, decl.type)
                bindings[decl.name] = exposed
            for decl in process.model.outputs():
                exposed = f"{process.name}_{decl.name}"
                model.output(exposed, decl.type)
                bindings[decl.name] = exposed
            model.instantiate(process.model, instance_name=process.name, bindings=bindings)

        # Leaf subsystems (environment, display, …).
        software_process_names = {p.instance.name for proc in processors for p in proc.bound_processes}
        software_process_names.update(p.instance.name for p in unbound_processes)
        for subsystem in root.subcomponents.values():
            if subsystem.category.value != "system":
                continue
            leaf = _leaf_system_model(subsystem, self.trace)
            model.add_submodel(leaf)
            translated.subsystems.append(leaf.name)
            bindings = {}
            for decl in leaf.inputs():
                mapped = connection_signals.get((leaf.name, decl.name))
                if mapped is not None:
                    model.local(mapped, decl.type)
                    bindings[decl.name] = mapped
                else:
                    exposed = f"{leaf.name}_{decl.name}"
                    model.input(exposed, decl.type)
                    bindings[decl.name] = exposed
            for decl in leaf.outputs():
                mapped = connection_signals.get((leaf.name, decl.name))
                if mapped is not None:
                    model.local(mapped, decl.type)
                    bindings[decl.name] = mapped
                else:
                    exposed = f"{leaf.name}_{decl.name}"
                    model.output(exposed, decl.type)
                    bindings[decl.name] = exposed
            model.instantiate(leaf, instance_name=leaf.name, bindings=bindings)

        return translated

    # ------------------------------------------------------------------
    def _system_connection_map(self, root: ComponentInstance) -> Dict[Tuple[str, str], str]:
        """Map (instance name, port-ish signal name) to a shared local signal.

        System-level connections link a subsystem port to a process port; the
        process itself lives inside a processor model, where its port appears
        as ``<process>_<port>``.  Both ends of every connection are mapped to
        one shared local signal named after the connection.
        """
        mapping: Dict[Tuple[str, str], str] = {}
        for connection in root.connections:
            if connection.kind is not ConnectionKind.PORT:
                continue
            local = f"conn_{sanitize_identifier(connection.name)}"
            for end, role in ((connection.source, "src"), (connection.destination, "dst")):
                owner = end.owner
                owner_name = sanitize_identifier(owner.name)
                port_name = sanitize_identifier(end.name)
                if owner.category.value == "process":
                    # The process port appears at the processor interface as
                    # "<process>_<port>".
                    bound_processor = self._processor_of(root, owner)
                    key = (bound_processor, f"{owner_name}_{port_name}")
                else:
                    key = (owner_name, port_name)
                mapping[key] = local
        return mapping

    def _processor_of(self, root: ComponentInstance, process: ComponentInstance) -> str:
        from ..aadl.instance import processor_bindings

        bindings = processor_bindings(root)
        bound = bindings.get(process.qualified_name)
        return sanitize_identifier(bound.name) if bound is not None else "logical_processor"

    def _external_name(
        self,
        processor: TranslatedProcessor,
        input_name: str,
        connection_signals: Dict[Tuple[str, str], str],
    ) -> Optional[str]:
        return connection_signals.get((processor.name, input_name))


def translate_root_system(
    root: ComponentInstance,
    processors: List[TranslatedProcessor],
    unbound_processes: Optional[List[TranslatedProcess]] = None,
    trace: Optional[TraceabilityMap] = None,
) -> TranslatedSystem:
    """Convenience wrapper around :class:`SystemTranslator`."""
    return SystemTranslator(trace=trace).translate(root, processors, unbound_processes)
