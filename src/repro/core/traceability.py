"""Traceability between AADL model elements and SIGNAL identifiers.

The paper (Section IV-E) describes "a simple but efficient mechanism of
traceability": the names of the high-level (AADL) model elements are either
preserved as names of the generated SIGNAL objects or preserved in
annotations.  This module implements that mechanism: identifier sanitisation
(AADL identifiers are almost valid SIGNAL identifiers, but qualified names and
feature paths need mangling) and a bidirectional map populated by the
translator and queryable by the analyses and the benchmarks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_IDENTIFIER_RE = re.compile(r"[^A-Za-z0-9_]")


def sanitize_identifier(name: str) -> str:
    """Turn an AADL (possibly qualified) name into a SIGNAL identifier."""
    cleaned = _IDENTIFIER_RE.sub("_", name.replace("::", "_").replace(".", "_"))
    if not cleaned:
        return "_"
    if cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


@dataclass
class TraceLink:
    """One traceability link between an AADL element and a SIGNAL object."""

    aadl_name: str
    signal_name: str
    kind: str  # "process" | "signal" | "instance" | "equation"
    detail: Optional[str] = None


@dataclass
class TraceabilityMap:
    """Bidirectional AADL ↔ SIGNAL name map."""

    links: List[TraceLink] = field(default_factory=list)
    _by_aadl: Dict[str, List[TraceLink]] = field(default_factory=dict)
    _by_signal: Dict[str, List[TraceLink]] = field(default_factory=dict)

    def add(self, aadl_name: str, signal_name: str, kind: str, detail: Optional[str] = None) -> TraceLink:
        link = TraceLink(aadl_name=aadl_name, signal_name=signal_name, kind=kind, detail=detail)
        self.links.append(link)
        self._by_aadl.setdefault(aadl_name, []).append(link)
        self._by_signal.setdefault(signal_name, []).append(link)
        return link

    def signal_names_of(self, aadl_name: str) -> List[str]:
        return [link.signal_name for link in self._by_aadl.get(aadl_name, [])]

    def aadl_names_of(self, signal_name: str) -> List[str]:
        return [link.aadl_name for link in self._by_signal.get(signal_name, [])]

    def links_of_kind(self, kind: str) -> List[TraceLink]:
        return [link for link in self.links if link.kind == kind]

    def __len__(self) -> int:
        return len(self.links)

    def report(self) -> str:
        lines = ["Traceability map (AADL -> SIGNAL)"]
        for link in self.links:
            detail = f" ({link.detail})" if link.detail else ""
            lines.append(f"  [{link.kind:<8s}] {link.aadl_name} -> {link.signal_name}{detail}")
        return "\n".join(lines)
