"""Translation of shared data components (Fig. 6).

In contrast with threads — each translated into its own process instance — a
shared data component is represented by a **single** FIFO process instance
(`fifo_reset`) that the accessing threads read and write *at different time
instants*:

* the values written into the FIFO are contributed through **partial
  definitions** of one shared signal (``Queue_w ::= producer_write`` in the
  paper's eq4), one per writer, each present at the writer's access clock;
* the read clock of the FIFO is the union of the readers' access clocks;
* the clock calculus then computes sufficient conditions for the overall
  definition to be consistent (the accesses must be pairwise exclusive — the
  mutual exclusion access clocks of the paper).

The direction of each access (read / write) is taken from the ``Access_Right``
property of the thread's ``requires data access`` feature, defaulting to
``read_write``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..aadl.instance import ComponentInstance, ConnectionInstance
from ..aadl.model import ConnectionKind, DataAccess
from ..sig import library
from ..sig.expressions import ClockUnion, SignalRef, WhenClock, Const
from ..sig.process import ProcessModel
from ..sig.values import BOOLEAN, EVENT, INTEGER
from .traceability import TraceabilityMap, sanitize_identifier

#: Property giving the access direction of a data access feature.
ACCESS_RIGHT = "Access_Right"


@dataclass
class DataAccessor:
    """One thread access to a shared data component."""

    thread_name: str
    access_name: str
    can_read: bool
    can_write: bool

    @property
    def write_signal(self) -> str:
        return f"{self.thread_name}_{self.access_name}_write"

    @property
    def read_request_signal(self) -> str:
        return f"{self.thread_name}_{self.access_name}_read_req"

    @property
    def read_value_signal(self) -> str:
        return f"{self.thread_name}_{self.access_name}_read_value"


@dataclass
class TranslatedSharedData:
    """Book-keeping of one translated shared data component."""

    data_name: str
    instance_name: str
    write_signal: str
    read_clock_signal: str
    read_value_signal: str
    accessors: List[DataAccessor] = field(default_factory=list)

    @property
    def writers(self) -> List[DataAccessor]:
        return [a for a in self.accessors if a.can_write]

    @property
    def readers(self) -> List[DataAccessor]:
        return [a for a in self.accessors if a.can_read]


def access_rights(feature_declaration: DataAccess) -> Tuple[bool, bool]:
    """``(can_read, can_write)`` of a data access feature, from ``Access_Right``."""
    value = feature_declaration.properties.value(ACCESS_RIGHT, "read_write")
    literal = str(value).lower()
    if literal in ("read_only", "read"):
        return True, False
    if literal in ("write_only", "write"):
        return False, True
    if literal in ("by_method", "access"):
        return True, True
    return True, True


def collect_accessors(
    process: ComponentInstance,
    data: ComponentInstance,
) -> List[DataAccessor]:
    """Find the threads accessing *data* through data access connections."""
    accessors: List[DataAccessor] = []
    for connection in process.connections:
        if connection.kind is not ConnectionKind.DATA_ACCESS:
            continue
        ends = (connection.source, connection.destination)
        data_end = next((end for end in ends if end.owner is data), None)
        other_end = next((end for end in ends if end.owner is not data), None)
        if data_end is None or other_end is None:
            continue
        thread = other_end.owner
        declaration = other_end.declaration
        if not isinstance(declaration, DataAccess):
            continue
        can_read, can_write = access_rights(declaration)
        accessors.append(
            DataAccessor(
                thread_name=sanitize_identifier(thread.name),
                access_name=sanitize_identifier(other_end.name),
                can_read=can_read,
                can_write=can_write,
            )
        )
    return accessors


class SharedDataTranslator:
    """Adds the shared-data FIFO instances to a translated process model."""

    def __init__(self, process_model: ProcessModel, trace: Optional[TraceabilityMap] = None) -> None:
        self.model = process_model
        self.trace = trace

    def translate(self, process: ComponentInstance, data: ComponentInstance) -> TranslatedSharedData:
        """Translate one data subcomponent of *process* (Fig. 6)."""
        data_name = sanitize_identifier(data.name)
        accessors = collect_accessors(process, data)

        write_signal = f"{data_name}_w"
        reset_signal = f"{data_name}_reset"
        read_clock = f"{data_name}_read"
        read_value = f"{data_name}_r"

        fifo = library.fifo_reset(name=f"fifo_reset_{data_name}", value_type=INTEGER, init=0)
        self.model.add_submodel(fifo)
        self.model.shared(write_signal, INTEGER, comment=f"values written to shared data {data.name}")
        self.model.local(reset_signal, EVENT)
        self.model.local(read_clock, EVENT)
        self.model.local(read_value, INTEGER)
        self.model.local(f"{data_name}_count", INTEGER)
        self.model.local(f"{data_name}_empty", BOOLEAN)

        instance_name = data_name
        self.model.instantiate(
            fifo,
            instance_name=instance_name,
            bindings={
                "write": write_signal,
                "reset": reset_signal,
                "read": read_clock,
                "read_value": read_value,
                "count": f"{data_name}_count",
                "empty": f"{data_name}_empty",
            },
            parameters={},
        )
        # eq1 in the paper: the data component is a single fifo_reset() instance.
        if self.trace is not None:
            self.trace.add(data.qualified_name, f"{self.model.name}.{instance_name}", "instance", "shared data (eq1)")

        # The reset clock is never produced by this subset (no reset accessors):
        # define it with a null clock so the FIFO is complete.
        self.model.define(reset_signal, WhenClock(Const(False)), label="no reset access in this model")

        translated = TranslatedSharedData(
            data_name=data_name,
            instance_name=instance_name,
            write_signal=write_signal,
            read_clock_signal=read_clock,
            read_value_signal=read_value,
            accessors=accessors,
        )

        # eq4 in the paper: one partial definition of the shared variable per
        # writer, each at the writer's access clock.
        for writer in translated.writers:
            self.model.local(writer.write_signal, INTEGER)
            self.model.define_partial(
                write_signal,
                SignalRef(writer.write_signal),
                label=f"eq4: write access of {writer.thread_name}",
            )
            if self.trace is not None:
                self.trace.add(
                    f"{process.qualified_name}.{data.name}",
                    f"{write_signal} ::= {writer.write_signal}",
                    "equation",
                    "partial definition (write access)",
                )

        # eq3-style read access: the FIFO is read at the union of the readers'
        # access clocks; each reader observes the read value.
        readers = translated.readers
        if readers:
            union = SignalRef(readers[0].read_request_signal)
            self.model.local(readers[0].read_request_signal, EVENT)
            for reader in readers[1:]:
                self.model.local(reader.read_request_signal, EVENT)
                union = ClockUnion(union, SignalRef(reader.read_request_signal))
            self.model.define(read_clock, union, label="read clock = union of reader access clocks")
            for reader in readers:
                self.model.local(reader.read_value_signal, INTEGER)
                self.model.define(
                    reader.read_value_signal,
                    SignalRef(read_value),
                    label=f"read access of {reader.thread_name}",
                )
        else:
            self.model.define(read_clock, WhenClock(Const(False)), label="no reader")

        return translated


def standalone_shared_data_model(
    writer_names: Tuple[str, ...] = ("thProducer",),
    reader_names: Tuple[str, ...] = ("thConsumer",),
    data_name: str = "Queue",
) -> ProcessModel:
    """A standalone, simulable shared-data model (Fig. 6 benchmark).

    Writers' write signals and readers' read-request events are inputs of the
    returned process, so scenarios can drive accesses at arbitrary instants.
    """
    model = ProcessModel(f"shared_data_{data_name}", comment=f"Fig. 6: shared data {data_name}")
    fifo = library.fifo_reset(name="fifo_reset", value_type=INTEGER, init=0)
    model.add_submodel(fifo)

    write_signal = f"{data_name}_w"
    model.shared(write_signal, INTEGER)
    model.local(f"{data_name}_reset", EVENT)
    model.define(f"{data_name}_reset", WhenClock(Const(False)))
    model.output(f"{data_name}_r", INTEGER)
    model.output(f"{data_name}_count", INTEGER)
    model.local(f"{data_name}_empty", BOOLEAN)
    model.local(f"{data_name}_read", EVENT)

    for writer in writer_names:
        signal = f"{writer}_write"
        model.input(signal, INTEGER)
        model.define_partial(write_signal, SignalRef(signal), label=f"eq4: write access of {writer}")

    read_requests = []
    for reader in reader_names:
        signal = f"{reader}_read_req"
        model.input(signal, EVENT)
        read_requests.append(signal)
    if read_requests:
        union = SignalRef(read_requests[0])
        for signal in read_requests[1:]:
            union = ClockUnion(union, SignalRef(signal))
        model.define(f"{data_name}_read", union)
    else:
        model.define(f"{data_name}_read", WhenClock(Const(False)))

    model.instantiate(
        fifo,
        instance_name=data_name,
        bindings={
            "write": write_signal,
            "reset": f"{data_name}_reset",
            "read": f"{data_name}_read",
            "read_value": f"{data_name}_r",
            "count": f"{data_name}_count",
            "empty": f"{data_name}_empty",
        },
    )
    return model
