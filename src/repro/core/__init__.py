"""Core contribution: the AADL → polychronous (SIGNAL) translation.

This package is the Python counterpart of the ASME2SSME model transformation
of the paper: it takes an AADL instance model (built by :mod:`repro.aadl`) and
produces a hierarchy of SIGNAL processes (built on :mod:`repro.sig`) endowed
with the AADL timing execution model — input freezing, output sending, thread
activation, shared data with partial definitions, processor binding and
thread-level scheduling through affine clocks.
"""

from .timing import (
    ThreadEvent,
    ThreadTimingModel,
    thread_timing_model,
    input_freeze_instants,
    output_send_instants,
)
from .traceability import TraceabilityMap, sanitize_identifier
from .port_model import PortTranslator, TranslatedPort, standalone_in_event_port_model
from .data_model import SharedDataTranslator, TranslatedSharedData, standalone_shared_data_model
from .thread_model import ThreadBehaviour, ThreadTranslator, TranslatedThread, translate_thread
from .process_model import ProcessTranslator, TranslatedProcess, translate_process
from .processor_model import ProcessorTranslator, TranslatedProcessor, translate_processor
from .system_model import SystemTranslator, TranslatedSystem, translate_root_system
from .translator import Asme2SsmeTranslator, TranslationConfig, TranslationResult, translate_system
from .toolchain import ToolchainOptions, ToolchainResult, run_toolchain

__all__ = [
    "PortTranslator", "TranslatedPort", "standalone_in_event_port_model",
    "SharedDataTranslator", "TranslatedSharedData", "standalone_shared_data_model",
    "ThreadBehaviour", "ThreadTranslator", "TranslatedThread", "translate_thread",
    "ProcessTranslator", "TranslatedProcess", "translate_process",
    "ProcessorTranslator", "TranslatedProcessor", "translate_processor",
    "SystemTranslator", "TranslatedSystem", "translate_root_system",
    "ThreadEvent",
    "ThreadTimingModel",
    "thread_timing_model",
    "input_freeze_instants",
    "output_send_instants",
    "TraceabilityMap",
    "sanitize_identifier",
    "Asme2SsmeTranslator",
    "TranslationConfig",
    "TranslationResult",
    "translate_system",
    "ToolchainOptions",
    "ToolchainResult",
    "run_toolchain",
]
