"""ASME2SSME: the AADL → SIGNAL model transformation.

:class:`Asme2SsmeTranslator` orchestrates the per-category translators
(threads, ports, shared data, processes, processors, the root system) over an
AADL instance tree and returns a :class:`TranslationResult` holding

* the root SIGNAL process model (Fig. 3),
* the model of every translated component, indexed by its AADL qualified name,
* the scheduler(s) synthesised per processor (when scheduling is requested),
* the traceability map between AADL names and SIGNAL identifiers.

The translation is purely structural and semantic-preserving in the sense of
the paper: the timing semantics of AADL (input freezing, output sending,
dispatch/deadline events, shared data access clocks) is encoded with the
polychronous operators, and the thread-level scheduling is resolved through
affine clock relations so the result is complete and executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..aadl.instance import ComponentInstance, processor_bindings
from ..scheduling.static_scheduler import (
    SchedulingPolicy,
    StaticSchedule,
    StaticSchedulerConfig,
    synthesise_schedule,
)
from ..scheduling.task import task_set_from_threads
from ..sig.process import ProcessModel
from .process_model import ProcessTranslator, TranslatedProcess
from .processor_model import ProcessorTranslator, TranslatedProcessor
from .system_model import SystemTranslator, TranslatedSystem
from .thread_model import ThreadBehaviour
from .traceability import TraceabilityMap, sanitize_identifier


@dataclass
class TranslationConfig:
    """Options of the ASME2SSME transformation."""

    #: Synthesise the thread-level scheduler and embed it in the processor models.
    include_scheduler: bool = True
    #: Scheduling policy used for the synthesis.
    scheduling_policy: SchedulingPolicy = SchedulingPolicy.RATE_MONOTONIC
    #: Resolve overlapping mode transitions deterministically (document order);
    #: set to False to keep the faithful, possibly non-deterministic partial
    #: definitions that the determinism analysis reports (Section V-C).
    resolve_mode_conflicts: bool = True
    #: Optional user-provided thread behaviours, keyed by thread instance name.
    thread_behaviours: Dict[str, ThreadBehaviour] = field(default_factory=dict)
    #: Default WCET fraction of the period when Compute_Execution_Time is absent.
    default_wcet_fraction: float = 0.25


@dataclass
class TranslationResult:
    """Outcome of the ASME2SSME transformation."""

    root: ComponentInstance
    system: TranslatedSystem
    processes: Dict[str, TranslatedProcess] = field(default_factory=dict)
    processors: Dict[str, TranslatedProcessor] = field(default_factory=dict)
    schedules: Dict[str, StaticSchedule] = field(default_factory=dict)
    trace: TraceabilityMap = field(default_factory=TraceabilityMap)

    @property
    def system_model(self) -> ProcessModel:
        return self.system.model

    def process_model(self, name: str) -> ProcessModel:
        for qualified, process in self.processes.items():
            if qualified == name or qualified.endswith(f".{name}") or process.name == name:
                return process.model
        raise KeyError(f"no translated process named {name!r}")

    def thread_model(self, name: str) -> ProcessModel:
        for process in self.processes.values():
            for thread in process.threads:
                if thread.name == sanitize_identifier(name) or thread.instance.name == name:
                    return thread.model
        raise KeyError(f"no translated thread named {name!r}")

    def all_models(self) -> List[ProcessModel]:
        return self.system_model.all_models()

    def statistics(self) -> Dict[str, int]:
        """Counts used by the scalability benchmark."""
        flat = self.system_model.flatten()
        return {
            "models": len(self.all_models()),
            "signals": flat.signal_count(),
            "equations": flat.equation_count(),
            "processes": len(self.processes),
            "processors": len(self.processors),
            "trace_links": len(self.trace),
        }


class Asme2SsmeTranslator:
    """The AADL-to-SIGNAL model transformation (ASME2SSME)."""

    def __init__(self, config: Optional[TranslationConfig] = None) -> None:
        self.config = config or TranslationConfig()

    # ------------------------------------------------------------------
    def translate(self, root: ComponentInstance) -> TranslationResult:
        trace = TraceabilityMap()
        result = TranslationResult(root=root, system=None, trace=trace)  # type: ignore[arg-type]

        # 1. Translate every process of the instance tree.
        process_translator = ProcessTranslator(
            trace=trace,
            resolve_mode_conflicts=self.config.resolve_mode_conflicts,
            behaviours=self.config.thread_behaviours,
        )
        translated_processes: Dict[str, TranslatedProcess] = {}
        for process in root.processes():
            translated = process_translator.translate(process)
            translated_processes[process.qualified_name] = translated
            result.processes[process.qualified_name] = translated

        # 2. Group processes by processor binding and synthesise the schedulers.
        bindings = processor_bindings(root)
        by_processor: Dict[str, List[TranslatedProcess]] = {}
        processor_instances: Dict[str, ComponentInstance] = {}
        unbound: List[TranslatedProcess] = []
        for qualified_name, translated in translated_processes.items():
            processor = bindings.get(qualified_name)
            if processor is None:
                unbound.append(translated)
                continue
            by_processor.setdefault(processor.qualified_name, []).append(translated)
            processor_instances[processor.qualified_name] = processor

        processor_translator = ProcessorTranslator(trace=trace)
        translated_processors: List[TranslatedProcessor] = []
        for processor_name, processes in sorted(by_processor.items()):
            processor = processor_instances[processor_name]
            schedule: Optional[StaticSchedule] = None
            if self.config.include_scheduler:
                threads = [
                    thread.instance
                    for process in processes
                    for thread in process.threads
                ]
                task_set = task_set_from_threads(
                    threads,
                    processor_name=sanitize_identifier(processor.name),
                    default_wcet_fraction=self.config.default_wcet_fraction,
                )
                if len(task_set):
                    schedule = synthesise_schedule(
                        task_set, StaticSchedulerConfig(policy=self.config.scheduling_policy)
                    )
                    result.schedules[processor.qualified_name] = schedule
            translated_processor = processor_translator.translate(processor, processes, schedule)
            translated_processors.append(translated_processor)
            result.processors[processor.qualified_name] = translated_processor

        # Processes bound to no processor still need a host when scheduling is off.
        if unbound and not translated_processors and self.config.include_scheduler:
            threads = [thread.instance for process in unbound for thread in process.threads]
            task_set = task_set_from_threads(threads, processor_name="logical_processor")
            schedule = None
            if len(task_set):
                schedule = synthesise_schedule(
                    task_set, StaticSchedulerConfig(policy=self.config.scheduling_policy)
                )
                result.schedules["logical_processor"] = schedule
            translated_processor = processor_translator.translate(None, unbound, schedule)
            translated_processors.append(translated_processor)
            result.processors["logical_processor"] = translated_processor
            unbound = []

        # 3. Assemble the root system model (Fig. 3).
        system_translator = SystemTranslator(trace=trace)
        result.system = system_translator.translate(root, translated_processors, unbound)
        return result


def translate_system(
    root: ComponentInstance,
    config: Optional[TranslationConfig] = None,
) -> TranslationResult:
    """Translate an instantiated AADL system with :class:`Asme2SsmeTranslator`."""
    return Asme2SsmeTranslator(config).translate(root)
