"""Translation of AADL thread ports to SIGNAL processes (Fig. 5).

A thread port is not a mere signal: it has timing semantics (freeze at
*Input_Time*, send at *Output_Time*) and, for event and event-data ports, a
queue.  Each port therefore becomes an *instance of a library process* inside
the translated thread:

* in event / event data ports → :func:`repro.sig.library.in_event_port`
  (``in_fifo`` + ``frozen_fifo``, ``Queue_Size`` parameter, overflow event);
* in data ports → :func:`repro.sig.library.data_port` (last value wins);
* out ports → :func:`repro.sig.library.out_event_port` (values held until
  *Output_Time*).

The naming convention mirrors the paper's figures: the frozen value of port
``pProdStart`` is ``pProdStart_frozen``, its freeze event is
``time1_pProdStart_Frozen_time``, the output-time event of an out port ``q``
is ``time1_q_Output_time``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..aadl.instance import FeatureInstance
from ..aadl.model import Port, PortKind
from ..aadl.properties import QUEUE_SIZE
from ..sig import library
from ..sig.process import Direction, ProcessModel
from ..sig.values import EVENT, INTEGER, SignalType
from .traceability import TraceabilityMap, sanitize_identifier


def port_value_type(port: Port) -> SignalType:
    """SIGNAL type carried by a port (events are pure, data is uninterpreted int)."""
    if port.kind is PortKind.EVENT:
        return EVENT
    return INTEGER


def frozen_signal_name(port_name: str) -> str:
    return f"{port_name}_frozen"


def frozen_time_signal_name(port_name: str) -> str:
    return f"time1_{port_name}_Frozen_time"


def output_time_signal_name(port_name: str) -> str:
    return f"time1_{port_name}_Output_time"


@dataclass
class TranslatedPort:
    """Book-keeping of one translated port inside a thread model."""

    feature: FeatureInstance
    direction: str  # "in" | "out"
    kind: PortKind
    arrival_signal: Optional[str]
    frozen_signal: Optional[str]
    time_signal: str
    instance_name: str
    queue_size: int = 1


class PortTranslator:
    """Adds the port sub-processes of one thread to its SIGNAL model."""

    def __init__(self, thread_model: ProcessModel, trace: Optional[TraceabilityMap] = None) -> None:
        self.model = thread_model
        self.trace = trace

    # ------------------------------------------------------------------
    def translate_in_port(self, feature: FeatureInstance) -> TranslatedPort:
        """Translate an in (event / event data / data) port."""
        port = feature.declaration
        if not isinstance(port, Port):
            raise TypeError(f"{feature.qualified_name} is not a port")
        name = sanitize_identifier(feature.name)
        value_type = port_value_type(port)
        arrival = self.model.input(name, value_type, comment=f"in {port.kind.value} port {feature.name}")
        freeze_event = self.model.input(
            frozen_time_signal_name(name), EVENT, comment=f"Input_Time (frozen time) event of {feature.name}"
        )
        frozen = frozen_signal_name(name)

        if port.kind in (PortKind.EVENT, PortKind.EVENT_DATA):
            queue_size = int(feature.declaration.properties.value(QUEUE_SIZE, 1))
            port_process = library.in_event_port(
                name=f"in_event_port_{name}", queue_size=queue_size, value_type=value_type
            )
            self.model.add_submodel(port_process)
            self.model.local(frozen, value_type)
            self.model.local(f"{name}_frozen_count", INTEGER)
            self.model.local(f"{name}_dropped", EVENT)
            instance_name = f"port_{name}"
            self.model.instantiate(
                port_process,
                instance_name=instance_name,
                bindings={
                    "arrival": name,
                    "frozen_time": frozen_time_signal_name(name),
                    "frozen_value": frozen,
                    "frozen_count": f"{name}_frozen_count",
                    "dropped": f"{name}_dropped",
                },
            )
        else:  # data port
            queue_size = 1
            port_process = library.data_port(name=f"data_port_{name}", value_type=value_type)
            self.model.add_submodel(port_process)
            self.model.local(frozen, value_type)
            instance_name = f"port_{name}"
            self.model.instantiate(
                port_process,
                instance_name=instance_name,
                bindings={
                    "incoming": name,
                    "frozen_time": frozen_time_signal_name(name),
                    "frozen_value": frozen,
                },
            )
        if self.trace is not None:
            self.trace.add(feature.qualified_name, f"{self.model.name}.{instance_name}", "instance", "in port")
        return TranslatedPort(
            feature=feature,
            direction="in",
            kind=port.kind,
            arrival_signal=name,
            frozen_signal=frozen,
            time_signal=frozen_time_signal_name(name),
            instance_name=instance_name,
            queue_size=queue_size,
        )

    # ------------------------------------------------------------------
    def translate_out_port(self, feature: FeatureInstance, produced_signal: str) -> TranslatedPort:
        """Translate an out port; *produced_signal* is the thread's computation output."""
        port = feature.declaration
        if not isinstance(port, Port):
            raise TypeError(f"{feature.qualified_name} is not a port")
        name = sanitize_identifier(feature.name)
        value_type = port_value_type(port)
        self.model.output(name, value_type, comment=f"out {port.kind.value} port {feature.name}")
        send_event = self.model.input(
            output_time_signal_name(name), EVENT, comment=f"Output_Time event of {feature.name}"
        )
        port_process = library.out_event_port(name=f"out_event_port_{name}", value_type=value_type)
        self.model.add_submodel(port_process)
        self.model.local(f"{name}_sent_count", INTEGER)
        instance_name = f"port_{name}"
        self.model.instantiate(
            port_process,
            instance_name=instance_name,
            bindings={
                "produced": produced_signal,
                "send_time": output_time_signal_name(name),
                "sent": name,
                "sent_count": f"{name}_sent_count",
            },
        )
        if self.trace is not None:
            self.trace.add(feature.qualified_name, f"{self.model.name}.{instance_name}", "instance", "out port")
        return TranslatedPort(
            feature=feature,
            direction="out",
            kind=port.kind,
            arrival_signal=None,
            frozen_signal=None,
            time_signal=output_time_signal_name(name),
            instance_name=instance_name,
        )


def standalone_in_event_port_model(
    port_name: str = "pProdStart", queue_size: int = 1, value_type: SignalType = INTEGER
) -> ProcessModel:
    """A standalone, simulable model of one in event port (Fig. 5 benchmark).

    The returned process has the arrival and Frozen_time events as inputs and
    the frozen value/count as outputs, with the same naming as inside a
    translated thread.
    """
    model = ProcessModel(f"in_event_port_{port_name}", comment=f"Fig. 5: in event port {port_name}")
    inner = library.in_event_port(name="in_event_port", queue_size=queue_size, value_type=value_type)
    model.add_submodel(inner)
    model.input(port_name, value_type)
    model.input(frozen_time_signal_name(port_name), EVENT)
    model.output(frozen_signal_name(port_name), value_type)
    model.output(f"{port_name}_frozen_count", INTEGER)
    model.output(f"{port_name}_dropped", EVENT)
    model.instantiate(
        inner,
        instance_name=f"port_{port_name}",
        bindings={
            "arrival": port_name,
            "frozen_time": frozen_time_signal_name(port_name),
            "frozen_value": frozen_signal_name(port_name),
            "frozen_count": f"{port_name}_frozen_count",
            "dropped": f"{port_name}_dropped",
        },
    )
    return model
