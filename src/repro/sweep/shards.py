"""Columnar result shards: the on-disk format of a sweep.

A sweep never returns traces — every partition's results are flushed to
disk as **columnar shards** and dropped from memory, which is what keeps a
10^5-scenario sweep as small as a 10^3-scenario one (the E20 gate).  Three
tables make up the store:

* ``scenarios`` — one row per scenario: id, outcome (``ok`` / ``error`` /
  ``fault``), fault kind and detail, attempt count, warning count, and the
  space's published parameter dict;
* ``statistics`` — one row per ``(scenario, recorded signal)``: the
  constant-memory :class:`~repro.sig.sinks.SignalStatistics` aggregate
  (presence counts, range, first/last instants);
* ``deltas`` — one row per recorded change of a watched signal (present
  only when the sweep watches deltas): scenario id, signal, instant, new
  value.

Two interchangeable shard formats carry the tables:

* ``parquet`` — one parquet file per (table, partition) via **pyarrow**,
  with column projection and predicate pushdown at read time.  pyarrow is
  a *soft* dependency in the house style: runtime-checked
  (:func:`pyarrow_available`), never imported at module import;
* ``jsonl`` — the pure-stdlib fallback: one JSON object per row, one file
  per (table, partition), streamed line by line at read time.  Queries
  over both formats return identical decoded rows (CI proves it with a
  dedicated no-arrow job).

Values that may be arbitrary Python objects (signal values, statistics
ranges, parameter dicts) are carried in **wrapped JSON** columns using the
serving layer's convention: a present value ``v`` encodes as ``[v]`` and
``ABSENT`` as ``null``, so a present ``None`` never collides with absence
and ``bool``/``int`` stay distinct through the round trip.  In parquet
these columns are JSON strings (typed columns hold the scan-friendly
integers); in jsonl they embed directly.  Either way
:func:`decode_row` returns the exact Python values, which is what the E20
parity gate (shard query == in-memory reference, bit for bit) leans on.

Shard files are written to a temporary name and atomically renamed, so a
reader (or a resumed sweep) never sees a torn shard — at worst an orphaned
file that the manifest does not list, which resume quarantines.
"""

from __future__ import annotations

import importlib.util
import json
import os
import tempfile
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..sig.sinks import DeltaLog, SignalStatistics, TraceStatistics
from ..sig.values import ABSENT

#: Message explaining the optional parquet dependency (mirrors the numpy /
#: numba / serve soft-dependency contracts).
PYARROW_FALLBACK_MESSAGE = (
    "pyarrow is not available; sweep shards fall back to the pure-stdlib "
    "jsonl format (install the 'sweep' extra, e.g. pip install "
    "'repro-aadl-polychrony[sweep]', for parquet shards with column "
    "projection and predicate pushdown)"
)

#: The shard formats a sweep store may use.
SHARD_FORMATS = ("parquet", "jsonl")

#: The tables of a sweep store.
TABLES = ("scenarios", "statistics", "deltas")

#: Per-table column order (also the parquet schema order).
TABLE_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "scenarios": (
        "scenario_id",
        "status",
        "kind",
        "detail",
        "attempts",
        "warnings",
        "params",
    ),
    "statistics": (
        "scenario_id",
        "signal",
        "present",
        "absent",
        "first_instant",
        "last_instant",
        "minimum",
        "maximum",
    ),
    "deltas": ("scenario_id", "signal", "instant", "value"),
}

#: Columns carried as wrapped JSON (``[value]`` / ``null`` / raw dict) —
#: everything else is a plain integer or string column that predicate
#: pushdown can act on directly.
JSON_COLUMNS: Dict[str, Tuple[str, ...]] = {
    "scenarios": ("params",),
    "statistics": ("minimum", "maximum"),
    "deltas": ("value",),
}


def pyarrow_available() -> bool:
    """``True`` when pyarrow is importable (checked at run time, never at
    import: ``import repro.sweep`` must succeed on bare installations)."""
    return importlib.util.find_spec("pyarrow") is not None


def resolve_shard_format(shard_format: str = "auto") -> str:
    """Resolve a requested shard format against the environment.

    ``"auto"`` picks parquet when pyarrow is importable and falls back to
    jsonl otherwise; asking for parquet explicitly without pyarrow raises
    with the install hint instead of degrading silently.
    """
    if shard_format == "auto":
        return "parquet" if pyarrow_available() else "jsonl"
    if shard_format not in SHARD_FORMATS:
        raise ValueError(
            f"unknown shard format {shard_format!r}; expected one of "
            f"{SHARD_FORMATS} or 'auto'"
        )
    if shard_format == "parquet" and not pyarrow_available():
        raise RuntimeError(PYARROW_FALLBACK_MESSAGE)
    return shard_format


# ----------------------------------------------------------------------
# value codec (shared by both formats)
# ----------------------------------------------------------------------
def wrap_value(value: Any) -> Optional[List[Any]]:
    """Wrap one possibly-absent value: ``[v]`` when present, ``None`` for
    ``ABSENT``/``None`` — the serving layer's wire convention, so a present
    ``None``-like value can never be mistaken for absence."""
    if value is ABSENT or value is None:
        return None
    return [value]


def unwrap_value(wrapped: Any, absent: Any = None) -> Any:
    """Invert :func:`wrap_value` (``absent`` is returned for ``null``)."""
    if wrapped is None:
        return absent
    return wrapped[0]


def _json_default(value: Any) -> str:
    """Last-resort JSON encoding of exotic values (kept queryable as text)."""
    return repr(value)


def dumps_json(value: Any) -> str:
    """Compact JSON encoding shared by both shard formats."""
    return json.dumps(value, separators=(",", ":"), default=_json_default)


# ----------------------------------------------------------------------
# row builders (shared by the executor, the benchmark and the parity tests)
# ----------------------------------------------------------------------
def scenario_row(
    scenario_id: int,
    status: str,
    params: Mapping[str, Any],
    kind: Optional[str] = None,
    detail: Optional[str] = None,
    attempts: Optional[int] = None,
    warnings: int = 0,
) -> Dict[str, Any]:
    """One ``scenarios``-table row (decoded form)."""
    return {
        "scenario_id": scenario_id,
        "status": status,
        "kind": kind,
        "detail": detail,
        "attempts": attempts,
        "warnings": warnings,
        "params": dict(params),
    }


def statistics_rows(scenario_id: int, statistics: TraceStatistics) -> List[Dict[str, Any]]:
    """The ``statistics``-table rows of one scenario's streamed aggregates,
    in sorted signal order (decoded form)."""
    rows: List[Dict[str, Any]] = []
    for name in statistics.signals():
        entry = statistics.per_signal[name]
        rows.append(
            {
                "scenario_id": scenario_id,
                "signal": name,
                "present": entry.present,
                "absent": entry.absent,
                "first_instant": entry.first_instant,
                "last_instant": entry.last_instant,
                "minimum": entry.minimum,
                "maximum": entry.maximum,
            }
        )
    return rows


def delta_rows(scenario_id: int, log: DeltaLog) -> List[Dict[str, Any]]:
    """The ``deltas``-table rows of one scenario's change log (decoded
    form): one row per (change instant, changed signal), instant order."""
    rows: List[Dict[str, Any]] = []
    for instant, changes in log.entries:
        for signal in sorted(changes):
            rows.append(
                {
                    "scenario_id": scenario_id,
                    "signal": signal,
                    "instant": instant,
                    "value": changes[signal],
                }
            )
    return rows


def encode_row(table: str, row: Mapping[str, Any]) -> Dict[str, Any]:
    """Encode one decoded row into its storable (JSON-able) form."""
    encoded = dict(row)
    if table == "scenarios":
        encoded["params"] = dict(row["params"])
    elif table == "statistics":
        encoded["minimum"] = wrap_value(row["minimum"])
        encoded["maximum"] = wrap_value(row["maximum"])
    elif table == "deltas":
        encoded["value"] = wrap_value(row["value"])
    return encoded


def decode_row(table: str, encoded: Mapping[str, Any]) -> Dict[str, Any]:
    """Invert :func:`encode_row`: storable form back to exact Python values."""
    row = dict(encoded)
    if table == "scenarios":
        row["params"] = dict(encoded["params"] or {})
    elif table == "statistics":
        row["minimum"] = unwrap_value(encoded["minimum"])
        row["maximum"] = unwrap_value(encoded["maximum"])
    elif table == "deltas":
        row["value"] = unwrap_value(encoded["value"], absent=ABSENT)
    return row


# ----------------------------------------------------------------------
# predicates
# ----------------------------------------------------------------------
#: One predicate: ``(column, operator, operand)`` with operator one of
#: ``== != < <= > >= in``; or a mapping shorthand ``{column: value}``
#: meaning equality on every entry.
Predicate = Tuple[str, str, Any]

_OPERATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a is not None and a < b,
    "<=": lambda a, b: a is not None and a <= b,
    ">": lambda a, b: a is not None and a > b,
    ">=": lambda a, b: a is not None and a >= b,
    "in": lambda a, b: a in b,
}


def normalize_where(
    where: Union[None, Mapping[str, Any], Sequence[Predicate]],
) -> List[Predicate]:
    """Normalise a ``where=`` argument into a predicate list.

    Accepts ``None``, a mapping (equality on every entry) or a sequence of
    ``(column, op, operand)`` triples; unknown operators are rejected here
    so both formats fail identically.
    """
    if where is None:
        return []
    if isinstance(where, Mapping):
        return [(column, "==", value) for column, value in where.items()]
    predicates: List[Predicate] = []
    for column, op, operand in where:
        if op not in _OPERATORS:
            raise ValueError(
                f"unknown predicate operator {op!r}; expected one of "
                f"{sorted(_OPERATORS)}"
            )
        predicates.append((column, op, operand))
    return predicates


def row_matches(row: Mapping[str, Any], predicates: Sequence[Predicate]) -> bool:
    """Evaluate every predicate against one decoded row."""
    for column, op, operand in predicates:
        try:
            if not _OPERATORS[op](row.get(column), operand):
                return False
        except TypeError:
            # Unorderable comparison (e.g. None < 3): the row does not match.
            return False
    return True


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def shard_name(table: str, partition: int, shard_format: str) -> str:
    """Canonical shard file name of one (table, partition)."""
    extension = "parquet" if shard_format == "parquet" else "jsonl"
    return f"{table}-{partition:05d}.{extension}"


def parse_shard_name(name: str) -> Optional[Tuple[str, int]]:
    """Invert :func:`shard_name` (``None`` for non-shard files)."""
    stem, _, extension = name.rpartition(".")
    if extension not in ("parquet", "jsonl"):
        return None
    table, _, number = stem.rpartition("-")
    if table not in TABLES or not number.isdigit():
        return None
    return table, int(number)


def _atomic_bytes(path: str, payload: bytes) -> None:
    """Write *payload* to *path* via a same-directory temp file + rename."""
    directory = os.path.dirname(path)
    descriptor, temp_path = tempfile.mkstemp(prefix=".tmp-shard-", dir=directory)
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(payload)
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def _parquet_module():
    """Import pyarrow.parquet on demand (soft dependency)."""
    import pyarrow  # noqa: F401 - ensures the clear error surfaces first
    import pyarrow.parquet as parquet

    return pyarrow, parquet


def _parquet_schema(table: str):
    """The explicit pyarrow schema of one table (no inference surprises:
    an all-``None`` column must still be typed)."""
    import pyarrow

    integer = pyarrow.int64()
    string = pyarrow.string()
    types = {
        "scenario_id": integer,
        "status": string,
        "kind": string,
        "detail": string,
        "attempts": integer,
        "warnings": integer,
        "params": string,
        "signal": string,
        "present": integer,
        "absent": integer,
        "first_instant": integer,
        "last_instant": integer,
        "minimum": string,
        "maximum": string,
        "instant": integer,
        "value": string,
    }
    return pyarrow.schema(
        [(column, types[column]) for column in TABLE_COLUMNS[table]]
    )


class ShardWriter:
    """Write per-partition table shards under a sweep directory.

    One writer per sweep run; :meth:`write` flushes one (table, partition)
    batch of **decoded** rows as a single shard file, atomically (temp +
    rename), and returns the file name for the manifest.  Rows are encoded
    through :func:`encode_row`, so the writer accepts exactly what
    :func:`statistics_rows` / :func:`delta_rows` / :func:`scenario_row`
    build.
    """

    def __init__(self, directory: str, shard_format: str) -> None:
        if shard_format not in SHARD_FORMATS:
            raise ValueError(f"unknown shard format {shard_format!r}")
        if shard_format == "parquet" and not pyarrow_available():
            raise RuntimeError(PYARROW_FALLBACK_MESSAGE)
        self.directory = directory
        self.shard_format = shard_format
        os.makedirs(directory, exist_ok=True)

    def write(self, table: str, partition: int, rows: Sequence[Mapping[str, Any]]) -> str:
        """Flush one partition's rows of *table*; returns the shard name."""
        if table not in TABLES:
            raise ValueError(f"unknown table {table!r}; expected one of {TABLES}")
        name = shard_name(table, partition, self.shard_format)
        path = os.path.join(self.directory, name)
        if self.shard_format == "parquet":
            self._write_parquet(table, path, rows)
        else:
            self._write_jsonl(table, path, rows)
        return name

    def _write_jsonl(self, table: str, path: str, rows: Sequence[Mapping[str, Any]]) -> None:
        """One JSON object per line, atomically renamed into place."""
        lines = [dumps_json(encode_row(table, row)) for row in rows]
        payload = ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")
        _atomic_bytes(path, payload)

    def _write_parquet(self, table: str, path: str, rows: Sequence[Mapping[str, Any]]) -> None:
        """One parquet file per shard: JSON columns stored as strings."""
        pyarrow, parquet = _parquet_module()
        json_columns = set(JSON_COLUMNS[table])
        columns: Dict[str, List[Any]] = {column: [] for column in TABLE_COLUMNS[table]}
        for row in rows:
            encoded = encode_row(table, row)
            for column in TABLE_COLUMNS[table]:
                value = encoded[column]
                if column in json_columns:
                    value = dumps_json(value)
                columns[column].append(value)
        arrow_table = pyarrow.Table.from_pydict(columns, schema=_parquet_schema(table))
        directory = os.path.dirname(path)
        descriptor, temp_path = tempfile.mkstemp(prefix=".tmp-shard-", dir=directory)
        os.close(descriptor)
        try:
            parquet.write_table(arrow_table, temp_path)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
def _pushdown_filters(
    table: str, predicates: Sequence[Predicate]
) -> Optional[List[Tuple[str, str, Any]]]:
    """The predicates parquet can evaluate inside the scan (plain columns
    only — wrapped-JSON columns are re-checked in Python after decoding)."""
    json_columns = set(JSON_COLUMNS[table])
    filters = [
        (column, "=" if op == "==" else op, operand)
        for column, op, operand in predicates
        if column not in json_columns and column in TABLE_COLUMNS[table]
    ]
    return filters or None


def iter_shard_rows(
    path: str,
    table: str,
    shard_format: str,
    columns: Optional[Sequence[str]] = None,
    predicates: Sequence[Predicate] = (),
) -> Iterator[Dict[str, Any]]:
    """Stream the decoded rows of one shard file.

    *columns* projects the yielded rows (after predicate evaluation, so
    predicates may reference non-projected columns).  On parquet the
    projection and the plain-column predicates are pushed into the scan;
    on jsonl the file is decoded line by line — both stay out-of-core with
    respect to the whole store (at most one shard is resident at a time).
    """
    predicates = list(predicates)
    needed: Optional[List[str]] = None
    if columns is not None:
        # The scan must also fetch predicate columns; the projection is
        # applied when the row is yielded.
        requested = [c for c in columns if c in TABLE_COLUMNS[table]]
        predicate_columns = [c for c, _, _ in predicates if c in TABLE_COLUMNS[table]]
        needed = list(dict.fromkeys(requested + predicate_columns))
    if shard_format == "parquet":
        row_iterator = _iter_parquet_rows(path, table, needed, predicates)
    else:
        row_iterator = _iter_jsonl_rows(path, table, needed, predicates)
    if columns is None:
        yield from row_iterator
        return
    projection = list(columns)
    for row in row_iterator:
        yield {column: row.get(column) for column in projection}


def _iter_jsonl_rows(
    path: str,
    table: str,
    columns: Optional[Sequence[str]],
    predicates: Sequence[Predicate],
) -> Iterator[Dict[str, Any]]:
    """Stream one jsonl shard line by line (never whole-file)."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = decode_row(table, json.loads(line))
            if not row_matches(row, predicates):
                continue
            if columns is not None:
                row = {column: row.get(column) for column in columns}
            yield row


def _iter_parquet_rows(
    path: str,
    table: str,
    columns: Optional[Sequence[str]],
    predicates: Sequence[Predicate],
) -> Iterator[Dict[str, Any]]:
    """Scan one parquet shard with projection + predicate pushdown."""
    _, parquet = _parquet_module()
    filters = _pushdown_filters(table, predicates)
    arrow_table = parquet.read_table(path, columns=list(columns) if columns else None, filters=filters)
    json_columns = set(JSON_COLUMNS[table])
    names = arrow_table.column_names
    for batch in arrow_table.to_batches():
        rows = batch.to_pylist()
        for stored in rows:
            encoded: Dict[str, Any] = {}
            for name in names:
                value = stored[name]
                if name in json_columns and value is not None:
                    value = json.loads(value)
                encoded[name] = value
            # decode_row tolerates projected rows missing JSON columns.
            row = _decode_projected(table, encoded)
            if not row_matches(row, predicates):
                continue
            yield row


def _decode_projected(table: str, encoded: Dict[str, Any]) -> Dict[str, Any]:
    """Decode a possibly column-projected encoded row."""
    row = dict(encoded)
    for column in JSON_COLUMNS[table]:
        if column not in row:
            continue
        if table == "scenarios" and column == "params":
            row[column] = dict(row[column] or {})
        elif table == "deltas" and column == "value":
            row[column] = unwrap_value(row[column], absent=ABSENT)
        else:
            row[column] = unwrap_value(row[column])
    return row


__all__ = [
    "JSON_COLUMNS",
    "PYARROW_FALLBACK_MESSAGE",
    "Predicate",
    "SHARD_FORMATS",
    "ShardWriter",
    "TABLES",
    "TABLE_COLUMNS",
    "decode_row",
    "delta_rows",
    "dumps_json",
    "encode_row",
    "iter_shard_rows",
    "normalize_where",
    "parse_shard_name",
    "pyarrow_available",
    "resolve_shard_format",
    "row_matches",
    "scenario_row",
    "shard_name",
    "statistics_rows",
    "unwrap_value",
    "wrap_value",
]
