"""Scenario-space generators: lazily enumerate symbolic scenario programs.

A fleet-scale sweep runs one model over a *space* of scenarios — a
cartesian grid over rule parameters, a seeded random sampler, or a
concatenation of both.  Symbolic scenarios (:mod:`repro.sig.scenario`) are
a few rule objects each, so the expensive part of a million-scenario sweep
is never their *description*; what must stay bounded is how many of them
exist at once.  A :class:`ScenarioSpace` therefore never holds the
enumerated scenarios: it answers **random access** requests —
``space.scenario(i)`` builds scenario *i* on demand, deterministically —
and the partitioned executor (:mod:`repro.sweep.executor`) materialises one
bounded window at a time via :meth:`ScenarioSpace.batch`.

Determinism by index is the load-bearing property: partition *k* of a sweep
covers scenario ids ``[k*P, (k+1)*P)``, and a resumed (or re-executed,
after a crash) partition must rebuild **exactly** the scenarios the first
attempt ran.  :class:`GridSpace` decodes the index through a mixed-radix
walk of its axes (row-major, last axis fastest — ``itertools.product``
order); :class:`RandomSpace` seeds a *fresh* :class:`random.Random` from
``(seed, index)`` per scenario, so scenario *i* never depends on how many
scenarios were drawn before it; :class:`ChainSpace` concatenates spaces
with offset arithmetic.

Every space carries a structural :meth:`~ScenarioSpace.fingerprint` (axes,
counts, seeds, builder identity) that the sweep manifest records: resuming
a sweep against a *different* space is detected and refused instead of
silently mixing scenario ids from two spaces.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..sig.scenario import Scenario

#: What space builders may return: the scenario alone, or ``(params,
#: scenario)`` when the builder wants to publish extra per-scenario
#: parameters into the sweep's ``scenarios`` table.
BuiltScenario = Union[Scenario, Tuple[Mapping[str, Any], Scenario]]


def _split_built(built: BuiltScenario) -> Tuple[Dict[str, Any], Scenario]:
    """Normalise a builder's return value into ``(params, scenario)``."""
    if isinstance(built, tuple):
        params, scenario = built
        return dict(params), scenario
    return {}, built


class ScenarioSpace:
    """A deterministic, random-access space of symbolic scenarios.

    Subclasses implement :meth:`__len__`, :meth:`build` (scenario *index*
    → params + scenario) and :meth:`describe` (a JSON-able structural
    description, the input of :meth:`fingerprint`).  Consumers use
    :meth:`scenario` / :meth:`params` for one index and :meth:`batch` for a
    bounded window — never the whole space at once.
    """

    def __len__(self) -> int:
        """Number of scenarios in the space."""
        raise NotImplementedError

    def build(self, index: int) -> Tuple[Dict[str, Any], Scenario]:
        """Build scenario *index*: its parameter dict and the scenario.

        Must be deterministic in *index* alone (no draw-order dependence):
        partitioned re-execution rebuilds arbitrary windows of the space.
        """
        raise NotImplementedError

    def describe(self) -> Dict[str, Any]:
        """A JSON-able structural description (feeds :meth:`fingerprint`)."""
        raise NotImplementedError

    def _check_index(self, index: int) -> None:
        """Bounds-check one scenario index."""
        if not 0 <= index < len(self):
            raise IndexError(
                f"scenario index {index} outside the space [0, {len(self)})"
            )

    def scenario(self, index: int) -> Scenario:
        """The scenario at *index* (built on demand, never cached)."""
        self._check_index(index)
        return self.build(index)[1]

    def params(self, index: int) -> Dict[str, Any]:
        """The parameter dict of scenario *index* (what the grid axes or
        the builder published; empty when the builder publishes nothing)."""
        self._check_index(index)
        return self.build(index)[0]

    def batch(self, start: int, stop: int) -> List[Scenario]:
        """Materialise the scenario window ``[start, stop)`` as a list.

        This is the only place a sweep ever holds more than one scenario:
        the executor calls it with partition-sized windows, so peak memory
        is O(partition), never O(space).
        """
        stop = min(stop, len(self))
        return [self.scenario(index) for index in range(max(0, start), stop)]

    def iter_scenarios(self, start: int = 0, stop: Optional[int] = None) -> Iterator[Scenario]:
        """Lazily yield scenarios of ``[start, stop)`` one at a time."""
        stop = len(self) if stop is None else min(stop, len(self))
        for index in range(max(0, start), stop):
            yield self.scenario(index)

    def fingerprint(self) -> str:
        """Structural sha-256 of the space (kind, shape, builder identity).

        Recorded in the sweep manifest and re-checked on resume, so a sweep
        directory can never silently continue with a different space.  The
        fingerprint covers the builder's *identity* (module-qualified
        name), not its code: editing a builder in place without renaming it
        is not detected.
        """
        payload = json.dumps(self.describe(), sort_keys=True, default=repr)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _callable_identity(function: Callable[..., Any]) -> str:
    """Stable module-qualified name of a builder callable (or its repr)."""
    module = getattr(function, "__module__", None)
    qualname = getattr(
        function, "__qualname__", getattr(type(function), "__qualname__", None)
    )
    if module and qualname:
        return f"{module}.{qualname}"
    return repr(function)


class GridSpace(ScenarioSpace):
    """Cartesian grid over named parameter axes.

    ``axes`` maps axis names to their value sequences; ``build`` is called
    with the axis values as keyword arguments (``build(period=4, phase=1)``)
    and returns the scenario (or ``(extra_params, scenario)``).  Scenario
    *i* decodes *i* in mixed radix over the axes — first axis slowest, last
    axis fastest, exactly ``itertools.product`` order — so the grid is
    never expanded: a 10^6-point grid costs the axis lists and nothing
    else.  The decoded axis values are the scenario's published params.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[Any]],
        build: Callable[..., BuiltScenario],
    ) -> None:
        if not axes:
            raise ValueError("a grid space needs at least one axis")
        self.axes: Dict[str, List[Any]] = {
            name: list(values) for name, values in axes.items()
        }
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")
        self.builder = build
        self._names = list(self.axes)
        self._sizes = [len(self.axes[name]) for name in self._names]
        self._count = 1
        for size in self._sizes:
            self._count *= size

    def __repr__(self) -> str:
        """Debug form showing the axis shape and total point count."""
        shape = "x".join(str(size) for size in self._sizes)
        return f"GridSpace({shape} = {self._count} scenarios)"

    def __len__(self) -> int:
        """Product of the axis sizes."""
        return self._count

    def point(self, index: int) -> Dict[str, Any]:
        """Decode *index* into its axis-value dict (mixed radix, row-major)."""
        self._check_index(index)
        point: Dict[str, Any] = {}
        remainder = index
        for name, size in zip(reversed(self._names), reversed(self._sizes)):
            remainder, digit = divmod(remainder, size)
            point[name] = self.axes[name][digit]
        return {name: point[name] for name in self._names}

    def build(self, index: int) -> Tuple[Dict[str, Any], Scenario]:
        """Decode the grid point and hand it to the builder."""
        point = self.point(index)
        extra, scenario = _split_built(self.builder(**point))
        params = dict(point)
        params.update(extra)
        return params, scenario

    def describe(self) -> Dict[str, Any]:
        """Axes (names and values) plus the builder identity."""
        return {
            "kind": "GridSpace",
            "axes": {name: [repr(v) for v in values] for name, values in self.axes.items()},
            "builder": _callable_identity(self.builder),
            "count": self._count,
        }


class RandomSpace(ScenarioSpace):
    """Seeded random sampler: *count* scenarios drawn by index.

    ``build`` receives a **fresh** :class:`random.Random` seeded from
    ``(seed, index)`` — never a shared stream — so scenario *i* is a pure
    function of ``(seed, i)``: partitions can be re-executed in any order
    (or on another machine) and draw identical scenarios.  The published
    params are ``{"seed": seed, "draw": index}`` plus whatever the builder
    returns alongside the scenario.
    """

    def __init__(
        self,
        count: int,
        build: Callable[[random.Random], BuiltScenario],
        seed: int = 0,
    ) -> None:
        if count < 0:
            raise ValueError("a random space cannot have a negative count")
        self.count = count
        self.builder = build
        self.seed = seed

    def __repr__(self) -> str:
        """Debug form showing count and seed."""
        return f"RandomSpace({self.count} scenarios, seed={self.seed})"

    def __len__(self) -> int:
        """The configured draw count."""
        return self.count

    def build(self, index: int) -> Tuple[Dict[str, Any], Scenario]:
        """Draw scenario *index* from its own ``(seed, index)`` generator."""
        self._check_index(index)
        rng = random.Random(f"{self.seed}:{index}")
        extra, scenario = _split_built(self.builder(rng))
        params = {"seed": self.seed, "draw": index}
        params.update(extra)
        return params, scenario

    def describe(self) -> Dict[str, Any]:
        """Count, seed and builder identity (plus the builder's own
        description when it publishes one via a ``describe()`` method)."""
        description: Dict[str, Any] = {
            "kind": "RandomSpace",
            "count": self.count,
            "seed": self.seed,
            "builder": _callable_identity(self.builder),
        }
        describe = getattr(self.builder, "describe", None)
        if callable(describe):
            description["builder_shape"] = describe()
        return description


class ChainSpace(ScenarioSpace):
    """Concatenation of spaces: ids run through the children in order.

    Useful to combine a deterministic grid with a random exploration tail
    in one sweep (one shard store, one manifest, one id namespace).  The
    published params gain a ``"sub_space"`` entry naming the child index.
    """

    def __init__(self, spaces: Sequence[ScenarioSpace]) -> None:
        self.spaces: List[ScenarioSpace] = list(spaces)
        if not self.spaces:
            raise ValueError("a chain space needs at least one child space")
        self._offsets: List[int] = []
        total = 0
        for space in self.spaces:
            self._offsets.append(total)
            total += len(space)
        self._count = total

    def __repr__(self) -> str:
        """Debug form showing the child count and total size."""
        return f"ChainSpace({len(self.spaces)} spaces, {self._count} scenarios)"

    def __len__(self) -> int:
        """Sum of the child space sizes."""
        return self._count

    def _locate(self, index: int) -> Tuple[int, int]:
        """Map a global index to ``(child position, local index)``."""
        self._check_index(index)
        # Linear scan: chains are a handful of children, not thousands.
        for position in range(len(self.spaces) - 1, -1, -1):
            if index >= self._offsets[position]:
                return position, index - self._offsets[position]
        raise IndexError(index)  # pragma: no cover - _check_index guards

    def build(self, index: int) -> Tuple[Dict[str, Any], Scenario]:
        """Delegate to the owning child, tagging the params with it."""
        position, local = self._locate(index)
        params, scenario = self.spaces[position].build(local)
        tagged = {"sub_space": position}
        tagged.update(params)
        return tagged, scenario

    def describe(self) -> Dict[str, Any]:
        """The children's descriptions, in order."""
        return {
            "kind": "ChainSpace",
            "spaces": [space.describe() for space in self.spaces],
        }


class StimulusBuilder:
    """Randomised periodic-stimulus builder for a translated system model.

    The :class:`RandomSpace` counterpart of
    :func:`repro.casestudies.generator.scenario_sweep`: base processor ticks
    stay always present, every other input gets a random periodic stimulus
    (period drawn from *period_range*, phase within the period).  Scenarios
    are unbounded (``length=None``) so the sweep supplies the horizon at
    simulate time.  Top-level class, so spaces built from it are picklable.
    """

    def __init__(
        self,
        tick_inputs: Sequence[str],
        stimulus_inputs: Sequence[str],
        period_range: Sequence[int] = (2, 12),
    ) -> None:
        self.tick_inputs = tuple(tick_inputs)
        self.stimulus_inputs = tuple(stimulus_inputs)
        self.period_range = (int(period_range[0]), int(period_range[-1]))

    def __call__(self, rng: random.Random) -> Tuple[Dict[str, Any], Scenario]:
        """Draw one stimulus scenario from *rng*."""
        scenario = Scenario(None)
        for name in self.tick_inputs:
            scenario.set_always(name)
        low, high = self.period_range
        params: Dict[str, Any] = {}
        for name in self.stimulus_inputs:
            period = rng.randint(low, high)
            phase = rng.randrange(period)
            scenario.set_periodic(name, period, phase=phase)
            params[f"period_{name}"] = period
            params[f"phase_{name}"] = phase
        return params, scenario

    def describe(self) -> Dict[str, Any]:
        """Structural shape (inputs and period range) for fingerprinting."""
        return {
            "tick_inputs": list(self.tick_inputs),
            "stimulus_inputs": list(self.stimulus_inputs),
            "period_range": list(self.period_range),
        }


def stimulus_space(
    process: Any,
    count: int,
    seed: int = 0,
    period_range: Sequence[int] = (2, 12),
) -> RandomSpace:
    """A :class:`RandomSpace` of randomised stimuli for *process*.

    Mirrors the CLI ``--batch`` sweep (and
    :func:`repro.casestudies.generator.scenario_sweep`) as a proper
    scenario space: inputs named ``tick``/``*_tick`` are driven always-on,
    every other input gets a seeded random periodic stimulus.  This is what
    ``repro sweep run`` enumerates.
    """
    ticks: List[str] = []
    stimuli: List[str] = []
    for decl in process.inputs():
        if decl.name == "tick" or decl.name.endswith("_tick"):
            ticks.append(decl.name)
        else:
            stimuli.append(decl.name)
    return RandomSpace(count, StimulusBuilder(ticks, stimuli, period_range), seed=seed)


__all__ = [
    "BuiltScenario",
    "ChainSpace",
    "GridSpace",
    "RandomSpace",
    "ScenarioSpace",
    "StimulusBuilder",
    "stimulus_space",
]
