"""The sweep manifest: durable bookkeeping of a partitioned sweep.

A sweep directory is described by one ``manifest.json`` holding everything
a resumed run (or a post-hoc query) needs without re-simulating anything:

* the **space identity** — the space's ``describe()`` dictionary and its
  structural :meth:`~repro.sweep.spaces.ScenarioSpace.fingerprint`, which
  resume validates so a manifest can never silently continue a *different*
  sweep;
* the **run configuration** that shapes results (partition size, shard
  format, record list, horizon, watched delta signals, backend);
* the **completed partitions** — per partition the scenario range, the
  shard file of each table and its row count.  A partition enters the
  manifest only *after* its shard files are atomically renamed into place,
  so every listed file is complete and every unlisted file is an orphan of
  a crash (resume quarantines those);
* the **running sweep-level aggregate** — the merged
  :class:`~repro.sig.sinks.TraceStatistics` of every completed scenario
  (warning/fault/error *counts*, not lists, so the manifest stays O(signals)
  however large the sweep).

The manifest itself is written atomically (temp file + ``os.replace``), so
a crash between partitions leaves the previous consistent manifest — at
worst the partition that was in flight re-executes on resume, which is safe
because scenario spaces are pure functions of the index.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from ..sig.sinks import SignalStatistics, TraceStatistics
from .shards import parse_shard_name, unwrap_value, wrap_value

#: File name of the manifest inside a sweep directory.
MANIFEST_NAME = "manifest.json"

#: Subdirectory orphaned (crash-torn) shard files are moved into on resume.
QUARANTINE_DIR = "quarantine"

#: Manifest schema version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1


def manifest_path(directory: str) -> str:
    """The manifest file path of a sweep directory."""
    return os.path.join(directory, MANIFEST_NAME)


def load_manifest(directory: str) -> Optional[Dict[str, Any]]:
    """Load a sweep directory's manifest (``None`` when absent)."""
    path = manifest_path(directory)
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise RuntimeError(
            f"sweep manifest {path} has version {version!r}; this build "
            f"reads version {MANIFEST_VERSION}"
        )
    return manifest


def write_manifest(directory: str, manifest: Dict[str, Any]) -> None:
    """Atomically write a sweep manifest (temp file + rename).

    The manifest is the commit point of a partition: readers and resumed
    runs either see the previous consistent manifest or the new one, never
    a torn file.
    """
    path = manifest_path(directory)
    descriptor, temp_path = tempfile.mkstemp(prefix=".tmp-manifest-", dir=directory)
    try:
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True, default=repr)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def listed_files(manifest: Dict[str, Any]) -> List[str]:
    """Every shard file name the manifest's completed partitions claim."""
    names: List[str] = []
    for entry in manifest.get("partitions", {}).values():
        names.extend(entry.get("files", {}).values())
    return names


def quarantine_orphans(directory: str, manifest: Dict[str, Any]) -> List[str]:
    """Move crash-torn files aside before a resumed run re-executes.

    Two kinds of debris can survive a crash: shard files that were renamed
    into place but whose partition never reached the manifest (the crash
    hit between flush and commit), and abandoned ``.tmp-*`` temporaries.
    Listed shards are untouchable; orphaned shards move into
    ``quarantine/`` (kept for post-mortems rather than deleted) and
    temporaries are removed.  Returns the quarantined file names.
    """
    listed = set(listed_files(manifest))
    quarantined: List[str] = []
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if not os.path.isfile(path):
            continue
        if name.startswith(".tmp-"):
            os.unlink(path)
            continue
        if parse_shard_name(name) is None or name in listed:
            continue
        target_dir = os.path.join(directory, QUARANTINE_DIR)
        os.makedirs(target_dir, exist_ok=True)
        os.replace(path, os.path.join(target_dir, name))
        quarantined.append(name)
    return quarantined


def serialize_aggregate(statistics: Optional[TraceStatistics]) -> Optional[Dict[str, Any]]:
    """Encode the running sweep aggregate into manifest JSON.

    Ranges use the shard layer's wrapped convention (``[v]`` / ``null``) so
    a present ``None``-like bound survives; warning *counts* ride in the
    parent manifest, not here (the aggregate's warning list is kept empty
    by the executor to hold memory flat).
    """
    if statistics is None:
        return None
    per_signal: Dict[str, Any] = {}
    for name in statistics.signals():
        entry = statistics.per_signal[name]
        per_signal[name] = {
            "present": entry.present,
            "absent": entry.absent,
            "first_instant": entry.first_instant,
            "last_instant": entry.last_instant,
            "minimum": wrap_value(entry.minimum),
            "maximum": wrap_value(entry.maximum),
            "range_dropped": entry.range_dropped,
        }
    return {
        "process_name": statistics.process_name,
        "length": statistics.length,
        "per_signal": per_signal,
    }


def deserialize_aggregate(payload: Optional[Dict[str, Any]]) -> Optional[TraceStatistics]:
    """Invert :func:`serialize_aggregate` back into live statistics."""
    if payload is None:
        return None
    per_signal: Dict[str, SignalStatistics] = {}
    for name, entry in payload.get("per_signal", {}).items():
        per_signal[name] = SignalStatistics(
            name=name,
            present=entry["present"],
            absent=entry["absent"],
            minimum=unwrap_value(entry["minimum"]),
            maximum=unwrap_value(entry["maximum"]),
            first_instant=entry["first_instant"],
            last_instant=entry["last_instant"],
            range_dropped=entry["range_dropped"],
        )
    return TraceStatistics(
        process_name=payload["process_name"],
        length=payload["length"],
        per_signal=per_signal,
    )


__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "QUARANTINE_DIR",
    "deserialize_aggregate",
    "listed_files",
    "load_manifest",
    "manifest_path",
    "quarantine_orphans",
    "serialize_aggregate",
    "write_manifest",
]
