"""The partitioned sweep executor: fleet-scale runs at flat memory.

:func:`run_sweep` turns a lazy :class:`~repro.sweep.spaces.ScenarioSpace`
into a shard store on disk without ever holding more than one *partition*
of the sweep in memory:

1. the backend is prepared **once** (``create_backend``) and reused across
   every partition via ``simulate_batch(runner=...)`` — the same warm path
   the serving layer uses, so a 100-partition sweep pays one compile;
2. the space is sliced into bounded partitions; each partition builds its
   scenarios lazily (:meth:`~repro.sweep.spaces.ScenarioSpace.batch` is the
   only place more than one scenario object exists), runs them through
   ``simulate_batch`` in **streaming mode** — every scenario drives a fresh
   :class:`~repro.sig.sinks.StatisticsSink` (plus a
   :class:`~repro.sig.sinks.DeltaSink` when ``deltas=`` watches signals)
   and no trace is ever materialised, in any process;
3. the partition's rows are flushed as columnar shards
   (:class:`~repro.sweep.shards.ShardWriter`, atomic rename), the running
   sweep aggregate absorbs the partition's statistics via the documented
   :meth:`~repro.sig.sinks.TraceStatistics.merge`, and the manifest is
   atomically rewritten — the partition's *commit point*;
4. the partition's results are dropped.  Peak memory is
   O(partition_size + signals), flat in the number of scenarios — the E20
   gate measures exactly this.

Supervision is PR 7's, unchanged: any knob (``timeout=``, ``retries=``,
``scenario_budget=``, ``fault_plan=``...) routes each partition through the
supervised executor; unrecoverable scenarios surface as
:class:`~repro.sig.engine.supervisor.ScenarioFault` rows in the
``scenarios`` table — **re-keyed to the global scenario id** (supervisor
faults are batch-local) — and survivors are unaffected.  A caller-supplied
``fault_plan`` is applied per partition, with its batch-local indices.

Interrupted sweeps resume: ``run_sweep(..., resume=True)`` validates the
space fingerprint against the manifest, quarantines crash-torn shard files
the manifest does not list, and re-executes only the missing partitions —
byte-identical to an uninterrupted run, because spaces are pure functions
of the scenario index.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from ..sig.engine.backends import DEFAULT_BACKEND, create_backend
from ..sig.engine.batch import simulate_batch
from ..sig.process import ProcessModel
from ..sig.sinks import DeltaSink, StatisticsSink, TraceStatistics
from .manifest import (
    MANIFEST_VERSION,
    deserialize_aggregate,
    load_manifest,
    quarantine_orphans,
    serialize_aggregate,
    write_manifest,
)
from .shards import (
    ShardWriter,
    delta_rows,
    resolve_shard_format,
    scenario_row,
    statistics_rows,
)
from .spaces import ScenarioSpace

#: Progress callback: called with an event name (``"partition-start"``,
#: ``"partition-flushed"``, ``"partition-complete"``) and the partition
#: index.  ``partition-flushed`` fires after the partition's shard files
#: are renamed into place but *before* the manifest commits them — the
#: window a crash leaves orphans in, which the resume tests exploit.
ProgressCallback = Callable[[str, int], None]


class _SweepSinks:
    """Picklable per-scenario sink factory of a sweep partition.

    A top-level class (not a closure) so ``workers > 1`` can pickle it to
    worker processes: every scenario gets a fresh ``StatisticsSink``, plus
    a ``DeltaSink`` over the watched signals when the sweep records deltas.
    """

    def __init__(self, deltas: Optional[Tuple[str, ...]]) -> None:
        self.deltas = deltas

    def __call__(self, index: int) -> Any:
        if self.deltas is None:
            return StatisticsSink()
        return [StatisticsSink(), DeltaSink(self.deltas)]


@dataclass
class SweepResult:
    """Outcome of one :func:`run_sweep` call (fresh or resumed).

    Detailed per-scenario results live in the shard store
    (:meth:`store` opens it); this object carries the run-level outcome:
    cumulative counts from the manifest plus the faults/errors of the
    partitions *this call* executed (with global scenario ids).
    """

    #: The sweep directory (shards + manifest).
    directory: str
    #: Resolved shard format (``"parquet"`` or ``"jsonl"``).
    shard_format: str
    #: Total scenarios of the space.
    count: int
    #: Scenarios per partition.
    partition_size: int
    #: Total number of partitions.
    partitions: int
    #: Partition indices executed by this call, in execution order.
    executed: List[int] = field(default_factory=list)
    #: Partitions already complete in the manifest when this call started.
    skipped: int = 0
    #: Shard files quarantined before resuming (crash debris).
    quarantined: List[str] = field(default_factory=list)
    #: Unrecoverable scenarios of the partitions this call executed, as
    #: :class:`~repro.sig.engine.supervisor.ScenarioFault` entries re-keyed
    #: to global scenario ids.
    faults: List[Any] = field(default_factory=list)
    #: Deterministic model errors of the partitions this call executed,
    #: as ``(global scenario id, SimulationError)`` pairs.
    errors: List[Tuple[int, Any]] = field(default_factory=list)
    #: Cumulative counts over the whole sweep (including resumed history).
    fault_count: int = 0
    error_count: int = 0
    warning_count: int = 0
    #: The sweep-level merged statistics (``None`` for an empty sweep).
    aggregate: Optional[TraceStatistics] = None
    #: Seconds spent preparing the backend (once) / executing partitions.
    compile_seconds: float = 0.0
    run_seconds: float = 0.0
    #: ``True`` when every partition of the space is in the manifest.
    complete: bool = True

    def __len__(self) -> int:
        return self.count

    @property
    def ok(self) -> bool:
        """``True`` when the sweep is complete with no faults or errors."""
        return self.complete and not self.fault_count and not self.error_count

    def store(self) -> "Any":
        """Open the sweep's shard store for post-hoc queries."""
        from .store import SweepResultStore

        return SweepResultStore(self.directory)

    def summary(self) -> str:
        """One paragraph of sweep outcome."""
        resumed = f", {self.skipped} resumed" if self.skipped else ""
        quarantine = (
            f", {len(self.quarantined)} shard(s) quarantined" if self.quarantined else ""
        )
        state = "complete" if self.complete else "incomplete"
        lines = [
            f"sweep of {self.count} scenario(s) in {self.partitions} "
            f"partition(s) of {self.partition_size} ({self.shard_format} shards, "
            f"{state}): {len(self.executed)} partition(s) executed{resumed}"
            f"{quarantine}, {self.error_count} error(s), {self.fault_count} "
            f"fault(s), {self.warning_count} warning(s) "
            f"(prepare {self.compile_seconds * 1000.0:.1f} ms, "
            f"run {self.run_seconds * 1000.0:.1f} ms)"
        ]
        for index, error in self.errors:
            lines.append(f"  scenario {index}: {type(error).__name__}: {error}")
        for fault in self.faults:
            lines.append(f"  {fault.summary()}")
        return "\n".join(lines)


def _base_manifest(
    process_name: str,
    space: ScenarioSpace,
    *,
    count: int,
    partition_size: int,
    shard_format: str,
    record: Optional[List[str]],
    length: Optional[int],
    deltas: Optional[Tuple[str, ...]],
    backend: str,
) -> Dict[str, Any]:
    """The manifest of a fresh sweep, before any partition completes."""
    return {
        "version": MANIFEST_VERSION,
        "process": process_name,
        "space": space.describe(),
        "space_fingerprint": space.fingerprint(),
        "count": count,
        "partition_size": partition_size,
        "shard_format": shard_format,
        "record": record,
        "length": length,
        "deltas": list(deltas) if deltas is not None else None,
        "backend": backend,
        "partitions": {},
        "aggregate": None,
        "fault_count": 0,
        "error_count": 0,
        "warning_count": 0,
        "complete": False,
    }


def _check_resumable(manifest: Dict[str, Any], fresh: Dict[str, Any]) -> None:
    """Refuse to resume a manifest whose identity or shape changed."""
    for key in (
        "process",
        "space_fingerprint",
        "count",
        "partition_size",
        "shard_format",
        "record",
        "length",
        "deltas",
    ):
        if manifest.get(key) != fresh[key]:
            raise RuntimeError(
                f"cannot resume sweep: manifest {key} is {manifest.get(key)!r} "
                f"but this run would use {fresh[key]!r}"
            )


def run_sweep(
    process: ProcessModel,
    space: ScenarioSpace,
    out: str,
    *,
    partition_size: int = 1024,
    record: Optional[Iterable[str]] = None,
    strict: bool = True,
    backend: str = DEFAULT_BACKEND,
    backend_options: Optional[Mapping[str, Any]] = None,
    workers: int = 1,
    length: Optional[int] = None,
    deltas: Optional[Iterable[str]] = None,
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    backoff: Optional[float] = None,
    max_failures: Optional[int] = None,
    scenario_budget: Any = None,
    fault_plan: Any = None,
    shard_format: str = "auto",
    resume: bool = False,
    progress: Optional[ProgressCallback] = None,
) -> SweepResult:
    """Execute a scenario space partition by partition into a shard store.

    *process* is prepared once on *backend* and reused across partitions;
    *space* is any :class:`~repro.sweep.spaces.ScenarioSpace`; *out* is the
    sweep directory (created if needed) that will hold the shards and the
    manifest.  ``partition_size`` bounds both the scenarios in flight and
    the rows per shard; ``length`` overrides the scenario horizon exactly
    as in ``simulate_batch`` (required for unbounded symbolic scenarios);
    ``deltas`` adds a change-log table over the named signals; the
    supervision knobs (``timeout``/``retries``/``backoff``/``max_failures``/
    ``scenario_budget``/``fault_plan``) are PR 7's, applied per partition
    (a ``fault_plan``'s indices are batch-local to each partition), with
    faults re-keyed to global scenario ids in the ``scenarios`` table.

    ``shard_format`` is ``"auto"`` (parquet when pyarrow is importable,
    jsonl otherwise), ``"parquet"`` or ``"jsonl"``.  An existing manifest
    is refused unless ``resume=True``, in which case completed partitions
    are skipped, crash debris is quarantined, and only the missing
    partitions execute — producing the same store an uninterrupted run
    would have.  ``progress`` observes partition lifecycle events (see
    :data:`ProgressCallback`).

    Returns a :class:`SweepResult`; per-scenario detail is in the store
    (:meth:`SweepResult.store`).
    """
    if partition_size <= 0:
        raise ValueError(f"partition_size must be positive, got {partition_size}")
    record_list = list(record) if record is not None else None
    deltas_tuple = tuple(deltas) if deltas is not None else None
    fmt = resolve_shard_format(shard_format)
    count = len(space)
    total_partitions = math.ceil(count / partition_size) if count else 0

    writer = ShardWriter(out, fmt)  # creates the directory
    fresh = _base_manifest(
        process.name,
        space,
        count=count,
        partition_size=partition_size,
        shard_format=fmt,
        record=record_list,
        length=length,
        deltas=deltas_tuple,
        backend=backend,
    )
    existing = load_manifest(out)
    quarantined: List[str] = []
    if existing is not None:
        if not resume:
            raise RuntimeError(
                f"sweep directory {out!r} already holds a manifest; pass "
                f"resume=True to continue it (or choose a fresh directory)"
            )
        _check_resumable(existing, fresh)
        manifest = existing
        quarantined = quarantine_orphans(out, manifest)
    else:
        manifest = fresh
        write_manifest(out, manifest)

    aggregate = deserialize_aggregate(manifest.get("aggregate"))
    result = SweepResult(
        directory=out,
        shard_format=fmt,
        count=count,
        partition_size=partition_size,
        partitions=total_partitions,
        skipped=len(manifest["partitions"]),
        quarantined=quarantined,
        fault_count=manifest["fault_count"],
        error_count=manifest["error_count"],
        warning_count=manifest["warning_count"],
    )

    pending = [
        index
        for index in range(total_partitions)
        if str(index) not in manifest["partitions"]
    ]
    runner = None
    started = time.perf_counter()
    if pending:
        runner = create_backend(
            process, backend=backend, strict=strict, **dict(backend_options or {})
        )
    result.compile_seconds = time.perf_counter() - started
    factory = _SweepSinks(deltas_tuple)
    run_started = time.perf_counter()

    for index in pending:
        if progress is not None:
            progress("partition-start", index)
        start = index * partition_size
        stop = min(start + partition_size, count)
        built = [space.build(i) for i in range(start, stop)]
        scenarios = [scenario for _, scenario in built]
        batch = simulate_batch(
            process,
            scenarios,
            record=record_list,
            collect_errors=True,
            workers=workers,
            sink_factory=factory,
            length=length,
            timeout=timeout,
            retries=retries,
            backoff=backoff,
            max_failures=max_failures,
            scenario_budget=scenario_budget,
            fault_plan=fault_plan,
            runner=runner,
        )
        errors = {local: error for local, error in batch.errors}
        faults = {fault.scenario: fault for fault in batch.faults}

        scenario_table: List[Dict[str, Any]] = []
        statistics_table: List[Dict[str, Any]] = []
        deltas_table: List[Dict[str, Any]] = []
        partition_warnings = 0
        for local in range(stop - start):
            scenario_id = start + local
            params = built[local][0]
            payload = batch.sink_results[local]
            if local in faults:
                fault = faults[local]
                result.faults.append(
                    dataclasses.replace(fault, scenario=scenario_id)
                )
                scenario_table.append(
                    scenario_row(
                        scenario_id,
                        "fault",
                        params,
                        kind=fault.kind,
                        detail=fault.message,
                        attempts=fault.attempts,
                    )
                )
                continue
            if local in errors:
                error = errors[local]
                result.errors.append((scenario_id, error))
                scenario_table.append(
                    scenario_row(
                        scenario_id,
                        "error",
                        params,
                        kind=type(error).__name__,
                        detail=str(error),
                    )
                )
                continue
            if deltas_tuple is None:
                stats, delta_log = payload, None
            else:
                stats, delta_log = payload
            warnings = len(stats.warnings)
            partition_warnings += warnings
            scenario_table.append(
                scenario_row(scenario_id, "ok", params, warnings=warnings)
            )
            statistics_table.extend(statistics_rows(scenario_id, stats))
            if delta_log is not None:
                deltas_table.extend(delta_rows(scenario_id, delta_log))
            # Warning *lists* never reach the aggregate (memory must stay
            # flat in the scenario count); the count is in the manifest.
            stats.warnings = []
            if aggregate is None:
                aggregate = TraceStatistics(
                    process_name=stats.process_name, length=0
                )
            aggregate.merge(stats)

        files = {
            "scenarios": writer.write("scenarios", index, scenario_table),
            "statistics": writer.write("statistics", index, statistics_table),
        }
        rows = {
            "scenarios": len(scenario_table),
            "statistics": len(statistics_table),
        }
        if deltas_tuple is not None:
            files["deltas"] = writer.write("deltas", index, deltas_table)
            rows["deltas"] = len(deltas_table)
        if progress is not None:
            progress("partition-flushed", index)

        manifest["partitions"][str(index)] = {
            "start": start,
            "stop": stop,
            "files": files,
            "rows": rows,
        }
        manifest["fault_count"] += len(batch.faults)
        manifest["error_count"] += len(batch.errors)
        manifest["warning_count"] += partition_warnings
        manifest["aggregate"] = serialize_aggregate(aggregate)
        manifest["complete"] = len(manifest["partitions"]) == total_partitions
        write_manifest(out, manifest)
        result.executed.append(index)
        result.fault_count = manifest["fault_count"]
        result.error_count = manifest["error_count"]
        result.warning_count = manifest["warning_count"]
        if progress is not None:
            progress("partition-complete", index)

    if not manifest["complete"] and len(manifest["partitions"]) == total_partitions:
        manifest["complete"] = True
        write_manifest(out, manifest)
    result.run_seconds = time.perf_counter() - run_started
    result.aggregate = aggregate
    result.complete = manifest["complete"]
    return result


__all__ = [
    "ProgressCallback",
    "SweepResult",
    "run_sweep",
]
