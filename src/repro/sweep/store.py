"""Post-hoc queries over a sweep's shard store — out-of-core, both formats.

:class:`SweepResultStore` opens a sweep directory written by
:func:`~repro.sweep.executor.run_sweep` and scans its shards **one at a
time**: a query's resident set is bounded by one partition whatever the
sweep size.  On parquet shards the column projection and the
plain-column predicates are pushed into the scan
(``pyarrow.parquet.read_table(columns=..., filters=...)``); on the jsonl
fallback each shard streams line by line with the same predicates
evaluated in Python — both paths yield identical decoded rows, which the
format-parity tests (and the no-arrow CI job) enforce.

Queries speak the small predicate language of
:func:`~repro.sweep.shards.normalize_where`: ``where={"signal": "alarm"}``
for equality, or ``where=[("present", ">", 0), ("scenario_id", "<", 100)]``
for comparisons; ``columns=`` projects the yielded rows.  Convenience
wrappers cover the common questions (:meth:`faults`, :meth:`scenario`,
:meth:`signal_statistics`), and :meth:`aggregate` returns the sweep-level
:class:`~repro.sig.sinks.TraceStatistics` the executor merged while
running — no shard is re-read to answer it.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from ..sig.sinks import TraceStatistics
from .manifest import deserialize_aggregate, load_manifest
from .shards import Predicate, TABLES, iter_shard_rows, normalize_where


class SweepResultStore:
    """Read-only view over one sweep directory (shards + manifest)."""

    def __init__(self, directory: str) -> None:
        manifest = load_manifest(directory)
        if manifest is None:
            raise FileNotFoundError(
                f"{directory!r} holds no sweep manifest; was it written by "
                f"run_sweep?"
            )
        self.directory = directory
        #: The raw manifest dictionary (see :mod:`repro.sweep.manifest`).
        self.manifest = manifest

    # -- manifest accessors ------------------------------------------------
    @property
    def shard_format(self) -> str:
        """The store's shard format (``"parquet"`` or ``"jsonl"``)."""
        return self.manifest["shard_format"]

    @property
    def count(self) -> int:
        """Total scenarios of the sweep's space."""
        return self.manifest["count"]

    @property
    def complete(self) -> bool:
        """``True`` when every partition reached the manifest."""
        return self.manifest["complete"]

    def partitions(self) -> List[int]:
        """The completed partition indices, ascending."""
        return sorted(int(key) for key in self.manifest["partitions"])

    def aggregate(self) -> Optional[TraceStatistics]:
        """The sweep-level merged statistics (no shard reads)."""
        return deserialize_aggregate(self.manifest.get("aggregate"))

    # -- queries -----------------------------------------------------------
    def query(
        self,
        table: str,
        columns: Optional[Sequence[str]] = None,
        where: Union[None, Mapping[str, Any], Sequence[Predicate]] = None,
        limit: Optional[int] = None,
    ) -> Iterator[Dict[str, Any]]:
        """Stream the matching rows of one table across every shard.

        Rows arrive in (partition, row) order — i.e. ascending scenario id
        — decoded to exact Python values; *columns* projects them, *where*
        filters them (pushed into the parquet scan where possible) and
        *limit* stops the scan early.  Memory is bounded by one shard.
        """
        if table not in TABLES:
            raise ValueError(f"unknown table {table!r}; expected one of {TABLES}")
        predicates = normalize_where(where)
        yielded = 0
        for partition in self.partitions():
            entry = self.manifest["partitions"][str(partition)]
            name = entry["files"].get(table)
            if name is None:  # e.g. a sweep that watched no deltas
                continue
            path = os.path.join(self.directory, name)
            for row in iter_shard_rows(
                path, table, self.shard_format, columns=columns, predicates=predicates
            ):
                yield row
                yielded += 1
                if limit is not None and yielded >= limit:
                    return

    def rows(self, table: str) -> int:
        """Total rows of one table, from the manifest (no shard reads)."""
        if table not in TABLES:
            raise ValueError(f"unknown table {table!r}; expected one of {TABLES}")
        return sum(
            entry["rows"].get(table, 0)
            for entry in self.manifest["partitions"].values()
        )

    # -- conveniences ------------------------------------------------------
    def scenario(self, scenario_id: int) -> Optional[Dict[str, Any]]:
        """The ``scenarios`` row of one scenario (``None`` if not stored)."""
        for row in self.query(
            "scenarios", where={"scenario_id": scenario_id}, limit=1
        ):
            return row
        return None

    def faults(self) -> List[Dict[str, Any]]:
        """Every scenario the sweep recorded as faulted or errored."""
        return list(
            self.query("scenarios", where=[("status", "in", ("fault", "error"))])
        )

    def signal_statistics(
        self, signal: str, columns: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, Any]]:
        """The per-scenario ``statistics`` rows of one signal."""
        return self.query("statistics", columns=columns, where={"signal": signal})


__all__ = ["SweepResultStore"]
