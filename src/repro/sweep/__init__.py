"""Fleet-scale scenario sweeps: out-of-core execution, columnar results.

Symbolic scenarios (PR 5) made a million scenarios a few kilobytes to
*describe* and the supervised engine (PRs 2/7) made each one cheap to
*run*; this package removes the last scale wall — results.  Instead of one
in-memory list of traces, a sweep flows through three layers:

* :mod:`repro.sweep.spaces` — lazy **scenario spaces**
  (:class:`GridSpace` cartesian grids, :class:`RandomSpace` seeded
  samplers, :class:`ChainSpace` concatenation) that build any scenario
  from its integer index on demand, never holding the space in memory;
* :mod:`repro.sweep.executor` — :func:`run_sweep` slices a space into
  bounded partitions, drives each through ``simulate_batch`` (backend
  prepared once, full PR 7 supervision, streaming sinks only) and flushes
  per-partition **columnar shards** plus an atomically-committed manifest:
  peak memory is flat in the scenario count (the E20 gate), and an
  interrupted sweep resumes from the manifest with crash debris
  quarantined;
* :mod:`repro.sweep.store` — :class:`SweepResultStore` queries the shards
  out-of-core (column projection + predicate pushdown on parquet shards,
  streaming readers on the pure-stdlib jsonl fallback) and serves the
  sweep-level merged statistics straight from the manifest.

pyarrow is a **soft dependency** (the ``sweep`` extra): importing this
package, running sweeps and querying stores all work without it, on the
jsonl shard format; with it, shards are parquet.  The CLI front end is
``repro sweep`` (run / query / info).
"""

from .executor import ProgressCallback, SweepResult, run_sweep
from .shards import (
    PYARROW_FALLBACK_MESSAGE,
    SHARD_FORMATS,
    ShardWriter,
    pyarrow_available,
    resolve_shard_format,
)
from .spaces import (
    ChainSpace,
    GridSpace,
    RandomSpace,
    ScenarioSpace,
    StimulusBuilder,
    stimulus_space,
)
from .store import SweepResultStore

__all__ = [
    "ChainSpace",
    "GridSpace",
    "PYARROW_FALLBACK_MESSAGE",
    "ProgressCallback",
    "RandomSpace",
    "SHARD_FORMATS",
    "ScenarioSpace",
    "ShardWriter",
    "StimulusBuilder",
    "SweepResult",
    "SweepResultStore",
    "pyarrow_available",
    "resolve_shard_format",
    "run_sweep",
    "stimulus_space",
]
