"""AADL unparser.

Renders a declarative :class:`~repro.aadl.model.AadlModel` back to textual
AADL.  Used by the tests for round-trip checks (parse → print → parse must be
stable) and by the case-study generator to emit the synthetic models of the
scalability experiment as real AADL text.
"""

from __future__ import annotations

from typing import List

from .model import (
    AadlModel,
    AadlPackage,
    BusAccess,
    ComponentImplementation,
    ComponentType,
    Connection,
    ConnectionKind,
    DataAccess,
    Feature,
    Parameter,
    Port,
    SubprogramAccess,
)
from .properties import PropertyAssociation, PropertyMap


_INDENT = "  "


def _render_properties(properties: PropertyMap, depth: int) -> List[str]:
    pad = _INDENT * depth
    return [f"{pad}{association}" for association in properties]


def _render_feature(feature: Feature, depth: int) -> str:
    pad = _INDENT * depth
    if isinstance(feature, Port):
        classifier = f" {feature.classifier}" if feature.classifier else ""
        line = f"{pad}{feature.name}: {feature.direction.value} {feature.kind.value} port{classifier}"
    elif isinstance(feature, DataAccess):
        classifier = f" {feature.classifier}" if feature.classifier else ""
        line = f"{pad}{feature.name}: {feature.access.value} data access{classifier}"
    elif isinstance(feature, SubprogramAccess):
        classifier = f" {feature.classifier}" if feature.classifier else ""
        line = f"{pad}{feature.name}: {feature.access.value} subprogram access{classifier}"
    elif isinstance(feature, BusAccess):
        classifier = f" {feature.classifier}" if feature.classifier else ""
        line = f"{pad}{feature.name}: {feature.access.value} bus access{classifier}"
    elif isinstance(feature, Parameter):
        classifier = f" {feature.classifier}" if feature.classifier else ""
        line = f"{pad}{feature.name}: {feature.direction.value} parameter{classifier}"
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported feature {type(feature).__name__}")
    if len(feature.properties):
        inner = " ".join(str(a) for a in feature.properties)
        line += f" {{{inner}}}"
    return line + ";"


def _render_connection(connection: Connection, depth: int) -> str:
    pad = _INDENT * depth
    kind = {
        ConnectionKind.PORT: "port",
        ConnectionKind.DATA_ACCESS: "data access",
        ConnectionKind.SUBPROGRAM_ACCESS: "subprogram access",
        ConnectionKind.BUS_ACCESS: "bus access",
        ConnectionKind.PARAMETER: "parameter",
        ConnectionKind.FEATURE: "feature",
    }[connection.kind]
    arrow = "<->" if connection.bidirectional else "->"
    line = f"{pad}{connection.name}: {kind} {connection.source} {arrow} {connection.destination}"
    if len(connection.properties):
        inner = " ".join(str(a) for a in connection.properties)
        line += f" {{{inner}}}"
    return line + ";"


def render_component_type(component: ComponentType, depth: int = 1) -> str:
    pad = _INDENT * depth
    lines = [f"{pad}{component.category.value} {component.name}"
             + (f" extends {component.extends}" if component.extends else "")]
    if component.features:
        lines.append(f"{pad}features")
        for feature in component.features.values():
            lines.append(_render_feature(feature, depth + 1))
    if len(component.properties):
        lines.append(f"{pad}properties")
        lines.extend(_render_properties(component.properties, depth + 1))
    lines.append(f"{pad}end {component.name};")
    return "\n".join(lines)


def render_component_implementation(implementation: ComponentImplementation, depth: int = 1) -> str:
    pad = _INDENT * depth
    lines = [f"{pad}{implementation.category.value} implementation {implementation.name}"
             + (f" extends {implementation.extends}" if implementation.extends else "")]
    if implementation.subcomponents:
        lines.append(f"{pad}subcomponents")
        for subcomponent in implementation.subcomponents.values():
            classifier = f" {subcomponent.classifier}" if subcomponent.classifier else ""
            line = f"{_INDENT * (depth + 1)}{subcomponent.name}: {subcomponent.category.value}{classifier}"
            if len(subcomponent.properties):
                inner = " ".join(str(a) for a in subcomponent.properties)
                line += f" {{{inner}}}"
            lines.append(line + ";")
    if implementation.connections:
        lines.append(f"{pad}connections")
        for connection in implementation.connections:
            lines.append(_render_connection(connection, depth + 1))
    if implementation.modes:
        lines.append(f"{pad}modes")
        for mode in implementation.modes.values():
            keyword = "initial mode" if mode.initial else "mode"
            lines.append(f"{_INDENT * (depth + 1)}{mode.name}: {keyword};")
        for transition in implementation.mode_transitions:
            triggers = ", ".join(transition.triggers)
            prefix = f"{transition.name}: " if transition.name else ""
            line = f"{_INDENT * (depth + 1)}{prefix}{transition.source} -[ {triggers} ]-> {transition.destination}"
            if len(transition.properties):
                inner = " ".join(str(a) for a in transition.properties)
                line += f" {{{inner}}}"
            lines.append(line + ";")
    if len(implementation.properties):
        lines.append(f"{pad}properties")
        lines.extend(_render_properties(implementation.properties, depth + 1))
    lines.append(f"{pad}end {implementation.name};")
    return "\n".join(lines)


def render_package(package: AadlPackage) -> str:
    lines = [f"package {package.name}", "public"]
    for imported in package.imports:
        lines.append(f"{_INDENT}with {imported};")
    for component_type in package.types.values():
        lines.append(render_component_type(component_type))
        lines.append("")
    for implementation in package.implementations.values():
        lines.append(render_component_implementation(implementation))
        lines.append("")
    lines.append(f"end {package.name};")
    return "\n".join(lines)


def render_model(model: AadlModel) -> str:
    """Render a whole declarative model as AADL source text."""
    parts = [render_package(package) for package in model.packages.values()]
    return "\n\n".join(parts) + "\n"
