"""AADL instance model.

The declarative model (packages, types, implementations) describes *families*
of components; analyses and the SIGNAL translation work on the **instance
model** obtained by recursively instantiating a root system implementation:
every subcomponent becomes a :class:`ComponentInstance`, features become
:class:`FeatureInstance`, connections are resolved to pairs of feature
instances, and property associations are resolved along the component
hierarchy (including ``applies to`` associations declared by ancestors, such
as ``Actual_Processor_Binding``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .errors import AadlInstantiationError
from .model import (
    AadlModel,
    AccessKind,
    ComponentCategory,
    ComponentImplementation,
    ComponentType,
    Connection,
    ConnectionEnd,
    ConnectionKind,
    DataAccess,
    Feature,
    Mode,
    ModeTransition,
    Port,
    PortDirection,
    Subcomponent,
)
from .properties import (
    ACTUAL_PROCESSOR_BINDING,
    DEADLINE,
    DISPATCH_PROTOCOL,
    PERIOD,
    PropertyAssociation,
    PropertyMap,
    ReferenceValue,
    ListValue,
    parse_time_value,
)


@dataclass
class FeatureInstance:
    """A feature of a component instance."""

    name: str
    declaration: Feature
    owner: "ComponentInstance"

    @property
    def qualified_name(self) -> str:
        return f"{self.owner.qualified_name}.{self.name}"

    @property
    def is_port(self) -> bool:
        return isinstance(self.declaration, Port)

    @property
    def is_data_access(self) -> bool:
        return isinstance(self.declaration, DataAccess)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FeatureInstance({self.qualified_name})"


@dataclass
class ConnectionInstance:
    """A connection resolved to source / destination feature instances."""

    name: str
    kind: ConnectionKind
    source: FeatureInstance
    destination: FeatureInstance
    declaration: Connection
    owner: "ComponentInstance"

    @property
    def timing(self) -> str:
        return self.declaration.timing

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ConnectionInstance({self.source.qualified_name} -> {self.destination.qualified_name})"


class ComponentInstance:
    """A node of the instance tree."""

    def __init__(
        self,
        name: str,
        category: ComponentCategory,
        classifier: Optional[str],
        component_type: Optional[ComponentType],
        implementation: Optional[ComponentImplementation],
        parent: Optional["ComponentInstance"] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.classifier = classifier
        self.component_type = component_type
        self.implementation = implementation
        self.parent = parent
        self.properties = PropertyMap()
        self.subcomponents: Dict[str, ComponentInstance] = {}
        self.features: Dict[str, FeatureInstance] = {}
        self.connections: List[ConnectionInstance] = []
        self.modes: Dict[str, Mode] = {}
        self.mode_transitions: List[ModeTransition] = []

    # ------------------------------------------------------------------
    @property
    def qualified_name(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.qualified_name}.{self.name}"

    @property
    def path(self) -> Tuple[str, ...]:
        if self.parent is None:
            return (self.name,)
        return self.parent.path + (self.name,)

    def root(self) -> "ComponentInstance":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    # -- traversal ------------------------------------------------------
    def all_instances(self) -> List["ComponentInstance"]:
        out = [self]
        for child in self.subcomponents.values():
            out.extend(child.all_instances())
        return out

    def instances_of(self, category: ComponentCategory) -> List["ComponentInstance"]:
        return [inst for inst in self.all_instances() if inst.category is category]

    def threads(self) -> List["ComponentInstance"]:
        return self.instances_of(ComponentCategory.THREAD)

    def processes(self) -> List["ComponentInstance"]:
        return self.instances_of(ComponentCategory.PROCESS)

    def systems(self) -> List["ComponentInstance"]:
        return self.instances_of(ComponentCategory.SYSTEM)

    def processors(self) -> List["ComponentInstance"]:
        return self.instances_of(ComponentCategory.PROCESSOR) + self.instances_of(
            ComponentCategory.VIRTUAL_PROCESSOR
        )

    def data_components(self) -> List["ComponentInstance"]:
        return self.instances_of(ComponentCategory.DATA)

    def devices(self) -> List["ComponentInstance"]:
        return self.instances_of(ComponentCategory.DEVICE)

    def all_connections(self) -> List[ConnectionInstance]:
        out = list(self.connections)
        for child in self.subcomponents.values():
            out.extend(child.all_connections())
        return out

    def find(self, path: Sequence[str]) -> Optional["ComponentInstance"]:
        """Find a descendant by relative path of subcomponent names."""
        node: Optional[ComponentInstance] = self
        for part in path:
            if node is None:
                return None
            node = node.subcomponents.get(part)
        return node

    def find_feature(self, path: Sequence[str]) -> Optional[FeatureInstance]:
        """Find a feature instance by relative path (…, subcomponent, feature)."""
        if not path:
            return None
        if len(path) == 1:
            return self.features.get(path[0])
        child = self.subcomponents.get(path[0])
        if child is None:
            return None
        return child.find_feature(path[1:])

    # -- interpreted properties ------------------------------------------
    def property_value(self, name: str, default=None):
        return self.properties.value(name, default)

    def period_ms(self) -> Optional[float]:
        association = self.properties.find(PERIOD)
        if association is None:
            return None
        return parse_time_value(association.value)

    def deadline_ms(self) -> Optional[float]:
        association = self.properties.find(DEADLINE)
        if association is None:
            return self.period_ms()
        return parse_time_value(association.value)

    def dispatch_protocol(self) -> Optional[str]:
        value = self.properties.value(DISPATCH_PROTOCOL)
        return str(value) if value is not None else None

    def in_ports(self) -> List[FeatureInstance]:
        return [
            f for f in self.features.values()
            if isinstance(f.declaration, Port) and f.declaration.is_in
        ]

    def out_ports(self) -> List[FeatureInstance]:
        return [
            f for f in self.features.values()
            if isinstance(f.declaration, Port) and f.declaration.is_out
        ]

    def data_accesses(self) -> List[FeatureInstance]:
        return [f for f in self.features.values() if isinstance(f.declaration, DataAccess)]

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ComponentInstance({self.qualified_name}: {self.category.value})"


@dataclass
class InstanceReport:
    """Counts used by tests and the Fig. 1 benchmark."""

    components: int
    threads: int
    processes: int
    systems: int
    processors: int
    data: int
    ports: int
    connections: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "components": self.components,
            "threads": self.threads,
            "processes": self.processes,
            "systems": self.systems,
            "processors": self.processors,
            "data": self.data,
            "ports": self.ports,
            "connections": self.connections,
        }


class Instantiator:
    """Builds the instance tree from a declarative model."""

    def __init__(self, model: AadlModel, default_package: Optional[str] = None) -> None:
        self.model = model
        self.default_package = default_package or (next(iter(model.packages)) if model.packages else None)

    # ------------------------------------------------------------------
    def instantiate(self, root: "str | ComponentImplementation") -> ComponentInstance:
        """Instantiate *root* (an implementation or its qualified name)."""
        if isinstance(root, str):
            implementation = self.model.find_implementation(root, self.default_package)
            if implementation is None:
                raise AadlInstantiationError(f"unknown component implementation {root!r}")
        else:
            implementation = root
        component_type = self.model.type_of_implementation(implementation, self.default_package)
        instance = ComponentInstance(
            name=implementation.type_name,
            category=implementation.category,
            classifier=implementation.name,
            component_type=component_type,
            implementation=implementation,
            parent=None,
        )
        self._populate(instance)
        self._resolve_inherited_properties(instance)
        return instance

    # ------------------------------------------------------------------
    def _populate(self, instance: ComponentInstance) -> None:
        self._populate_features(instance)
        self._populate_properties(instance)
        implementation = instance.implementation
        if implementation is None:
            return
        instance.modes = dict(implementation.modes)
        instance.mode_transitions = list(implementation.mode_transitions)
        for subcomponent in implementation.subcomponents.values():
            child = self._instantiate_subcomponent(instance, subcomponent)
            instance.subcomponents[subcomponent.name] = child
        for connection in implementation.connections:
            resolved = self._resolve_connection(instance, connection)
            if resolved is not None:
                instance.connections.append(resolved)

    def _instantiate_subcomponent(
        self, parent: ComponentInstance, subcomponent: Subcomponent
    ) -> ComponentInstance:
        component_type: Optional[ComponentType] = None
        implementation: Optional[ComponentImplementation] = None
        if subcomponent.classifier:
            classifier = self.model.find_classifier(subcomponent.classifier, self.default_package)
            if classifier is None:
                raise AadlInstantiationError(
                    f"unknown classifier {subcomponent.classifier!r} for subcomponent "
                    f"{parent.qualified_name}.{subcomponent.name}",
                    subcomponent.location,
                )
            if isinstance(classifier, ComponentImplementation):
                implementation = classifier
                component_type = self.model.type_of_implementation(classifier, self.default_package)
            else:
                component_type = classifier
        child = ComponentInstance(
            name=subcomponent.name,
            category=subcomponent.category,
            classifier=subcomponent.classifier,
            component_type=component_type,
            implementation=implementation,
            parent=parent,
        )
        self._populate(child)
        # Subcomponent-level property associations override classifier ones.
        child.properties.extend(subcomponent.properties)
        return child

    def _populate_features(self, instance: ComponentInstance) -> None:
        component_type = instance.component_type
        seen: Dict[str, Feature] = {}
        # Walk the extends chain from the most general ancestor down.
        chain: List[ComponentType] = []
        while component_type is not None:
            chain.append(component_type)
            component_type = (
                self.model.find_type(component_type.extends, self.default_package)
                if component_type.extends
                else None
            )
        for ctype in reversed(chain):
            for feature in ctype.features.values():
                seen[feature.name] = feature
        for name, feature in seen.items():
            instance.features[name] = FeatureInstance(name=name, declaration=feature, owner=instance)

    def _populate_properties(self, instance: ComponentInstance) -> None:
        # Type properties first (least specific), then implementation ones.
        chain: List[PropertyMap] = []
        component_type = instance.component_type
        type_chain: List[ComponentType] = []
        while component_type is not None:
            type_chain.append(component_type)
            component_type = (
                self.model.find_type(component_type.extends, self.default_package)
                if component_type.extends
                else None
            )
        for ctype in reversed(type_chain):
            chain.append(ctype.properties)
        if instance.implementation is not None:
            chain.append(instance.implementation.properties)
        for properties in chain:
            for association in properties:
                if association.applies_to:
                    continue  # handled by _resolve_inherited_properties
                instance.properties.add(association)

    def _resolve_connection(
        self, instance: ComponentInstance, connection: Connection
    ) -> Optional[ConnectionInstance]:
        source = self._resolve_end(instance, connection.source)
        destination = self._resolve_end(instance, connection.destination)
        if source is None or destination is None:
            raise AadlInstantiationError(
                f"cannot resolve connection {connection.name!r} "
                f"({connection.source} -> {connection.destination}) in {instance.qualified_name}",
                connection.location,
            )
        return ConnectionInstance(
            name=connection.name,
            kind=connection.kind,
            source=source,
            destination=destination,
            declaration=connection,
            owner=instance,
        )

    def _resolve_end(self, instance: ComponentInstance, end: ConnectionEnd) -> Optional[FeatureInstance]:
        if end.subcomponent:
            child = instance.subcomponents.get(end.subcomponent)
            if child is None:
                return None
            feature = child.features.get(end.feature)
            if feature is None and end.feature in child.subcomponents:
                # Data-access connections may name the data subcomponent itself.
                data_child = child.subcomponents[end.feature]
                return self._synthetic_feature(data_child)
            return feature
        feature = instance.features.get(end.feature)
        if feature is not None:
            return feature
        # A connection end naming a data subcomponent directly (shared data).
        if end.feature in instance.subcomponents:
            return self._synthetic_feature(instance.subcomponents[end.feature])
        return None

    def _synthetic_feature(self, data_instance: ComponentInstance) -> FeatureInstance:
        """Represent a data subcomponent named directly by an access connection."""
        existing = data_instance.features.get("__self__")
        if existing is not None:
            return existing
        declaration = DataAccess(name="__self__", access=AccessKind.PROVIDES, classifier=data_instance.classifier)
        feature = FeatureInstance(name="__self__", declaration=declaration, owner=data_instance)
        data_instance.features["__self__"] = feature
        return feature

    # ------------------------------------------------------------------
    def _resolve_inherited_properties(self, root: ComponentInstance) -> None:
        """Distribute ``applies to`` property associations to their targets."""
        for instance in root.all_instances():
            sources: List[PropertyMap] = []
            if instance.component_type is not None:
                sources.append(instance.component_type.properties)
            if instance.implementation is not None:
                sources.append(instance.implementation.properties)
            for properties in sources:
                for association in properties:
                    if not association.applies_to:
                        continue
                    for path in association.applies_to:
                        target = instance.find(path)
                        if target is None:
                            feature = instance.find_feature(path)
                            if feature is not None:
                                feature.declaration.properties.add(
                                    PropertyAssociation(association.name, association.value)
                                )
                            continue
                        target.properties.add(
                            PropertyAssociation(association.name, association.value)
                        )


# ----------------------------------------------------------------------
# bindings and reports
# ----------------------------------------------------------------------
def processor_bindings(root: ComponentInstance) -> Dict[str, ComponentInstance]:
    """Resolve ``Actual_Processor_Binding`` associations of the instance tree.

    Returns a mapping from the qualified name of each bound software component
    (usually a process) to the processor instance it executes on.
    """
    bindings: Dict[str, ComponentInstance] = {}
    processors = {p.name: p for p in root.processors()}
    processors.update({p.qualified_name: p for p in root.processors()})

    def binding_targets(value) -> List[str]:
        if isinstance(value, ReferenceValue):
            return [".".join(value.path)]
        if isinstance(value, ListValue):
            out: List[str] = []
            for item in value.items:
                if isinstance(item, ReferenceValue):
                    out.append(".".join(item.path))
            return out
        return []

    # Associations attached directly to instances (through applies-to resolution).
    for instance in root.all_instances():
        for association in instance.properties.find_all(ACTUAL_PROCESSOR_BINDING):
            for target in binding_targets(association.value):
                processor = processors.get(target) or processors.get(target.split(".")[-1])
                if processor is not None:
                    bindings[instance.qualified_name] = processor

    # Associations with applies-to declared on enclosing implementations.
    for instance in root.all_instances():
        implementation = instance.implementation
        if implementation is None:
            continue
        for association in implementation.properties.find_all(ACTUAL_PROCESSOR_BINDING):
            if not association.applies_to:
                continue
            for path in association.applies_to:
                bound = instance.find(path)
                if bound is None:
                    continue
                for target in binding_targets(association.value):
                    processor = processors.get(target) or processors.get(target.split(".")[-1])
                    if processor is not None:
                        bindings[bound.qualified_name] = processor
    return bindings


def instance_report(root: ComponentInstance) -> InstanceReport:
    """Counts of the instance tree (Fig. 1 benchmark output)."""
    instances = root.all_instances()
    ports = sum(len([f for f in inst.features.values() if f.is_port]) for inst in instances)
    return InstanceReport(
        components=len(instances),
        threads=len(root.threads()),
        processes=len(root.processes()),
        systems=len(root.systems()),
        processors=len(root.processors()),
        data=len(root.data_components()),
        ports=ports,
        connections=len(root.all_connections()),
    )


def instantiate(model: AadlModel, root: str, default_package: Optional[str] = None) -> ComponentInstance:
    """Convenience wrapper: instantiate *root* in *model*."""
    return Instantiator(model, default_package=default_package).instantiate(root)
