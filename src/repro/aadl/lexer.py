"""Lexer for the textual AADL subset.

The tokenizer produces a flat list of :class:`Token` objects with source
locations.  AADL keywords are not distinguished lexically — they are ordinary
identifiers whose meaning is decided by the parser (AADL is case-insensitive
for keywords and identifiers alike).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from .errors import AadlSyntaxError, SourceLocation


class TokenKind(enum.Enum):
    IDENTIFIER = "identifier"
    INTEGER = "integer"
    REAL = "real"
    STRING = "string"
    PUNCTUATION = "punctuation"
    END_OF_FILE = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    location: SourceLocation

    @property
    def lowered(self) -> str:
        return self.text.lower()

    def is_keyword(self, *keywords: str) -> bool:
        return self.kind is TokenKind.IDENTIFIER and self.lowered in {k.lower() for k in keywords}

    def is_punct(self, *symbols: str) -> bool:
        return self.kind is TokenKind.PUNCTUATION and self.text in symbols

    def __str__(self) -> str:
        return f"{self.kind.value}({self.text!r})"


#: Multi-character punctuation, longest first so the scanner is greedy.
_MULTI_PUNCT = [
    "+=>",
    "]->",
    "-[",
    "<->",
    "::",
    "=>",
    "->",
    "..",
    "**",
]
_SINGLE_PUNCT = set(";:,.(){}[]=+-*/<>!&|#@")


class Lexer:
    """Hand-written scanner for AADL text."""

    def __init__(self, text: str, filename: str = "<aadl>") -> None:
        self.text = text
        self.filename = filename
        self.position = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    def location(self) -> SourceLocation:
        return SourceLocation(self.line, self.column, self.filename)

    def _peek(self, offset: int = 0) -> str:
        index = self.position + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        out = self.text[self.position:self.position + count]
        for char in out:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return out

    # ------------------------------------------------------------------
    def tokenize(self) -> List[Token]:
        tokens: List[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.position >= len(self.text):
                tokens.append(Token(TokenKind.END_OF_FILE, "", self.location()))
                return tokens
            token = self._next_token()
            tokens.append(token)

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
                continue
            if char == "-" and self._peek(1) == "-":
                while self.position < len(self.text) and self._peek() != "\n":
                    self._advance()
                continue
            break

    def _next_token(self) -> Token:
        location = self.location()
        char = self._peek()

        if char.isalpha() or char == "_":
            return self._identifier(location)
        if char.isdigit():
            return self._number(location)
        if char == '"':
            return self._string(location)

        for symbol in _MULTI_PUNCT:
            if self.text.startswith(symbol, self.position):
                # ``..`` must not swallow the dot of a real literal (handled
                # in _number); here we are not inside a number.
                self._advance(len(symbol))
                return Token(TokenKind.PUNCTUATION, symbol, location)
        if char in _SINGLE_PUNCT:
            self._advance()
            return Token(TokenKind.PUNCTUATION, char, location)
        raise AadlSyntaxError(f"unexpected character {char!r}", location)

    def _identifier(self, location: SourceLocation) -> Token:
        start = self.position
        while self.position < len(self.text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        return Token(TokenKind.IDENTIFIER, self.text[start:self.position], location)

    def _number(self, location: SourceLocation) -> Token:
        start = self.position
        while self.position < len(self.text) and self._peek().isdigit():
            self._advance()
        is_real = False
        # A single dot followed by a digit is a real literal; ``..`` is a range.
        if self._peek() == "." and self._peek(1).isdigit():
            is_real = True
            self._advance()
            while self.position < len(self.text) and self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (self._peek(1).isdigit() or self._peek(1) in "+-"):
            is_real = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self.position < len(self.text) and self._peek().isdigit():
                self._advance()
        text = self.text[start:self.position]
        return Token(TokenKind.REAL if is_real else TokenKind.INTEGER, text, location)

    def _string(self, location: SourceLocation) -> Token:
        self._advance()  # opening quote
        start = self.position
        while self.position < len(self.text) and self._peek() != '"':
            if self._peek() == "\n":
                raise AadlSyntaxError("unterminated string literal", location)
            self._advance()
        if self.position >= len(self.text):
            raise AadlSyntaxError("unterminated string literal", location)
        text = self.text[start:self.position]
        self._advance()  # closing quote
        return Token(TokenKind.STRING, text, location)


def tokenize(text: str, filename: str = "<aadl>") -> List[Token]:
    """Tokenize AADL source text."""
    return Lexer(text, filename).tokenize()
