"""AADL property values, associations and the timing properties of the paper.

The translation and the scheduler only interpret a well-defined subset of the
AADL standard property sets (``Timing_Properties``, ``Thread_Properties``,
``Communication_Properties``, ``Deployment_Properties``):

* ``Dispatch_Protocol`` — Periodic, Sporadic, Aperiodic, Timed, Hybrid,
  Background;
* ``Period``, ``Deadline``, ``Compute_Execution_Time`` — time values / ranges;
* ``Input_Time`` / ``Output_Time`` — IO time specifications (reference point
  Dispatch / Start / Completion / Deadline / NoIO plus an offset range);
* ``Queue_Size``, ``Queue_Processing_Protocol``, ``Overflow_Handling_Protocol``;
* ``Priority``;
* ``Actual_Processor_Binding`` — reference list with ``applies to``.

Anything else is stored verbatim so that models using additional properties
still round-trip through the parser and printer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from .errors import AadlSemanticError


# ----------------------------------------------------------------------
# units
# ----------------------------------------------------------------------
#: Conversion factors of the AADL ``Time_Units`` unit type, to microseconds.
TIME_UNITS_TO_US: Dict[str, float] = {
    "ps": 1e-6,
    "ns": 1e-3,
    "us": 1.0,
    "ms": 1e3,
    "sec": 1e6,
    "min": 60e6,
    "hr": 3600e6,
}


def convert_time(value: float, unit: str, target_unit: str = "ms") -> float:
    """Convert a time value between AADL time units."""
    unit = unit.lower()
    target_unit = target_unit.lower()
    if unit not in TIME_UNITS_TO_US:
        raise AadlSemanticError(f"unknown time unit {unit!r}")
    if target_unit not in TIME_UNITS_TO_US:
        raise AadlSemanticError(f"unknown time unit {target_unit!r}")
    return value * TIME_UNITS_TO_US[unit] / TIME_UNITS_TO_US[target_unit]


# ----------------------------------------------------------------------
# property values
# ----------------------------------------------------------------------
class PropertyValue:
    """Base class of AADL property values."""

    def python_value(self) -> Any:
        raise NotImplementedError


@dataclass(frozen=True)
class IntegerValue(PropertyValue):
    value: int
    unit: Optional[str] = None

    def python_value(self) -> Any:
        return self.value

    def __str__(self) -> str:
        return f"{self.value}{' ' + self.unit if self.unit else ''}"


@dataclass(frozen=True)
class RealValue(PropertyValue):
    value: float
    unit: Optional[str] = None

    def python_value(self) -> Any:
        return self.value

    def __str__(self) -> str:
        return f"{self.value}{' ' + self.unit if self.unit else ''}"


@dataclass(frozen=True)
class BooleanValue(PropertyValue):
    value: bool

    def python_value(self) -> Any:
        return self.value

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class StringValue(PropertyValue):
    value: str

    def python_value(self) -> Any:
        return self.value

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class EnumerationValue(PropertyValue):
    literal: str

    def python_value(self) -> Any:
        return self.literal

    def __str__(self) -> str:
        return self.literal


@dataclass(frozen=True)
class ReferenceValue(PropertyValue):
    """``reference (path.to.element)``."""

    path: Tuple[str, ...]

    def python_value(self) -> Any:
        return ".".join(self.path)

    def __str__(self) -> str:
        return f"reference ({'.'.join(self.path)})"


@dataclass(frozen=True)
class ClassifierValue(PropertyValue):
    """``classifier (Package::Name.Impl)``."""

    name: str

    def python_value(self) -> Any:
        return self.name

    def __str__(self) -> str:
        return f"classifier ({self.name})"


@dataclass(frozen=True)
class RangeValue(PropertyValue):
    """``low .. high`` (with optional units on each bound)."""

    low: Union[IntegerValue, RealValue]
    high: Union[IntegerValue, RealValue]

    def python_value(self) -> Any:
        return (self.low.python_value(), self.high.python_value())

    def __str__(self) -> str:
        return f"{self.low} .. {self.high}"


@dataclass(frozen=True)
class ListValue(PropertyValue):
    """``(v1, v2, …)``."""

    items: Tuple[PropertyValue, ...]

    def python_value(self) -> Any:
        return [item.python_value() for item in self.items]

    def __str__(self) -> str:
        return "(" + ", ".join(str(i) for i in self.items) + ")"


@dataclass(frozen=True)
class RecordValue(PropertyValue):
    """``[Field => value; …]``."""

    fields: Tuple[Tuple[str, PropertyValue], ...]

    def python_value(self) -> Any:
        return {name: value.python_value() for name, value in self.fields}

    def get(self, name: str) -> Optional[PropertyValue]:
        lowered = name.lower()
        for field_name, value in self.fields:
            if field_name.lower() == lowered:
                return value
        return None

    def __str__(self) -> str:
        inner = " ".join(f"{name} => {value};" for name, value in self.fields)
        return f"[{inner}]"


# ----------------------------------------------------------------------
# property associations
# ----------------------------------------------------------------------
@dataclass
class PropertyAssociation:
    """``Name => value [applies to path];`` attached to a model element."""

    name: str
    value: PropertyValue
    applies_to: Tuple[Tuple[str, ...], ...] = ()
    append: bool = False  # ``+=>`` associations
    constant: bool = False
    in_modes: Tuple[str, ...] = ()

    @property
    def base_name(self) -> str:
        """Property name without its property-set qualifier, lower-cased."""
        return self.name.split("::")[-1].lower()

    def __str__(self) -> str:
        operator = "+=>" if self.append else "=>"
        applies = ""
        if self.applies_to:
            paths = ", ".join(".".join(path) for path in self.applies_to)
            applies = f" applies to {paths}"
        return f"{self.name} {operator} {self.value}{applies};"


class PropertyMap:
    """A collection of property associations with case-insensitive lookup."""

    def __init__(self, associations: Optional[Iterable[PropertyAssociation]] = None) -> None:
        self.associations: List[PropertyAssociation] = list(associations or [])

    def add(self, association: PropertyAssociation) -> None:
        self.associations.append(association)

    def extend(self, associations: Iterable[PropertyAssociation]) -> None:
        self.associations.extend(associations)

    def find_all(self, name: str) -> List[PropertyAssociation]:
        lowered = name.split("::")[-1].lower()
        return [a for a in self.associations if a.base_name == lowered]

    def find(self, name: str) -> Optional[PropertyAssociation]:
        found = self.find_all(name)
        return found[-1] if found else None

    def value(self, name: str, default: Any = None) -> Any:
        association = self.find(name)
        if association is None:
            return default
        return association.value.python_value()

    def __contains__(self, name: str) -> bool:
        return self.find(name) is not None

    def __len__(self) -> int:
        return len(self.associations)

    def __iter__(self):
        return iter(self.associations)

    def copy(self) -> "PropertyMap":
        return PropertyMap(list(self.associations))


# ----------------------------------------------------------------------
# interpreted timing properties
# ----------------------------------------------------------------------
class DispatchProtocol(enum.Enum):
    """Thread dispatch protocols of the AADL standard."""

    PERIODIC = "Periodic"
    SPORADIC = "Sporadic"
    APERIODIC = "Aperiodic"
    TIMED = "Timed"
    HYBRID = "Hybrid"
    BACKGROUND = "Background"

    @classmethod
    def from_literal(cls, literal: str) -> "DispatchProtocol":
        for member in cls:
            if member.value.lower() == literal.lower():
                return member
        raise AadlSemanticError(f"unknown Dispatch_Protocol literal {literal!r}")


class IOReference(enum.Enum):
    """Reference points of ``Input_Time`` / ``Output_Time`` specifications."""

    DISPATCH = "Dispatch"
    START = "Start"
    COMPLETION = "Completion"
    DEADLINE = "Deadline"
    NO_IO = "NoIO"

    @classmethod
    def from_literal(cls, literal: str) -> "IOReference":
        for member in cls:
            if member.value.lower() == literal.lower():
                return member
        raise AadlSemanticError(f"unknown IO time reference {literal!r}")


@dataclass(frozen=True)
class IOTimeSpec:
    """One entry of an ``Input_Time``/``Output_Time`` property.

    ``reference`` is the anchoring event and ``offset`` the (min, max) offset
    from it in the given unit (converted to milliseconds here).
    """

    reference: IOReference
    offset_min_ms: float = 0.0
    offset_max_ms: float = 0.0

    def offset_ms(self) -> float:
        """The offset used by the scheduler (the maximum of the range)."""
        return self.offset_max_ms

    def __str__(self) -> str:
        return f"[Time => {self.reference.value}; Offset => {self.offset_min_ms} ms .. {self.offset_max_ms} ms;]"


DEFAULT_INPUT_TIME = IOTimeSpec(IOReference.DISPATCH)
DEFAULT_OUTPUT_TIME_IMMEDIATE = IOTimeSpec(IOReference.COMPLETION)
DEFAULT_OUTPUT_TIME_DELAYED = IOTimeSpec(IOReference.DEADLINE)


def parse_time_value(value: PropertyValue, default_unit: str = "ms") -> float:
    """Interpret a property value as a duration in milliseconds."""
    if isinstance(value, (IntegerValue, RealValue)):
        unit = value.unit or default_unit
        return convert_time(float(value.value), unit, "ms")
    if isinstance(value, RangeValue):
        return parse_time_value(value.high, default_unit)
    raise AadlSemanticError(f"cannot interpret {value} as a time value")


def parse_io_time(value: PropertyValue) -> List[IOTimeSpec]:
    """Interpret an ``Input_Time``/``Output_Time`` value as IO time specs."""
    if isinstance(value, ListValue):
        specs: List[IOTimeSpec] = []
        for item in value.items:
            specs.extend(parse_io_time(item))
        return specs
    if isinstance(value, RecordValue):
        time_field = value.get("Time")
        offset_field = value.get("Offset")
        reference = IOReference.DISPATCH
        if isinstance(time_field, EnumerationValue):
            reference = IOReference.from_literal(time_field.literal)
        offset_min = offset_max = 0.0
        if isinstance(offset_field, RangeValue):
            offset_min = parse_time_value(offset_field.low)
            offset_max = parse_time_value(offset_field.high)
        elif isinstance(offset_field, (IntegerValue, RealValue)):
            offset_min = offset_max = parse_time_value(offset_field)
        return [IOTimeSpec(reference, offset_min, offset_max)]
    if isinstance(value, EnumerationValue):
        return [IOTimeSpec(IOReference.from_literal(value.literal))]
    raise AadlSemanticError(f"cannot interpret {value} as an IO time specification")


# Convenience constructors used by the programmatic case-study builders.
def ms(value: float) -> IntegerValue:
    """A time value in milliseconds."""
    if float(value).is_integer():
        return IntegerValue(int(value), "ms")
    return RealValue(float(value), "ms")  # type: ignore[return-value]


def enum_value(literal: str) -> EnumerationValue:
    return EnumerationValue(literal)


def integer(value: int, unit: Optional[str] = None) -> IntegerValue:
    return IntegerValue(value, unit)


def string(value: str) -> StringValue:
    return StringValue(value)


def boolean(value: bool) -> BooleanValue:
    return BooleanValue(value)


def reference(path: str) -> ReferenceValue:
    return ReferenceValue(tuple(path.split(".")))


def record(**fields: PropertyValue) -> RecordValue:
    return RecordValue(tuple(fields.items()))


def io_time(reference_point: str, offset_ms: float = 0.0) -> RecordValue:
    """Build an ``Input_Time``/``Output_Time`` record value."""
    return RecordValue(
        (
            ("Time", EnumerationValue(reference_point)),
            ("Offset", RangeValue(ms(offset_ms), ms(offset_ms))),
        )
    )


#: Names of the properties interpreted by the tool chain.
PERIOD = "Period"
DEADLINE = "Deadline"
DISPATCH_PROTOCOL = "Dispatch_Protocol"
COMPUTE_EXECUTION_TIME = "Compute_Execution_Time"
INPUT_TIME = "Input_Time"
OUTPUT_TIME = "Output_Time"
QUEUE_SIZE = "Queue_Size"
QUEUE_PROCESSING_PROTOCOL = "Queue_Processing_Protocol"
OVERFLOW_HANDLING_PROTOCOL = "Overflow_Handling_Protocol"
PRIORITY = "Priority"
ACTUAL_PROCESSOR_BINDING = "Actual_Processor_Binding"
SCHEDULING_PROTOCOL = "Scheduling_Protocol"
TIMING = "Timing"
DATA_ACCESS_PROTOCOL = "Concurrency_Control_Protocol"
