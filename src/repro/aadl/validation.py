"""Legality and consistency checks on AADL models.

These are the checks the paper assumes have been performed by the front-end
before translation: the translator and the scheduler rely on threads having a
positive period, deadlines within periods, resolvable classifiers and
bindings, and type/direction compatible connections.  Findings are collected
as diagnostics (errors stop the tool chain, warnings do not).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .errors import DiagnosticCollector
from .instance import ComponentInstance, processor_bindings
from .model import (
    AadlModel,
    ComponentCategory,
    ComponentImplementation,
    ConnectionKind,
    Port,
    PortDirection,
    PortKind,
)
from .properties import (
    COMPUTE_EXECUTION_TIME,
    DEADLINE,
    DISPATCH_PROTOCOL,
    PERIOD,
    QUEUE_SIZE,
    DispatchProtocol,
    parse_time_value,
)

#: Component categories allowed as subcomponents of each category (subset of
#: the AADL legality rules relevant to the translation).
_ALLOWED_SUBCOMPONENTS: Dict[ComponentCategory, List[ComponentCategory]] = {
    ComponentCategory.SYSTEM: [
        ComponentCategory.SYSTEM,
        ComponentCategory.PROCESS,
        ComponentCategory.PROCESSOR,
        ComponentCategory.VIRTUAL_PROCESSOR,
        ComponentCategory.MEMORY,
        ComponentCategory.BUS,
        ComponentCategory.VIRTUAL_BUS,
        ComponentCategory.DEVICE,
        ComponentCategory.DATA,
        ComponentCategory.ABSTRACT,
    ],
    ComponentCategory.PROCESS: [
        ComponentCategory.THREAD,
        ComponentCategory.THREAD_GROUP,
        ComponentCategory.DATA,
        ComponentCategory.SUBPROGRAM,
    ],
    ComponentCategory.THREAD_GROUP: [
        ComponentCategory.THREAD,
        ComponentCategory.THREAD_GROUP,
        ComponentCategory.DATA,
    ],
    ComponentCategory.THREAD: [
        ComponentCategory.DATA,
        ComponentCategory.SUBPROGRAM,
    ],
    ComponentCategory.PROCESSOR: [
        ComponentCategory.VIRTUAL_PROCESSOR,
        ComponentCategory.MEMORY,
    ],
    ComponentCategory.DATA: [ComponentCategory.DATA, ComponentCategory.SUBPROGRAM],
    ComponentCategory.SUBPROGRAM: [ComponentCategory.DATA],
}


def validate_declarative_model(model: AadlModel) -> DiagnosticCollector:
    """Check the declarative model: classifier resolution and category rules."""
    diagnostics = DiagnosticCollector()
    for package in model.packages.values():
        for implementation in package.implementations.values():
            _check_implementation(model, package.name, implementation, diagnostics)
        for component_type in package.types.values():
            if component_type.extends and model.find_type(component_type.extends, package.name) is None:
                diagnostics.error(
                    f"extended type {component_type.extends!r} not found",
                    subject=f"{package.name}::{component_type.name}",
                )
    return diagnostics


def _check_implementation(
    model: AadlModel,
    package_name: str,
    implementation: ComponentImplementation,
    diagnostics: DiagnosticCollector,
) -> None:
    subject = f"{package_name}::{implementation.name}"
    if model.find_type(implementation.type_name, package_name) is None:
        diagnostics.error(
            f"implementation {implementation.name!r} has no matching component type",
            subject=subject,
        )
    allowed = _ALLOWED_SUBCOMPONENTS.get(implementation.category)
    for subcomponent in implementation.subcomponents.values():
        if allowed is not None and subcomponent.category not in allowed:
            diagnostics.error(
                f"subcomponent {subcomponent.name!r} of category {subcomponent.category.value!r} "
                f"is not allowed inside a {implementation.category.value}",
                subject=subject,
            )
        if subcomponent.classifier and model.find_classifier(subcomponent.classifier, package_name) is None:
            diagnostics.error(
                f"classifier {subcomponent.classifier!r} of subcomponent {subcomponent.name!r} not found",
                subject=subject,
            )
    # Mode transitions must reference declared modes.
    for transition in implementation.mode_transitions:
        for mode_name in (transition.source, transition.destination):
            if mode_name not in implementation.modes:
                diagnostics.error(
                    f"mode transition references undeclared mode {mode_name!r}",
                    subject=subject,
                )


def validate_instance_model(root: ComponentInstance) -> DiagnosticCollector:
    """Check the instance model: timing properties, connections, bindings."""
    diagnostics = DiagnosticCollector()
    _check_threads(root, diagnostics)
    _check_connections(root, diagnostics)
    _check_bindings(root, diagnostics)
    _check_shared_data(root, diagnostics)
    return diagnostics


def _check_threads(root: ComponentInstance, diagnostics: DiagnosticCollector) -> None:
    for thread in root.threads():
        subject = thread.qualified_name
        protocol_literal = thread.dispatch_protocol()
        protocol: Optional[DispatchProtocol] = None
        if protocol_literal is None:
            diagnostics.warning("thread has no Dispatch_Protocol; Periodic is assumed", subject=subject)
            protocol = DispatchProtocol.PERIODIC
        else:
            try:
                protocol = DispatchProtocol.from_literal(protocol_literal)
            except Exception:
                diagnostics.error(f"unknown Dispatch_Protocol {protocol_literal!r}", subject=subject)

        period = thread.period_ms()
        if protocol in (DispatchProtocol.PERIODIC, DispatchProtocol.SPORADIC, DispatchProtocol.TIMED, DispatchProtocol.HYBRID):
            if period is None:
                diagnostics.error(f"{protocol.value} thread has no Period", subject=subject)
            elif period <= 0:
                diagnostics.error(f"Period must be strictly positive, got {period} ms", subject=subject)

        deadline = thread.deadline_ms()
        if period is not None and deadline is not None and deadline > period:
            diagnostics.warning(
                f"Deadline ({deadline} ms) exceeds Period ({period} ms)", subject=subject
            )
        if deadline is not None and deadline <= 0:
            diagnostics.error(f"Deadline must be strictly positive, got {deadline} ms", subject=subject)

        execution = thread.properties.find(COMPUTE_EXECUTION_TIME)
        if execution is not None:
            wcet = parse_time_value(execution.value)
            if deadline is not None and wcet > deadline:
                diagnostics.error(
                    f"Compute_Execution_Time ({wcet} ms) exceeds Deadline ({deadline} ms)", subject=subject
                )

        for feature in thread.in_ports():
            port = feature.declaration
            if isinstance(port, Port) and port.is_event:
                queue_size = feature.declaration.properties.value(QUEUE_SIZE, 1)
                if int(queue_size) < 1:
                    diagnostics.error(
                        f"Queue_Size of port {feature.name!r} must be at least 1", subject=subject
                    )


def _check_connections(root: ComponentInstance, diagnostics: DiagnosticCollector) -> None:
    for connection in root.all_connections():
        subject = f"{connection.owner.qualified_name}.{connection.name}"
        if connection.kind is not ConnectionKind.PORT:
            continue
        source = connection.source.declaration
        destination = connection.destination.declaration
        if not isinstance(source, Port) or not isinstance(destination, Port):
            diagnostics.error("port connection endpoints must be ports", subject=subject)
            continue
        # Direction: the source must be readable, the destination writable,
        # accounting for the fact that a connection crossing a component
        # boundary may legally go in-to-in or out-to-out.
        same_component = connection.source.owner is connection.destination.owner.parent or (
            connection.destination.owner is connection.source.owner.parent
        )
        if not same_component and source.direction is PortDirection.IN and destination.direction is PortDirection.IN:
            diagnostics.warning("connection from an in port to an in port between siblings", subject=subject)
        if source.kind is PortKind.DATA and destination.kind is PortKind.EVENT:
            diagnostics.error("data port connected to an event port", subject=subject)
        if source.kind is PortKind.EVENT and destination.kind is PortKind.DATA:
            diagnostics.error("event port connected to a data port", subject=subject)
        if connection.timing not in ("immediate", "delayed"):
            diagnostics.error(f"unknown connection Timing {connection.timing!r}", subject=subject)


def _check_bindings(root: ComponentInstance, diagnostics: DiagnosticCollector) -> None:
    bindings = processor_bindings(root)
    processors = root.processors()
    for process in root.processes():
        if process.qualified_name not in bindings:
            if processors:
                diagnostics.warning(
                    "process has no Actual_Processor_Binding; threads cannot be scheduled",
                    subject=process.qualified_name,
                )
            else:
                diagnostics.info(
                    "model has no processor; scheduling analysis will use a logical processor",
                    subject=process.qualified_name,
                )


def _check_shared_data(root: ComponentInstance, diagnostics: DiagnosticCollector) -> None:
    for data in root.data_components():
        accessors = []
        for connection in root.all_connections():
            if connection.kind is ConnectionKind.DATA_ACCESS:
                if connection.source.owner is data or connection.destination.owner is data:
                    accessors.append(connection)
        if len(accessors) > 1 and data.parent is not None:
            diagnostics.info(
                f"shared data accessed through {len(accessors)} access connections; "
                "mutual exclusion clocks will be generated",
                subject=data.qualified_name,
            )


def validate(model: AadlModel, root: Optional[ComponentInstance] = None) -> DiagnosticCollector:
    """Run the declarative checks and, when *root* is given, the instance checks."""
    diagnostics = validate_declarative_model(model)
    if root is not None:
        diagnostics.extend(validate_instance_model(root))
    return diagnostics
