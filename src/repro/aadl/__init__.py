"""AADL front-end: metamodel, textual parser, instance model and checks.

This subpackage replaces the OSATE/Eclipse front-end of the paper's tool
chain: it parses a textual AADL subset, builds the declarative model
(the ASME analogue), instantiates a root system, resolves properties and
bindings, and validates the result before translation.
"""

from .errors import (
    AadlError,
    AadlInstantiationError,
    AadlSemanticError,
    AadlSyntaxError,
    Diagnostic,
    DiagnosticCollector,
    SourceLocation,
)
from .model import (
    AadlModel,
    AadlPackage,
    AccessKind,
    BusAccess,
    ComponentCategory,
    ComponentImplementation,
    ComponentType,
    Connection,
    ConnectionEnd,
    ConnectionKind,
    DataAccess,
    Feature,
    Mode,
    ModeTransition,
    Parameter,
    Port,
    PortDirection,
    PortKind,
    PropertySetDeclaration,
    Subcomponent,
    SubprogramAccess,
)
from .properties import (
    ACTUAL_PROCESSOR_BINDING,
    COMPUTE_EXECUTION_TIME,
    DEADLINE,
    DISPATCH_PROTOCOL,
    INPUT_TIME,
    OUTPUT_TIME,
    PERIOD,
    PRIORITY,
    QUEUE_PROCESSING_PROTOCOL,
    QUEUE_SIZE,
    BooleanValue,
    ClassifierValue,
    DispatchProtocol,
    EnumerationValue,
    IntegerValue,
    IOReference,
    IOTimeSpec,
    ListValue,
    PropertyAssociation,
    PropertyMap,
    PropertyValue,
    RangeValue,
    RealValue,
    RecordValue,
    ReferenceValue,
    StringValue,
    boolean,
    convert_time,
    enum_value,
    integer,
    io_time,
    ms,
    parse_io_time,
    parse_time_value,
    record,
    reference,
    string,
)
from .lexer import Lexer, Token, TokenKind, tokenize
from .parser import Parser, parse_file, parse_string
from .instance import (
    ComponentInstance,
    ConnectionInstance,
    FeatureInstance,
    InstanceReport,
    Instantiator,
    instance_report,
    instantiate,
    processor_bindings,
)
from .validation import validate, validate_declarative_model, validate_instance_model
from .printer import render_component_implementation, render_component_type, render_model, render_package
from . import stdlib

__all__ = [
    # errors
    "AadlError", "AadlInstantiationError", "AadlSemanticError", "AadlSyntaxError",
    "Diagnostic", "DiagnosticCollector", "SourceLocation",
    # model
    "AadlModel", "AadlPackage", "AccessKind", "BusAccess", "ComponentCategory",
    "ComponentImplementation", "ComponentType", "Connection", "ConnectionEnd",
    "ConnectionKind", "DataAccess", "Feature", "Mode", "ModeTransition",
    "Parameter", "Port", "PortDirection", "PortKind", "PropertySetDeclaration",
    "Subcomponent", "SubprogramAccess",
    # properties
    "ACTUAL_PROCESSOR_BINDING", "COMPUTE_EXECUTION_TIME", "DEADLINE",
    "DISPATCH_PROTOCOL", "INPUT_TIME", "OUTPUT_TIME", "PERIOD", "PRIORITY",
    "QUEUE_PROCESSING_PROTOCOL", "QUEUE_SIZE",
    "BooleanValue", "ClassifierValue", "DispatchProtocol", "EnumerationValue",
    "IntegerValue", "IOReference", "IOTimeSpec", "ListValue",
    "PropertyAssociation", "PropertyMap", "PropertyValue", "RangeValue",
    "RealValue", "RecordValue", "ReferenceValue", "StringValue",
    "boolean", "convert_time", "enum_value", "integer", "io_time", "ms",
    "parse_io_time", "parse_time_value", "record", "reference", "string",
    # lexer / parser
    "Lexer", "Token", "TokenKind", "tokenize", "Parser", "parse_file", "parse_string",
    # instance
    "ComponentInstance", "ConnectionInstance", "FeatureInstance", "InstanceReport",
    "Instantiator", "instance_report", "instantiate", "processor_bindings",
    # validation / printing
    "validate", "validate_declarative_model", "validate_instance_model",
    "render_component_implementation", "render_component_type", "render_model",
    "render_package",
    # stdlib
    "stdlib",
]
